"""CND-IDS reproduction library.

This package reproduces the system described in "CND-IDS: Continual Novelty
Detection for Intrusion Detection Systems" (DAC 2025).  It is organised as a
set of substrates (neural networks, classical ML, metrics, datasets, novelty
detectors, supervised baselines, continual-learning tooling) with the CND-IDS
algorithm itself built on top (:mod:`repro.core`) and an experiment harness
(:mod:`repro.experiments`) that regenerates every table and figure of the
paper's evaluation.

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.continual import ContinualScenario
>>> from repro.core import CNDIDS
>>> dataset = load_dataset("wustl_iiot", scale=0.02, seed=0)
>>> scenario = ContinualScenario.from_dataset(dataset, n_experiences=2, seed=0)
>>> model = CNDIDS(input_dim=dataset.n_features, random_state=0)
>>> result = model.run_scenario(scenario)
>>> result.avg_f1  # doctest: +SKIP
"""

from repro._version import __version__

__all__ = ["__version__"]
