"""Gradient-boosted decision trees for binary classification.

Serves as the XGBoost stand-in for the paper's Fig. 1: boosted regression
trees fitted to the negative gradient of the logistic loss, with shrinkage
and optional row subsampling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.flat_tree import FlatForest
from repro.supervised.tree import DecisionTreeRegressor
from repro.utils.random import check_random_state
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
    check_n_features,
)

__all__ = ["GradientBoostingClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


class GradientBoostingClassifier:
    """Binary logistic gradient boosting over shallow regression trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of the per-round regression trees.
    subsample:
        Row-subsampling fraction per round (stochastic gradient boosting).
    """

    # Per-round regression trees only back the retained naive reference; the
    # compiled flat forest is the deployable state, so snapshots skip them.
    _snapshot_transient_ = ("trees_",)

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        *,
        subsample: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] | None = None
        self.forest_: FlatForest | None = None
        self.initial_log_odds_: float | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = check_array(X, name="X")
        y = check_binary_labels(y).astype(np.float64)
        check_consistent_length(X, y)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)

        positive_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.initial_log_odds_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(X.shape[0], self.initial_log_odds_)

        trees: list[DecisionTreeRegressor] = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(raw)  # negative gradient of logistic loss
            if self.subsample < 1.0:
                idx = rng.choice(n, max(1, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=5, random_state=rng
            )
            tree.fit(X[idx], residual[idx])
            # X was validated once above; traverse the freshly compiled flat
            # tree directly rather than re-validating per round.
            raw += self.learning_rate * tree.flat_.predict(X)[:, 0]
            trees.append(tree)
        self.trees_ = trees
        # Compile the rounds into one flat forest: the additive score is a
        # single ensemble traversal instead of a per-round Python loop.
        self.forest_ = FlatForest.from_flat_trees([tree.flat_ for tree in trees])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive log-odds score before the sigmoid."""
        # Snapshots restore only the compiled forest (``trees_`` is a naive
        # reference cache), so fittedness is judged on ``forest_``.
        check_fitted(self, "forest_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="model was fitted")
        return (
            self.initial_log_odds_
            + self.learning_rate * self.forest_.sum_values(X)[:, 0]
        )

    def _decision_function_naive(self, X: np.ndarray) -> np.ndarray:
        """Per-round accumulation reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "trees_")
        X = check_array(X, name="X", allow_empty=True)
        raw = np.full(X.shape[0], self.initial_log_odds_)
        for tree in self.trees_:
            raw += self.learning_rate * tree._predict_values_naive(X)[:, 0]
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` array of class probabilities ``[P(y=0), P(y=1)]``."""
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Binary class predictions at the 0.5 probability threshold."""
        return (self.decision_function(X) > 0.0).astype(np.int64)

    # -- persistence -----------------------------------------------------------
    def save(self, path, *, metadata: dict | None = None):
        """Write a pickle-free snapshot (flat-forest arrays + manifest) to ``path``."""
        from repro.serve.snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path) -> "GradientBoostingClassifier":
        """Load a snapshot previously written by :meth:`save`."""
        from repro.serve.snapshot import load_snapshot

        return load_snapshot(path, expected_class=cls)
