"""CART decision trees (classification with Gini impurity, regression with MSE).

These trees are the building block for the random forest and gradient
boosting classifiers.  Split candidates are drawn from feature quantiles,
which keeps training fast on the synthetic intrusion datasets while matching
the behaviour of histogram-based implementations such as XGBoost/LightGBM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.flat_tree import FlatForest, FlatTree, flatten_tree
from repro.utils.random import check_random_state
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_n_features,
)

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _TreeNode:
    """A decision-tree node; leaves carry a prediction value."""

    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    value: np.ndarray | float | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions**2))


class _BaseTree:
    """Shared recursive construction for classification and regression trees."""

    # Linked construction nodes only back the retained naive reference, and
    # the single-tree forest is recompiled lazily from ``flat_``; snapshots
    # persist the flat arrays alone.
    _snapshot_transient_ = ("root_", "_forest_")

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        n_threshold_candidates: int = 16,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2 or min_samples_leaf < 1:
            raise ValueError("min_samples_split must be >= 2 and min_samples_leaf >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.n_threshold_candidates = n_threshold_candidates
        self.random_state = random_state
        self.root_: _TreeNode | None = None
        self.flat_: FlatTree | None = None
        self.n_features_: int | None = None

    # -- customisation points -------------------------------------------------
    def _leaf_value(self, y: np.ndarray) -> np.ndarray | float:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # -- feature subsampling ----------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * n_features))
        return max(1, min(int(self.max_features), n_features))

    # -- fitting -----------------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = check_array(X, name="X")
        check_consistent_length(X, y)
        self.n_features_ = X.shape[1]
        self._rng = check_random_state(self.random_state)
        self.root_ = self._grow(X, y, depth=0)
        # Compile the linked nodes into contiguous arrays once, so that batch
        # prediction is frontier traversal (or a native kernel walk) instead
        # of per-row recursion.  The single-tree FlatForest is compiled
        # lazily: ensemble members are traversed via flat_ or their
        # ensemble's compiled forest and never need their own.
        self.flat_ = flatten_tree(self.root_, lambda node, depth: node.value)
        self._forest_: FlatForest | None = None

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or self._impurity(y) <= 1e-12
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, left_mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[left_mask], y[left_mask], depth + 1)
        node.right = self._grow(X[~left_mask], y[~left_mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        """Best (feature, threshold, left mask) by impurity gain.

        Each feature is sorted once and every candidate threshold is scored
        from cumulative statistics (class counts or moment sums) of the
        sorted targets, so the per-feature cost is O(n log n + t) instead of
        the O(t x n) re-masking of the naive scan.  Candidate enumeration,
        gain arithmetic and tie-breaking (first feature in draw order, first
        threshold in ascending order) match :meth:`_best_split_naive`.
        """
        n_samples, n_features = X.shape
        parent_impurity = self._impurity(y)
        features = self._rng.choice(
            n_features, self._n_split_features(n_features), replace=False
        )
        best_gain = 1e-9
        best: tuple[int, float] | None = None
        for feature in features:
            column = X[:, feature]
            thresholds = self._candidate_thresholds(column)
            if thresholds.size == 0:
                continue
            order = np.argsort(column, kind="stable")
            column_sorted = column[order]
            # Rows going left under "column <= t" are exactly the first
            # n_left rows in sorted order; ties share a side by construction.
            n_left = np.searchsorted(column_sorted, thresholds, side="right")
            valid = (n_left >= self.min_samples_leaf) & (
                n_samples - n_left >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            n_left = n_left[valid]
            impurity_left, impurity_right = self._children_impurities(y[order], n_left)
            child_impurity = (
                n_left * impurity_left + (n_samples - n_left) * impurity_right
            ) / n_samples
            gains = parent_impurity - child_impurity
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                best = (int(feature), float(thresholds[valid][pick]))
        if best is None:
            return None
        feature, threshold = best
        return feature, threshold, X[:, feature] <= threshold

    def _children_impurities(
        self, y_sorted: np.ndarray, n_left: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Left/right child impurities for every candidate split position.

        ``y_sorted`` are the targets ordered by the split feature and
        ``n_left`` the number of rows going left per candidate.  Implemented
        from cumulative statistics by the subclasses.
        """
        raise NotImplementedError

    def _best_split_naive(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        """Reference O(features x thresholds x n) scan kept for equivalence tests."""
        n_samples, n_features = X.shape
        parent_impurity = self._impurity(y)
        features = self._rng.choice(
            n_features, self._n_split_features(n_features), replace=False
        )
        best_gain = 1e-9
        best: tuple[int, float, np.ndarray] | None = None
        for feature in features:
            column = X[:, feature]
            thresholds = self._candidate_thresholds(column)
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                impurity_left = self._impurity(y[left_mask])
                impurity_right = self._impurity(y[~left_mask])
                child_impurity = (n_left * impurity_left + n_right * impurity_right) / n_samples
                gain = parent_impurity - child_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask)
        return best

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.size <= 1:
            return np.empty(0)
        if unique.size <= self.n_threshold_candidates:
            return (unique[:-1] + unique[1:]) / 2.0
        quantiles = np.linspace(0.0, 1.0, self.n_threshold_candidates + 2)[1:-1]
        return np.unique(np.quantile(column, quantiles))

    # -- prediction ---------------------------------------------------------------
    def _predict_values(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, value_dim)`` leaf values via flattened batch traversal."""
        # Snapshots restore only the flat arrays (``root_`` is a naive
        # reference cache), so fittedness is judged on ``flat_``.
        check_fitted(self, "flat_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="tree was fitted")
        if self._forest_ is None:
            self._forest_ = FlatForest.from_flat_trees([self.flat_])
        return self._forest_.sum_values(X)

    def _predict_values_naive(self, X: np.ndarray) -> np.ndarray:
        """Per-row recursive reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "root_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="tree was fitted")
        values = [np.atleast_1d(np.asarray(self._predict_one(row))) for row in X]
        width = values[0].shape[0] if values else self.flat_.value.shape[1]
        return (
            np.vstack(values)
            if values
            else np.empty((0, width), dtype=np.float64)
        )

    def _predict_one(self, row: np.ndarray) -> np.ndarray | float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    # -- persistence -----------------------------------------------------------
    def save(self, path, *, metadata: dict | None = None):
        """Write a pickle-free snapshot (flat-tree arrays + manifest) to ``path``."""
        from repro.serve.snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path):
        """Load a snapshot previously written by :meth:`save`."""
        from repro.serve.snapshot import load_snapshot

        return load_snapshot(path, expected_class=cls)


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity; leaves store class-probability vectors."""

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.classes_: np.ndarray | None = None

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.classes_.shape[0]).astype(np.float64)
        total = counts.sum()
        return counts / total if total > 0 else counts

    def _impurity(self, y: np.ndarray) -> float:
        return _gini(np.bincount(y, minlength=self.classes_.shape[0]))

    def _children_impurities(
        self, y_sorted: np.ndarray, n_left: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # Cumulative class counts give exact child Gini at every candidate.
        n_classes = self.classes_.shape[0]
        cumulative = np.zeros((y_sorted.size, n_classes), dtype=np.int64)
        cumulative[np.arange(y_sorted.size), y_sorted] = 1
        np.cumsum(cumulative, axis=0, out=cumulative)
        left_counts = cumulative[n_left - 1]
        right_counts = cumulative[-1] - left_counts
        left_prop = left_counts / n_left[:, None]
        right_prop = right_counts / (y_sorted.size - n_left)[:, None]
        return (
            1.0 - np.sum(left_prop**2, axis=1),
            1.0 - np.sum(right_prop**2, axis=1),
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self._fit(X, encoded.astype(np.int64))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates from leaf frequencies."""
        return self._predict_values(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class label per sample."""
        proba = self.predict_proba(X)
        return self.classes_[proba.argmax(axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with MSE impurity; leaves store the target mean."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean()) if y.size else 0.0

    def _impurity(self, y: np.ndarray) -> float:
        return float(y.var()) if y.size else 0.0

    def _children_impurities(
        self, y_sorted: np.ndarray, n_left: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # Child variances from cumulative first/second moments:
        # Var = E[y^2] - E[y]^2, clipped against fp cancellation.  The
        # moments are taken over mean-centered targets (variance is
        # shift-invariant), otherwise a large target offset cancels
        # catastrophically and drowns the real variance.
        y_sorted = y_sorted - y_sorted.mean()
        cum_sum = np.cumsum(y_sorted)
        cum_sq = np.cumsum(y_sorted**2)
        n_left_f = n_left.astype(np.float64)
        n_right_f = y_sorted.size - n_left_f
        sum_left = cum_sum[n_left - 1]
        sq_left = cum_sq[n_left - 1]
        sum_right = cum_sum[-1] - sum_left
        sq_right = cum_sq[-1] - sq_left
        var_left = sq_left / n_left_f - (sum_left / n_left_f) ** 2
        var_right = sq_right / n_right_f - (sum_right / n_right_f) ** 2
        return np.maximum(var_left, 0.0), np.maximum(var_right, 0.0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        self._fit(X, np.asarray(y, dtype=np.float64))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target value per sample."""
        return self._predict_values(X)[:, 0]
