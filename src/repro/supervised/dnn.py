"""Deep neural-network classifier (MLP + softmax cross-entropy) for Fig. 1."""

from __future__ import annotations

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import MLP
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.utils.validation import check_array, check_consistent_length, check_fitted

__all__ = ["DNNClassifier"]


class DNNClassifier:
    """MLP classifier trained with Adam and softmax cross-entropy.

    Parameters
    ----------
    hidden_dims:
        Widths of the hidden layers.
    epochs, batch_size, learning_rate:
        Training schedule.
    """

    def __init__(
        self,
        hidden_dims: tuple[int, ...] = (128, 64),
        *,
        epochs: int = 20,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        random_state: int | None = 0,
    ) -> None:
        self.hidden_dims = tuple(hidden_dims)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.network_: MLP | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DNNClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        network = MLP(
            [X.shape[1], *self.hidden_dims, len(self.classes_)],
            activation="relu",
            random_state=self.random_state,
        )
        trainer = Trainer(
            network,
            Adam(network.parameters(), lr=self.learning_rate),
            SoftmaxCrossEntropyLoss(),
            batch_size=self.batch_size,
            epochs=self.epochs,
            random_state=self.random_state,
        )
        trainer.fit(X, encoded.astype(np.int64))
        self.network_ = network
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        check_fitted(self, "network_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty((0, len(self.classes_)))
        logits = self.network_(X)
        return SoftmaxCrossEntropyLoss.predict_proba(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class label per sample."""
        proba = self.predict_proba(X)
        return self.classes_[proba.argmax(axis=1)]
