"""Random forest classifier: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.ml.flat_tree import FlatForest, FlatTree
from repro.supervised.tree import DecisionTreeClassifier
from repro.utils.random import check_random_state
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_n_features,
)

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees in the forest.
    max_depth, min_samples_leaf:
        Passed to each :class:`~repro.supervised.tree.DecisionTreeClassifier`.
    max_features:
        Features considered per split; default ``"sqrt"`` as is conventional.
    """

    # Per-tree classifiers only back the retained naive reference; the
    # compiled flat forest is the deployable state, so snapshots skip them.
    _snapshot_transient_ = ("trees_",)

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.forest_: FlatForest | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        trees: list[DecisionTreeClassifier] = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[idx], y[idx])
            trees.append(tree)
        self.trees_ = trees
        # Compile all trees into one flat forest whose leaf payloads are
        # pre-aligned to the forest's class set (a bootstrap may miss a rare
        # class), so prediction is a single ensemble traversal.
        aligned: list[FlatTree] = []
        for tree in trees:
            flat = tree.flat_
            value = np.zeros((flat.value.shape[0], len(self.classes_)))
            value[:, np.searchsorted(self.classes_, tree.classes_)] = flat.value
            aligned.append(
                FlatTree(
                    feature=flat.feature,
                    threshold=flat.threshold,
                    left=flat.left,
                    right=flat.right,
                    value=value,
                    strict=flat.strict,
                )
            )
        self.forest_ = FlatForest.from_flat_trees(aligned)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree class-probability estimates, aligned to ``classes_``."""
        # Snapshots restore only the compiled forest (``trees_`` is a naive
        # reference cache), so fittedness is judged on ``forest_``.
        check_fitted(self, "forest_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="forest was fitted")
        if X.shape[0] == 0:
            return np.empty((0, len(self.classes_)))
        return self.forest_.sum_values(X) / self.forest_.n_trees

    def _predict_proba_naive(self, X: np.ndarray) -> np.ndarray:
        """Per-tree aggregation reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "trees_")
        X = check_array(X, name="X", allow_empty=True)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.trees_:
            col_index = np.searchsorted(self.classes_, tree.classes_)
            proba[:, col_index] += tree._predict_values_naive(X)
        return proba / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class prediction."""
        proba = self.predict_proba(X)
        return self.classes_[proba.argmax(axis=1)]

    # -- persistence -----------------------------------------------------------
    def save(self, path, *, metadata: dict | None = None):
        """Write a pickle-free snapshot (flat-forest arrays + manifest) to ``path``."""
        from repro.serve.snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path) -> "RandomForestClassifier":
        """Load a snapshot previously written by :meth:`save`."""
        from repro.serve.snapshot import load_snapshot

        return load_snapshot(path, expected_class=cls)
