"""Supervised ML-IDS baselines used in the paper's motivating experiment (Fig. 1).

The paper contrasts XGBoost, Random Forest and a DNN on known vs. unknown
attacks.  This subpackage provides from-scratch equivalents: CART decision
trees, a bagged random forest, gradient-boosted trees (the XGBoost stand-in)
and an MLP classifier built on :mod:`repro.nn`.
"""

from repro.supervised.dnn import DNNClassifier
from repro.supervised.gradient_boosting import GradientBoostingClassifier
from repro.supervised.random_forest import RandomForestClassifier
from repro.supervised.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "DNNClassifier",
]
