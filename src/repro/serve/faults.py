"""Fault tolerance for the serving stack, plus a deterministic fault injector.

A serving deployment that has to survive heavy traffic cannot treat every
failure as fatal: a paging sink that starts raising, one NaN row from a broken
producer, or a scoring worker process killed by the OOM killer must degrade
the service, not kill it — and every degradation must leave an auditable
event.  This module collects the pieces the rest of :mod:`repro.serve`
threads through the stack:

* **structured fault events** — :class:`QuarantinedRows` (poison rows diverted
  before scoring), :class:`WorkerRestart` (a dead/hung process worker was
  respawned and its round replayed), :class:`SinkDisabled` (a repeatedly
  raising sink was taken out of the loop) and :class:`RegistryRecovery`
  (a partial/corrupt registry version was quarantined at startup).  All of
  them expose ``to_dict()`` and flow through the ordinary alert sinks;
* **sink fault isolation** — :class:`ResilientSink` wraps any sink so a raise
  is retried and, after ``max_consecutive_errors`` consecutive failed emits,
  the sink is disabled instead of poisoning the scoring loop
  (:func:`wrap_sinks` / :func:`emit_resilient` are the service-side helpers);
* **retrying I/O** — :func:`call_with_retry`, the shared
  ``retry(attempts, backoff, jitter-from-seed)`` helper used by registry and
  snapshot I/O (deterministic jitter: reruns back off identically);
* **a deterministic fault-injection harness** — :class:`FaultInjector`,
  built from a compact spec string (see :meth:`FaultInjector.from_spec`),
  injects each failure class the tolerance layer claims to survive: a worker
  crash at round *k*, a sink raising every *m*-th emit, a NaN row burst at
  rate *p*, and a torn registry write.  Everything is seeded, so a chaos test
  can reconstruct exactly which rows were poisoned and assert the degraded
  run still matches the fault-free one.

Spec grammar (``repro serve --inject-faults SPEC``)::

    SPEC     := clause (';' clause)*
    clause   := NAME ['@' param (',' param)*]
    param    := KEY '=' VALUE
    NAME     := 'worker_crash' | 'worker_hang' | 'sink_raise'
              | 'nan_rows' | 'torn_write' | 'stall'

    worker_crash@round=K          crash one process worker at round K (once)
    worker_crash@every=N[,shard=S]  crash shard S's worker every N-th round
    worker_hang@round=K,seconds=T   hang a worker for T seconds at round K
    sink_raise@every=M            every M-th emit of each wrapped sink raises
    nan_rows@rate=P               poison each row with probability P (seeded)
    nan_rows@every=N,rows=J       poison J rows of every N-th batch
    torn_write                    tear the next published registry version
    stall@batch=K[,seconds=T]     sleep T seconds (default 2) before yielding
                                  batch K — a stuck producer; trips the
                                  ``--status-port`` heartbeat watchdog when
                                  T exceeds ``--health-deadline``

Example: ``worker_crash@every=1;sink_raise@every=1;nan_rows@rate=0.05`` is
the acceptance chaos mix — one worker killed per round, a sink raising on
every emit, a 5% poison-row stream.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.serve.telemetry.log import get_logger, log_event

_logger = get_logger("faults")

__all__ = [
    "FaultInjected",
    "FaultInjector",
    "QuarantinedRows",
    "RaisingSink",
    "RegistryRecovery",
    "ResilientSink",
    "SinkDisabled",
    "WorkerRestart",
    "call_with_retry",
    "emit_resilient",
    "wrap_sinks",
]


# -- structured fault events -----------------------------------------------------
@dataclass(frozen=True)
class QuarantinedRows:
    """Rows diverted to quarantine before scoring (poison-row isolation).

    ``row_indices`` are positions *within the incoming batch*; the rows never
    reach the detector, the rolling threshold window, the drift monitor or
    the refit window buffer, and they do not consume stream sample indices —
    the scored stream behaves exactly as if the rows had been deleted.
    """

    batch_index: int
    row_indices: tuple[int, ...]
    reason: str

    @property
    def n_rows(self) -> int:
        return len(self.row_indices)

    def to_dict(self) -> dict:
        return {
            "type": "quarantined_rows",
            "batch_index": self.batch_index,
            "row_indices": list(self.row_indices),
            "n_rows": self.n_rows,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class WorkerRestart:
    """One recovery of the sharded service's process pool.

    ``shards`` lists the shard indices whose round slice is being replayed
    (state is shipped per round, so the replay is side-effect-free);
    ``restarts`` is the cumulative respawn count against the
    ``max_worker_restarts`` budget, and ``degraded`` marks the budget-
    exhausted transition to in-parent sequential scoring.
    """

    round_index: int
    shards: tuple[int, ...]
    reason: str
    restarts: int
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "type": "worker_restart",
            "round_index": self.round_index,
            "shards": list(self.shards),
            "reason": self.reason,
            "restarts": self.restarts,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class SinkDisabled:
    """A sink was disabled after repeated consecutive emit failures."""

    sink: str
    n_errors: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "type": "sink_disabled",
            "sink": self.sink,
            "n_errors": self.n_errors,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class RegistryRecovery:
    """One corrupt/partial registry version quarantined by the recovery scan."""

    name: str
    version_dir: str
    reason: str
    quarantined_to: str

    def to_dict(self) -> dict:
        return {
            "type": "registry_recover",
            "name": self.name,
            "version_dir": self.version_dir,
            "reason": self.reason,
            "quarantined_to": self.quarantined_to,
        }


# -- sink fault isolation --------------------------------------------------------
class ResilientSink:
    """Wrap a sink so its failures cannot kill the scoring loop.

    Each ``emit`` is retried up to ``retries`` extra times; an emit that
    still fails is dropped *for this sink only* and counts one consecutive
    error.  After ``max_consecutive_errors`` consecutive failed emits the
    sink is disabled (further events are dropped silently) and ``emit``
    returns a :class:`SinkDisabled` event the caller should broadcast to the
    surviving sinks — :func:`emit_resilient` does exactly that.  A single
    successful emit resets the consecutive-error count, so a transiently
    flaky sink (full disk that clears, a pager briefly offline) is retried
    indefinitely rather than being disabled on scattered errors.

    ``close`` failures are swallowed too: shutdown must not raise through a
    half-broken sink.
    """

    def __init__(
        self,
        sink: Any,
        *,
        retries: int = 1,
        max_consecutive_errors: int = 3,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if max_consecutive_errors < 1:
            raise ValueError("max_consecutive_errors must be at least 1")
        self.inner = sink
        self.retries = retries
        self.max_consecutive_errors = max_consecutive_errors
        self.disabled_ = False
        self.n_errors_ = 0
        self.n_dropped_ = 0
        self.consecutive_errors_ = 0
        self.last_error_: BaseException | None = None

    def emit(self, event: Any) -> SinkDisabled | None:
        """Emit ``event``; returns a :class:`SinkDisabled` on the disabling emit."""
        if self.disabled_:
            self.n_dropped_ += 1
            return None
        for _ in range(self.retries + 1):
            try:
                self.inner.emit(event)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                self.n_errors_ += 1
                self.last_error_ = exc
                continue
            self.consecutive_errors_ = 0
            return None
        self.consecutive_errors_ += 1
        self.n_dropped_ += 1
        if self.consecutive_errors_ < self.max_consecutive_errors:
            return None
        self.disabled_ = True
        log_event(
            logging.WARNING,
            "sink_disabled",
            logger_=_logger,
            sink=type(self.inner).__name__,
            n_errors=self.n_errors_,
            consecutive=self.consecutive_errors_,
            last_error=repr(self.last_error_),
        )
        return SinkDisabled(
            sink=type(self.inner).__name__,
            n_errors=self.n_errors_,
            reason=(
                f"{self.consecutive_errors_} consecutive emit failures, "
                f"last: {self.last_error_!r}"
            ),
        )

    def close(self) -> None:
        try:
            self.inner.close()
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            self.n_errors_ += 1
            self.last_error_ = exc
            log_event(
                logging.WARNING,
                "sink_close_failed",
                logger_=_logger,
                sink=type(self.inner).__name__,
                error=repr(exc),
            )


def wrap_sinks(sinks: Sequence[Any]) -> list[ResilientSink]:
    """Wrap every sink in a :class:`ResilientSink` (idempotent)."""
    return [
        sink if isinstance(sink, ResilientSink) else ResilientSink(sink)
        for sink in sinks
    ]


def emit_resilient(sinks: Sequence[ResilientSink], event: Any) -> list[SinkDisabled]:
    """Emit ``event`` to every sink; broadcast any disabling to the survivors.

    Returns the :class:`SinkDisabled` events produced by this emit (empty in
    the healthy case), after delivering them to the still-enabled sinks so
    the operator's log records which sink went dark and why.
    """
    disabled: list[SinkDisabled] = []
    for sink in sinks:
        outcome = sink.emit(event)
        if outcome is not None:
            disabled.append(outcome)
    for notice in disabled:
        for sink in sinks:
            sink.emit(notice)
    return disabled


# -- retrying I/O ----------------------------------------------------------------
def call_with_retry(
    fn: Callable[[], Any],
    *,
    attempts: int = 3,
    backoff: float = 0.05,
    jitter_seed: int = 0,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn``, retrying transient failures with seeded-jitter backoff.

    The delay before retry ``i`` (1-based) is ``backoff * 2**(i-1)`` plus a
    deterministic jitter drawn from ``jitter_seed`` — reruns of the same
    seed back off identically, which keeps fault-injection tests and any
    timing-sensitive replay reproducible.  Only ``retry_on`` exceptions are
    retried (transient I/O by default); anything else — corruption errors,
    programming bugs — propagates immediately.  The last failure is
    re-raised once the attempt budget is exhausted.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if backoff < 0:
        raise ValueError("backoff must be non-negative")
    rng = np.random.default_rng(jitter_seed)
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 < attempts:
                delay = backoff * (2**attempt) * (1.0 + 0.25 * float(rng.random()))
                if delay > 0:
                    sleep(delay)
    assert last is not None
    raise last


# -- fault injection -------------------------------------------------------------
class FaultInjected(RuntimeError):
    """Raised by injected faults (a :class:`RaisingSink` emit, a torn write)."""


class RaisingSink:
    """Fault-injection wrapper: every ``every``-th emit raises instead.

    The raise happens *before* the inner emit, so the dropped event models a
    sink that failed to deliver.  ``close`` is forwarded untouched.
    """

    def __init__(self, sink: Any, *, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.inner = sink
        self.every = every
        self.n_calls_ = 0
        self.n_raised_ = 0

    def emit(self, event: Any) -> None:
        self.n_calls_ += 1
        if self.n_calls_ % self.every == 0:
            self.n_raised_ += 1
            raise FaultInjected(
                f"injected sink failure on emit #{self.n_calls_} "
                f"(every={self.every})"
            )
        self.inner.emit(event)

    def close(self) -> None:
        self.inner.close()


_FAULT_NAMES = (
    "worker_crash",
    "worker_hang",
    "sink_raise",
    "nan_rows",
    "torn_write",
    "stall",
)


@dataclass
class FaultInjector:
    """Deterministic, seeded injector for every failure class we tolerate.

    Build one from a spec string with :meth:`from_spec` (grammar in the
    module docstring) or directly from keyword arguments.  All injected
    faults are pure functions of ``(seed, position)`` — the same spec and
    seed poison the same rows, crash the same rounds and raise on the same
    emits on every run, which is what lets the chaos suite assert the
    degraded run equals the fault-free one.

    Worker crashes fire only on ``attempt == 0`` of a round: the supervised
    replay of the same round must succeed, exactly like a real crash that
    does not repeat (a crash that *did* repeat forever would exhaust the
    restart budget and degrade the service to sequential scoring — also a
    tested path, via ``max_worker_restarts=0``).
    """

    seed: int = 0
    crash_round: int | None = None
    crash_every: int | None = None
    crash_shard: int = 0
    hang_round: int | None = None
    hang_seconds: float = 2.0
    sink_raise_every: int | None = None
    nan_rate: float | None = None
    nan_every: int | None = None
    nan_rows: int = 1
    torn_write: bool = False
    stall_batch: int | None = None
    stall_seconds: float = 2.0
    spec: str = field(default="", repr=False)

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultInjector":
        """Parse a ``--inject-faults`` spec string (see module docstring)."""
        injector = cls(seed=seed, spec=spec)
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            name, _, raw_params = clause.partition("@")
            name = name.strip()
            if name not in _FAULT_NAMES:
                raise ValueError(
                    f"unknown fault {name!r} in spec {spec!r}; "
                    f"valid faults: {', '.join(_FAULT_NAMES)}"
                )
            params: dict[str, str] = {}
            if raw_params:
                for param in raw_params.split(","):
                    key, sep, value = param.partition("=")
                    if not sep or not key.strip() or not value.strip():
                        raise ValueError(
                            f"malformed parameter {param!r} in clause {clause!r} "
                            "(expected key=value)"
                        )
                    params[key.strip()] = value.strip()
            try:
                injector._apply_clause(name, params)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"invalid clause {clause!r}: {exc}") from exc
        return injector

    def _apply_clause(self, name: str, params: dict[str, str]) -> None:
        def _pop_int(key: str) -> int | None:
            return int(params.pop(key)) if key in params else None

        def _pop_float(key: str) -> float | None:
            return float(params.pop(key)) if key in params else None

        if name == "worker_crash":
            self.crash_round = _pop_int("round")
            self.crash_every = _pop_int("every")
            shard = _pop_int("shard")
            if shard is not None:
                self.crash_shard = shard
            if (self.crash_round is None) == (self.crash_every is None):
                raise ValueError("worker_crash needs exactly one of round= or every=")
        elif name == "worker_hang":
            self.hang_round = _pop_int("round")
            seconds = _pop_float("seconds")
            if seconds is not None:
                self.hang_seconds = seconds
            if self.hang_round is None:
                raise ValueError("worker_hang needs round=")
        elif name == "sink_raise":
            every = _pop_int("every")
            self.sink_raise_every = 1 if every is None else every
            if self.sink_raise_every < 1:
                raise ValueError("sink_raise every= must be at least 1")
        elif name == "nan_rows":
            self.nan_rate = _pop_float("rate")
            self.nan_every = _pop_int("every")
            rows = _pop_int("rows")
            if rows is not None:
                self.nan_rows = rows
            if (self.nan_rate is None) == (self.nan_every is None):
                raise ValueError("nan_rows needs exactly one of rate= or every=")
            if self.nan_rate is not None and not 0.0 <= self.nan_rate <= 1.0:
                raise ValueError("nan_rows rate= must be in [0, 1]")
        elif name == "stall":
            self.stall_batch = _pop_int("batch")
            seconds = _pop_float("seconds")
            if seconds is not None:
                self.stall_seconds = seconds
            if self.stall_batch is None:
                raise ValueError("stall needs batch=")
            if self.stall_seconds < 0:
                raise ValueError("stall seconds= must be non-negative")
        else:  # torn_write
            self.torn_write = True
        if params:
            raise ValueError(f"unknown parameter(s) for {name}: {sorted(params)}")

    # -- descriptions ------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary of the armed faults."""
        parts = []
        if self.crash_round is not None:
            parts.append(f"worker crash at round {self.crash_round} (shard {self.crash_shard})")
        if self.crash_every is not None:
            parts.append(f"worker crash every {self.crash_every} round(s) (shard {self.crash_shard})")
        if self.hang_round is not None:
            parts.append(f"worker hang {self.hang_seconds:g}s at round {self.hang_round}")
        if self.sink_raise_every is not None:
            parts.append(f"sink raises every {self.sink_raise_every} emit(s)")
        if self.nan_rate is not None:
            parts.append(f"NaN rows at rate {self.nan_rate:g}")
        if self.nan_every is not None:
            parts.append(f"{self.nan_rows} NaN row(s) every {self.nan_every} batch(es)")
        if self.torn_write:
            parts.append("torn registry write")
        if self.stall_batch is not None:
            parts.append(
                f"stream stalls {self.stall_seconds:g}s before batch "
                f"{self.stall_batch}"
            )
        return "; ".join(parts) if parts else "no faults armed"

    # -- NaN bursts --------------------------------------------------------------
    def poisoned_rows(self, batch_index: int, n_rows: int) -> np.ndarray:
        """Deterministic row indices poisoned in batch ``batch_index``.

        A pure function of ``(seed, batch_index)`` — the chaos suite calls
        this again to delete exactly those rows from the reference stream.
        """
        if n_rows <= 0:
            return np.empty(0, dtype=np.intp)
        if self.nan_rate is not None:
            rng = np.random.default_rng([self.seed, batch_index])
            return np.flatnonzero(rng.random(n_rows) < self.nan_rate)
        if self.nan_every is not None and batch_index % self.nan_every == 0:
            rng = np.random.default_rng([self.seed, batch_index])
            k = min(self.nan_rows, n_rows)
            return np.sort(rng.choice(n_rows, size=k, replace=False))
        return np.empty(0, dtype=np.intp)

    def corrupt_stream(self, stream: Iterable[Any]) -> Iterator[Any]:
        """Yield the stream with the armed NaN bursts written into copies.

        Tuple items (``FlowStream`` yields ``(X, y)``) keep their shape;
        only the feature block is copied and poisoned.  An armed ``stall``
        clause sleeps before yielding its batch — modelling a stuck
        producer so the heartbeat watchdog's NOT_OK flip is testable with a
        deterministic trigger point.
        """
        for batch_index, item in enumerate(stream):
            if batch_index == self.stall_batch:
                time.sleep(self.stall_seconds)
            if isinstance(item, tuple) and len(item) >= 1:
                X, rest = item[0], item[1:]
            else:
                X, rest = item, None
            X = np.asarray(X)
            rows = self.poisoned_rows(batch_index, int(X.shape[0]) if X.ndim else 0)
            if rows.size:
                X = np.array(X, dtype=np.float64, copy=True)
                X[rows] = np.nan
            yield X if rest is None else (X, *rest)

    # -- sink faults -------------------------------------------------------------
    def wrap_sinks(self, sinks: Sequence[Any]) -> list[Any]:
        """Wrap sinks with the armed raising fault (no-op when not armed)."""
        if self.sink_raise_every is None:
            return list(sinks)
        return [RaisingSink(sink, every=self.sink_raise_every) for sink in sinks]

    # -- worker faults -----------------------------------------------------------
    def maybe_fail_worker(self, round_index: int, shard: int, attempt: int) -> None:
        """Crash or hang the calling worker process when the fault matches.

        Runs inside the worker (the injector pickles into
        ``_score_round_in_subprocess``); ``os._exit`` models a hard death —
        no exception, no cleanup, exactly what the OOM killer does.  Only
        ``attempt == 0`` fires so the supervised replay succeeds.
        """
        if attempt != 0 or shard != self.crash_shard:
            return
        if self.hang_round is not None and round_index == self.hang_round:
            time.sleep(self.hang_seconds)
            return
        crash = (
            self.crash_round is not None and round_index == self.crash_round
        ) or (
            self.crash_every is not None and round_index % self.crash_every == 0
        )
        if crash:
            os._exit(17)

    @property
    def targets_workers(self) -> bool:
        return (
            self.crash_round is not None
            or self.crash_every is not None
            or self.hang_round is not None
        )

    # -- torn registry writes ----------------------------------------------------
    @staticmethod
    def tear_version(path: Any) -> str:
        """Simulate ``kill -9`` mid-publish on a published snapshot directory.

        Truncates ``arrays.npz`` to half its bytes when present (the
        manifest's SHA-256 no longer matches — the silent-corruption case);
        otherwise deletes ``manifest.json`` (death before the manifest was
        written).  Returns a description of the tear for logging.  The
        registry's recovery scan must quarantine the result either way.
        """
        from pathlib import Path

        path = Path(path)
        arrays = path / "arrays.npz"
        if arrays.is_file():
            data = arrays.read_bytes()
            arrays.write_bytes(data[: max(1, len(data) // 2)])
            return f"truncated {arrays} to half its bytes (sha mismatch)"
        manifest = path / "manifest.json"
        if manifest.is_file():
            manifest.unlink()
            return f"deleted {manifest} (torn before manifest write)"
        return f"nothing to tear at {path}"
