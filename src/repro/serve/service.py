"""Long-lived streaming detection service over any fitted detector.

:class:`DetectionService` consumes a
:class:`~repro.datasets.streaming.FlowStream` (or any iterator of feature
batches) and turns a fitted :class:`~repro.novelty.NoveltyDetector` into an
online scorer with the operational pieces a deployment needs:

* **micro-batched, validate-once scoring** — the feature width is checked
  once per stream; every incoming batch is re-chunked into at most
  ``micro_batch_size`` rows before scoring, so peak memory stays bounded no
  matter how large a producer's batches are, while the concatenated scores
  are identical to one-shot batch scoring (row-wise detectors);
* **thresholds over time** — a fixed threshold, the detector's own
  training-quantile default, or a rolling quantile of the most recent scores
  that follows slow drift of the score distribution;
* **structured alerts** through pluggable sinks (:mod:`repro.serve.sinks`);
* **drift monitoring** via :class:`~repro.serve.drift.DriftMonitor`, with an
  ``on_drift`` hook that can swap in a fresh model from a
  :class:`~repro.serve.registry.ModelRegistry` (see
  :func:`make_registry_reload`);
* **throughput/latency counters** built on
  :meth:`repro.utils.timing.Timer.throughput`;
* **telemetry** (:mod:`repro.serve.telemetry`) — every pipeline stage
  (quarantine scan, scoring, threshold update, drift check, sink emit,
  shadow double-score) runs under a :func:`~repro.serve.telemetry.trace_span`
  feeding a mergeable :class:`~repro.serve.telemetry.MetricsRegistry`
  (``metrics_snapshot()``), with optional JSONL span traces (``tracer``) and
  a periodic :class:`~repro.serve.telemetry.MetricsEvent` through the sinks
  (``metrics_every``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.metrics.thresholds import quantile_threshold
from repro.serve.drift import DriftMonitor, DriftReport, _RingBuffer
from repro.serve.faults import QuarantinedRows, emit_resilient, wrap_sinks
from repro.serve.telemetry.context import TraceContext
from repro.serve.telemetry.metrics import MetricsRegistry
from repro.serve.telemetry.tracing import SpanBuffer, SpanTracer, trace_span
from repro.utils.timing import Timer

__all__ = [
    "Alert",
    "BatchResult",
    "DetectionService",
    "DriftEvent",
    "ServiceReport",
    "make_registry_reload",
]


def _validate_stream_batch(
    X: np.ndarray, n_features: int | None
) -> tuple[np.ndarray, int]:
    """Shared validate-once batch check (sequential and sharded services).

    Returns the converted batch and the (possibly just-fixed) stream feature
    width; raises with identical messages from every service flavor.
    """
    X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    if X.ndim != 2:
        raise ValueError(f"stream batches must be 2-D, got shape {X.shape}")
    if n_features is None:
        n_features = int(X.shape[1])
    elif X.shape[1] != n_features:
        raise ValueError(
            f"stream batch has {X.shape[1]} features, "
            f"stream started with {n_features}"
        )
    return X, n_features


@dataclass(frozen=True)
class Alert:
    """One flagged flow: where in the stream it was and why."""

    batch_index: int
    sample_index: int  # global offset within the stream
    score: float
    threshold: float

    def to_dict(self) -> dict:
        return {
            "type": "alert",
            "batch_index": self.batch_index,
            "sample_index": self.sample_index,
            "score": self.score,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class DriftEvent:
    """Emitted to sinks when the drift monitor fires on a batch."""

    batch_index: int
    report: DriftReport

    def to_dict(self) -> dict:
        payload = self.report.to_dict()
        payload["batch_index"] = self.batch_index
        return payload


@dataclass(frozen=True)
class BatchResult:
    """Everything the service derived from one stream batch.

    ``model_epoch`` tags which served model scored the batch: it starts at 0
    and increments on every hot-swap (:meth:`DetectionService.reload_detector`),
    so a consumer — and the sharded service's coordinated-swap tests — can
    verify exactly which model version produced which scores.
    """

    index: int
    scores: np.ndarray
    predictions: np.ndarray
    threshold: float
    alerts: tuple[Alert, ...]
    drift: DriftReport | None
    latency_s: float
    model_epoch: int = 0
    #: Row indices (within the incoming batch) diverted to quarantine before
    #: scoring — non-finite rows, or the whole batch when its feature width
    #: broke the stream contract and ``quarantine_wrong_width`` is enabled.
    #: Quarantined rows never reach the detector, the rolling threshold, the
    #: drift monitor or the refit window, and do not consume sample indices.
    quarantined: tuple[int, ...] = ()
    quarantine_reason: str | None = None

    @property
    def n_samples(self) -> int:
        return int(self.scores.shape[0])

    @property
    def n_alerts(self) -> int:
        return len(self.alerts)


@dataclass
class ServiceReport:
    """Aggregate counters after a stream has been fully processed."""

    n_batches: int = 0
    n_samples: int = 0
    n_alerts: int = 0
    n_drift_events: int = 0
    drift_batches: list[int] = field(default_factory=list)
    total_time_s: float = 0.0
    throughput_samples_per_sec: float = 0.0
    mean_batch_latency_s: float = 0.0
    batch_latency_p50_s: float = 0.0
    batch_latency_p95_s: float = 0.0
    batch_latency_p99_s: float = 0.0
    n_quarantined: int = 0
    n_worker_restarts: int = 0
    n_disabled_sinks: int = 0

    def to_dict(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "n_samples": self.n_samples,
            "n_alerts": self.n_alerts,
            "n_drift_events": self.n_drift_events,
            "drift_batches": list(self.drift_batches),
            "total_time_s": self.total_time_s,
            "throughput_samples_per_sec": self.throughput_samples_per_sec,
            "mean_batch_latency_s": self.mean_batch_latency_s,
            "batch_latency_p50_s": self.batch_latency_p50_s,
            "batch_latency_p95_s": self.batch_latency_p95_s,
            "batch_latency_p99_s": self.batch_latency_p99_s,
            "n_quarantined": self.n_quarantined,
            "n_worker_restarts": self.n_worker_restarts,
            "n_disabled_sinks": self.n_disabled_sinks,
        }

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        lines = [
            f"processed {self.n_samples} flows in {self.n_batches} batches "
            f"({self.throughput_samples_per_sec:,.0f} flows/s, "
            f"{1e3 * self.mean_batch_latency_s:.2f} ms/batch)",
            f"batch latency: p50 {1e3 * self.batch_latency_p50_s:.2f} ms · "
            f"p95 {1e3 * self.batch_latency_p95_s:.2f} ms · "
            f"p99 {1e3 * self.batch_latency_p99_s:.2f} ms",
            f"alerts: {self.n_alerts}",
        ]
        if self.n_drift_events:
            batches = ", ".join(str(b) for b in self.drift_batches)
            lines.append(f"drift flagged on batch(es): {batches}")
        else:
            lines.append("drift: none flagged")
        if self.n_quarantined:
            lines.append(f"quarantined rows: {self.n_quarantined}")
        if self.n_worker_restarts:
            lines.append(f"worker restarts: {self.n_worker_restarts}")
        if self.n_disabled_sinks:
            lines.append(f"disabled sinks: {self.n_disabled_sinks}")
        return "\n".join(lines)


class DetectionService:
    """Serve a fitted detector over a stream of flow batches.

    Parameters
    ----------
    detector:
        Fitted object exposing ``score_samples(X) -> scores`` (all novelty
        detectors, :class:`~repro.serve.fusion.FusionDetector`, ...).
    threshold:
        ``"auto"`` uses the detector's training-quantile default
        (``threshold_`` attribute), ``"rolling"`` maintains a rolling-window
        quantile of recent scores, and a float fixes the threshold.
    rolling_window, rolling_quantile, min_rolling:
        Rolling-threshold configuration: window capacity (bounded memory),
        quantile of the window used as the threshold, and the number of
        scores required before the rolling estimate replaces the warm-up
        threshold (the detector default when available).
    micro_batch_size:
        Upper bound on rows scored per detector call; incoming batches are
        re-chunked to this size so memory stays bounded.
    drift_monitor:
        Optional :class:`~repro.serve.drift.DriftMonitor`; fed every batch.
    sinks:
        :mod:`repro.serve.sinks` instances receiving alerts and drift events.
        Every sink is wrapped in a
        :class:`~repro.serve.faults.ResilientSink`: a raising sink is
        retried, then disabled after repeated consecutive failures (a
        ``sink_disabled`` event reaches the surviving sinks) — a broken
        pager must never kill the scoring loop.
    quarantine_wrong_width:
        Diagnosed poison rows — any row with a non-finite feature — are
        *always* diverted to quarantine before scoring (a
        :class:`~repro.serve.faults.QuarantinedRows` event records their
        indices).  Set this flag to additionally quarantine a whole batch
        whose feature width breaks the stream contract instead of raising;
        the strict default keeps the historical error behavior.
    on_drift:
        ``callable(service, report)`` invoked when the monitor fires — e.g.
        :func:`make_registry_reload` to hot-swap the latest registry model.
    lifecycle:
        Optional :class:`~repro.serve.lifecycle.LifecycleManager` that owns
        the full drift reaction: every scored batch feeds its clean-window
        buffer, and when the monitor fires it refits, gates, publishes and
        hot-swaps (see :mod:`repro.serve.lifecycle`).  With a configured
        shadow evaluator the service double-scores each batch with the
        pending candidate (same micro-batched scorer) and the swap waits for
        the live-agreement verdict.  Mutually exclusive with ``on_drift`` —
        both reacting to the same firing would double the swaps.
    telemetry:
        Optional :class:`~repro.serve.telemetry.MetricsRegistry` to record
        into; a fresh registry is created when omitted (telemetry is always
        on — its hot-path cost is a few microseconds per batch).  Pass
        :data:`~repro.serve.telemetry.DISABLED` to switch instrumentation
        off entirely.  ``metrics_snapshot()`` exports the registry.
    tracer:
        Optional :class:`~repro.serve.telemetry.SpanTracer` (or
        :class:`~repro.serve.telemetry.SpanBuffer` inside shard workers);
        when set, every pipeline-stage span is also appended to its JSONL
        trace file (``repro serve --trace-file``).
    trace_context:
        Optional :class:`~repro.serve.telemetry.TraceContext` giving every
        recorded span deterministic ``trace_id``/``span_id``/
        ``parent_span_id`` fields: each batch runs under one ``batch`` span
        whose children are the stage spans.  Defaults to a fresh root
        context whenever a ``tracer`` is attached; shard workers are handed
        a per-round fork by the sharded service instead, so their batch
        spans nest under the parent's ``round_submit`` span.
    metrics_every:
        Emit a :class:`~repro.serve.telemetry.MetricsEvent` carrying the
        current metrics snapshot through the sinks every N batches
        (``None`` = never).
    """

    def __init__(
        self,
        detector: Any,
        *,
        threshold: float | str = "auto",
        rolling_window: int = 4096,
        rolling_quantile: float = 0.95,
        min_rolling: int = 64,
        micro_batch_size: int = 1024,
        drift_monitor: DriftMonitor | None = None,
        sinks: Sequence[Any] = (),
        on_drift: Callable[["DetectionService", DriftReport], None] | None = None,
        lifecycle: Any = None,
        quarantine_wrong_width: bool = False,
        telemetry: MetricsRegistry | None = None,
        tracer: SpanTracer | SpanBuffer | None = None,
        trace_context: TraceContext | None = None,
        metrics_every: int | None = None,
    ) -> None:
        if isinstance(threshold, str) and threshold not in ("auto", "rolling"):
            raise ValueError("threshold must be a float, 'auto' or 'rolling'")
        if rolling_window < 2:
            raise ValueError("rolling_window must be at least 2")
        if not 0.0 < rolling_quantile < 1.0:
            raise ValueError("rolling_quantile must be strictly between 0 and 1")
        if min_rolling < 1:
            raise ValueError("min_rolling must be at least 1")
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be at least 1")
        if metrics_every is not None and metrics_every < 1:
            raise ValueError("metrics_every must be at least 1 (or None)")
        if lifecycle is not None and on_drift is not None:
            raise ValueError(
                "pass either lifecycle or on_drift, not both: two handlers "
                "reacting to the same drift firing would swap the model twice"
            )
        self.detector = detector
        self.threshold = threshold
        self.rolling_window = rolling_window
        self.rolling_quantile = rolling_quantile
        self.min_rolling = min_rolling
        self.micro_batch_size = micro_batch_size
        self.drift_monitor = drift_monitor
        self.sinks = wrap_sinks(sinks)
        self.on_drift = on_drift
        self.lifecycle = lifecycle
        self.quarantine_wrong_width = quarantine_wrong_width
        self.telemetry = MetricsRegistry() if telemetry is None else telemetry
        self.tracer = tracer
        if trace_context is None and tracer is not None:
            trace_context = TraceContext.root()
        self.trace_context = trace_context
        #: Optional liveness/profiling hooks (``repro serve --status-port`` /
        #: ``--profile-mem``): the watchdog beats and the profiler samples
        #: once per completed batch.  Plain attributes so the sharded service
        #: and the CLI can attach them without widening every signature.
        self.heartbeat: Any = None
        self.profiler: Any = None
        self.metrics_every = metrics_every
        # Instrument handles are resolved once: the per-batch path must not
        # pay a registry dict lookup per counter.
        self._m_batches = self.telemetry.counter("pipeline.batches", unit="batches")
        self._m_rows = self.telemetry.counter("pipeline.rows", unit="rows")
        self._m_alerts = self.telemetry.counter("pipeline.alerts", unit="alerts")
        self._m_drift = self.telemetry.counter("pipeline.drift_events", unit="events")
        self._m_quarantined = self.telemetry.counter(
            "pipeline.quarantined_rows", unit="rows"
        )
        self._m_batch_seconds = self.telemetry.histogram(
            "pipeline.batch_seconds", unit="seconds"
        )
        self._m_batch_rows = self.telemetry.histogram(
            "pipeline.batch_rows", unit="rows"
        )
        # The lifecycle manager inherits this service's telemetry channel
        # unless it was wired to its own (refit/gate/publish spans land in
        # the same registry the batch spans do).
        if lifecycle is not None and getattr(lifecycle, "telemetry", None) is None:
            lifecycle.telemetry = self.telemetry
            if getattr(lifecycle, "tracer", None) is None:
                lifecycle.tracer = tracer

        self.timer = Timer()
        self.epoch_ = 0
        self.n_features_: int | None = None
        self.n_batches_ = 0
        self.n_samples_ = 0
        self.n_alerts_ = 0
        self.n_drift_events_ = 0
        self.n_quarantined_ = 0
        self.n_disabled_sinks_ = 0
        self.drift_batches_: list[int] = []
        self._rolling = _RingBuffer(rolling_window, 1)

    # -- model management --------------------------------------------------------
    def reload_detector(
        self, detector: Any, *, reset_rolling: bool = True, rebootstrap: bool = True
    ) -> None:
        """Swap the served model in place (used by drift-triggered swaps).

        The feature contract of the stream is unchanged, so the validate-once
        state is kept.  Everything derived from the *old model* is discarded:
        the rolling threshold window (by default) and the drift monitor's
        windows plus both of its references (``reset(rebootstrap=True)``) —
        the new model's scores may be centred elsewhere, and a refitted model
        was trained on post-drift traffic, so judging the stream against the
        pre-swap score *or feature* reference would re-fire drift (and
        re-swap) forever.  The monitor re-derives both references from the
        next streamed samples.

        Pass ``rebootstrap=False`` when the incoming model was *not* trained
        on recent traffic (e.g. re-serving a known, possibly stale registry
        version): the monitor then keeps its feature reference
        (``reset(clear_score_reference=True)``), so a persistent covariate
        shift keeps re-firing after each cooldown instead of being silently
        absorbed into a new baseline.

        Each swap advances :attr:`epoch_`, the model version tag carried by
        every subsequent :class:`BatchResult`.
        """
        self.detector = detector
        self.epoch_ += 1
        if reset_rolling:
            self._rolling = _RingBuffer(self.rolling_window, 1)
        if self.drift_monitor is not None:
            self.drift_monitor.reset(
                clear_score_reference=True, rebootstrap=rebootstrap
            )

    # -- scoring -----------------------------------------------------------------
    def _validate_once(self, X: np.ndarray) -> np.ndarray:
        X, self.n_features_ = _validate_stream_batch(X, self.n_features_)
        return X

    def _score_micro_batched(
        self, X: np.ndarray, detector: Any | None = None
    ) -> np.ndarray:
        """Score ``X`` in chunks of at most ``micro_batch_size`` rows.

        Row-wise detector scoring makes the concatenation identical to a
        single ``score_samples(X)`` call while bounding peak memory.  The
        served model is used unless ``detector`` overrides it — the shadow
        evaluation path double-scores each batch with the candidate through
        this same scorer, so both models see identical chunking.
        """
        detector = self.detector if detector is None else detector
        n = X.shape[0]
        if n <= self.micro_batch_size:
            return np.asarray(detector.score_samples(X), dtype=np.float64)
        scores = np.empty(n)
        for start in range(0, n, self.micro_batch_size):
            stop = min(start + self.micro_batch_size, n)
            scores[start:stop] = detector.score_samples(X[start:stop])
        return scores

    def _current_threshold(self, batch_scores: np.ndarray | None = None) -> float:
        """Threshold for the incoming batch, from *pre-batch* state only.

        The rolling window must not yet contain ``batch_scores``: a threshold
        that included the current batch would let a burst of anomalies inflate
        its own cut-off and evade alerting.  ``batch_scores`` is used solely to
        bootstrap the very first rolling threshold when the window is empty
        and the detector has no fitted default.
        """
        if isinstance(self.threshold, (int, float)):
            return float(self.threshold)
        detector_default = getattr(self.detector, "threshold_", None)
        if self.threshold == "auto":
            if detector_default is None:
                raise RuntimeError(
                    "threshold='auto' requires a fitted detector with a default "
                    "threshold_; fit the detector or use 'rolling'/a float"
                )
            return float(detector_default)
        # rolling: warm up on the detector default until enough scores arrived
        if self._rolling.count < self.min_rolling and detector_default is not None:
            return float(detector_default)
        if self._rolling.count == 0:
            if batch_scores is not None and batch_scores.size:
                return float(
                    quantile_threshold(batch_scores, self.rolling_quantile)
                )
            raise RuntimeError("rolling threshold requested before any scores arrived")
        return float(
            quantile_threshold(self._rolling.values().ravel(), self.rolling_quantile)
        )

    def _emit(self, event: Any) -> None:
        if not self.sinks:
            return
        # Span only when there are sinks to pay for: the sharded service's
        # sinkless shard workers record no emit spans, so folding their
        # registries into the sink-owning parent's matches a sequential run.
        # Emit spans parent to the *root* context, not the current batch: the
        # sharded parent emits at merge time (outside any batch span), so
        # root-level sink_emit is the one placement every mode agrees on.
        with trace_span(
            "sink_emit",
            metrics=self.telemetry,
            tracer=self.tracer,
            context=self.trace_context,
        ):
            self.n_disabled_sinks_ += len(emit_resilient(self.sinks, event))

    def process_batch(self, X: np.ndarray) -> BatchResult:
        """Score one batch: thresholds, alerts, drift, counters.

        Zero-row batches (an idle producer flushing an empty buffer) are
        counted in the report but skip scoring, threshold evaluation, alerts
        and drift — there is nothing to judge, and a rolling threshold over
        an empty window would otherwise raise at stream start.  Their
        :attr:`BatchResult.threshold` is ``nan``.

        Rows with non-finite features are quarantined *before* scoring: they
        are cut from the batch, announced via a
        :class:`~repro.serve.faults.QuarantinedRows` event, and never touch
        the rolling threshold, the drift monitor, or the lifecycle's refit
        window.  They also do not consume sample indices, so the surviving
        alerts are identical to a run on the stream with those rows deleted.

        The whole batch runs under one ``batch`` span; with a trace context
        the stage spans inside nest under it, so every batch forms one
        subtree of the trace in every worker mode.  The heartbeat watchdog
        and the memory profiler (when attached) fire once per completed
        batch, outside the span.
        """
        with trace_span(
            "batch",
            metrics=self.telemetry,
            tracer=self.tracer,
            batch_index=self.n_batches_,
            context=self.trace_context,
        ) as batch_span:
            result = self._process_batch(X, batch_span)
        if self.heartbeat is not None:
            self.heartbeat.beat()
        if self.profiler is not None:
            self.profiler.sample("batch")
        return result

    def _process_batch(self, X: np.ndarray, batch_span: trace_span) -> BatchResult:
        """The ``batch``-span body: quarantine, score, threshold, drift."""
        ctx = batch_span.ctx
        if self.quarantine_wrong_width:
            raw = np.asarray(X)
            if (
                raw.ndim == 2
                and self.n_features_ is not None
                and raw.shape[1] != self.n_features_
            ):
                return self._quarantine_batch(
                    int(raw.shape[0]),
                    f"batch has {raw.shape[1]} features, "
                    f"stream started with {self.n_features_}",
                )
        X = self._validate_once(X)
        quarantined: tuple[int, ...] = ()
        quarantine_reason: str | None = None
        if X.shape[0]:
            with trace_span(
                "quarantine_scan",
                metrics=self.telemetry,
                tracer=self.tracer,
                rows=int(X.shape[0]),
                batch_index=self.n_batches_,
                context=ctx,
            ):
                finite = np.isfinite(X).all(axis=1)
                if not finite.all():
                    quarantined = tuple(int(i) for i in np.flatnonzero(~finite))
                    X = np.ascontiguousarray(X[finite])
            if quarantined:
                quarantine_reason = "non-finite feature values"
                self.n_quarantined_ += len(quarantined)
                self._m_quarantined.inc(len(quarantined))
                self._emit(
                    QuarantinedRows(
                        batch_index=self.n_batches_,
                        row_indices=quarantined,
                        reason=quarantine_reason,
                    )
                )
        batch_index = self.n_batches_
        offset = self.n_samples_
        model_epoch = self.epoch_  # a drift-triggered swap below must not retag
        # Resolved before scoring: a trial that *starts* during this batch's
        # drift reaction begins shadow-scoring on the next batch.
        shadow_detector = (
            getattr(self.lifecycle, "shadow_candidate", None)
            if self.lifecycle is not None
            else None
        )
        shadow_scores: np.ndarray | None = None
        accumulated = self.timer.total
        n_rows = int(X.shape[0])
        batch_span.rows = n_rows
        with self.timer:
            if n_rows:
                with trace_span(
                    "score",
                    metrics=self.telemetry,
                    tracer=self.tracer,
                    rows=n_rows,
                    batch_index=batch_index,
                    context=ctx,
                ):
                    scores = self._score_micro_batched(X)
                # Threshold comes from the window *before* this batch (else a
                # burst of anomalies would inflate its own threshold and evade
                # alerting); only then does the batch enter the window.
                with trace_span(
                    "threshold_update",
                    metrics=self.telemetry,
                    tracer=self.tracer,
                    batch_index=batch_index,
                    context=ctx,
                ):
                    threshold = self._current_threshold(scores)
                    self._rolling.extend(scores[:, None])
                predictions = (scores > threshold).astype(np.int64)
                if shadow_detector is not None:
                    # Double-scoring is the whole cost of a shadow round; it
                    # counts toward the batch latency like any scoring work.
                    with trace_span(
                        "shadow_score",
                        metrics=self.telemetry,
                        tracer=self.tracer,
                        rows=n_rows,
                        batch_index=batch_index,
                        context=ctx,
                    ):
                        shadow_scores = self._score_micro_batched(
                            X, shadow_detector
                        )
            else:
                scores = np.empty(0, dtype=np.float64)
                threshold = float("nan")
                predictions = np.empty(0, dtype=np.int64)
        latency = self.timer.total - accumulated
        if scores.size:
            self._record_fusion_diagnostics()
        alerts = tuple(
            Alert(
                batch_index=batch_index,
                sample_index=offset + int(i),
                score=float(scores[i]),
                threshold=threshold,
            )
            for i in np.flatnonzero(predictions)
        )
        for alert in alerts:
            self._emit(alert)

        drift_report: DriftReport | None = None
        if self.drift_monitor is not None and scores.size:
            with trace_span(
                "drift_check",
                metrics=self.telemetry,
                tracer=self.tracer,
                rows=int(scores.size),
                batch_index=batch_index,
                context=ctx,
            ):
                drift_report = self.drift_monitor.update(scores, X)
        # Clean rows feed the refit window *before* any drift reaction: the
        # batch that fired the monitor is skipped by observe_batch, so the
        # acute transition never enters the window.
        if self.lifecycle is not None and scores.size:
            self.lifecycle.observe_batch(X, scores, threshold, drift_report)
        if drift_report is not None and drift_report.drifted:
            self.n_drift_events_ += 1
            self._m_drift.inc()
            self.drift_batches_.append(batch_index)
            self._emit(DriftEvent(batch_index=batch_index, report=drift_report))
            if self.lifecycle is not None:
                self.lifecycle.handle_drift(self, drift_report)
            elif self.on_drift is not None:
                self.on_drift(self, drift_report)
        # After the drift reaction (a pending trial makes handle_drift skip),
        # feed the shadow trial; a completed trial swaps (shadow_pass) or
        # discards the candidate (shadow_reject) — only then does epoch_ move.
        if shadow_scores is not None and self.lifecycle is not None:
            self.lifecycle.handle_shadow(self, scores, threshold, shadow_scores)

        self.n_batches_ += 1
        self.n_samples_ += int(scores.shape[0])
        self.n_alerts_ += len(alerts)
        self._m_batches.inc()
        self._m_rows.inc(int(scores.shape[0]))
        self._m_alerts.inc(len(alerts))
        self._m_batch_seconds.observe(latency)
        self._m_batch_rows.observe(float(scores.shape[0]))
        if self.metrics_every and self.n_batches_ % self.metrics_every == 0:
            self._emit(self.telemetry.event(batch_index))
        return BatchResult(
            index=batch_index,
            scores=scores,
            predictions=predictions,
            threshold=threshold,
            alerts=alerts,
            drift=drift_report,
            latency_s=latency,
            model_epoch=model_epoch,
            quarantined=quarantined,
            quarantine_reason=quarantine_reason,
        )

    def _quarantine_batch(self, n_rows: int, reason: str) -> BatchResult:
        """Divert a whole contract-breaking batch to quarantine.

        Mirrors the zero-row path — the batch is counted, nothing is scored,
        the threshold is ``nan`` — plus a :class:`QuarantinedRows` event
        naming every row.
        """
        batch_index = self.n_batches_
        indices = tuple(range(n_rows))
        self.n_quarantined_ += n_rows
        self._m_quarantined.inc(n_rows)
        self._emit(
            QuarantinedRows(
                batch_index=batch_index, row_indices=indices, reason=reason
            )
        )
        self.n_batches_ += 1
        self._m_batches.inc()
        self._m_batch_rows.observe(0.0)
        return BatchResult(
            index=batch_index,
            scores=np.empty(0, dtype=np.float64),
            predictions=np.empty(0, dtype=np.int64),
            threshold=float("nan"),
            alerts=(),
            drift=None,
            latency_s=0.0,
            model_epoch=self.epoch_,
            quarantined=indices,
            quarantine_reason=reason,
        )

    # -- stream consumption ------------------------------------------------------
    @staticmethod
    def _batch_features(item: Any) -> np.ndarray:
        # FlowStream yields (X, y); plain iterators may yield bare arrays.
        if isinstance(item, tuple) and len(item) >= 1:
            return item[0]
        return item

    def process(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        """Yield a :class:`BatchResult` per stream batch (lazy)."""
        for item in stream:
            yield self.process_batch(self._batch_features(item))

    def run(self, stream: Iterable[Any], *, close_sinks: bool = True) -> ServiceReport:
        """Consume the whole stream and return the aggregate report."""
        try:
            for _ in self.process(stream):
                pass
        finally:
            if close_sinks:
                for sink in self.sinks:
                    sink.close()
        return self.report()

    def _record_fusion_diagnostics(self) -> None:
        """Publish the served detector's per-member fusion diagnostics.

        :class:`~repro.serve.fusion.FusionDetector` records per-batch member
        weights, conflict mass and failed-member state on itself after every
        ``score_samples`` call; any detector exposing the same attributes is
        picked up.  Gauges hold the *latest* batch's values (NaN-sanitized —
        a failed member's weight is reported as 0 so snapshots stay strict
        JSON); plain detectors record nothing.
        """
        weights = getattr(self.detector, "member_weights_", None)
        if weights is None:
            return
        telemetry = self.telemetry
        failed = getattr(self.detector, "member_failed_", ()) or ()
        failed_indices = {entry.get("index") for entry in failed}
        for i, weight in enumerate(weights):
            weight = float(weight)
            telemetry.gauge(f"fusion.member_weight.{i}", unit="weight").set(
                weight if np.isfinite(weight) else 0.0
            )
            telemetry.gauge(f"fusion.member_failed.{i}", unit="flag").set(
                1.0 if i in failed_indices else 0.0
            )
        conflict = getattr(self.detector, "conflict_mass_", None)
        if conflict is not None:
            conflict = float(conflict)
            telemetry.gauge("fusion.conflict_mass", unit="mass").set(
                conflict if np.isfinite(conflict) else 0.0
            )

    def metrics_snapshot(self) -> dict:
        """Dict export of this service's metrics registry."""
        return self.telemetry.snapshot()

    def report(self) -> ServiceReport:
        """Aggregate counters so far (usable mid-stream as well)."""
        # Throughput comes from the batch-latency histogram's exact sum — the
        # true accumulated scoring time — with Timer.total as the fallback
        # when telemetry is DISABLED.  With no samples the rate is 0.0, not
        # an "immeasurably fast" inf (which would also leak non-strict JSON
        # through to_dict()); a measured-as-zero elapsed keeps the historical
        # inf semantics.
        hist = self._m_batch_seconds
        if self.n_samples_:
            elapsed = hist.sum if hist.count else self.timer.total
            throughput = (
                self.n_samples_ / elapsed if elapsed > 0.0 else float("inf")
            )
        else:
            throughput = 0.0
        return ServiceReport(
            n_batches=self.n_batches_,
            n_samples=self.n_samples_,
            n_alerts=self.n_alerts_,
            n_drift_events=self.n_drift_events_,
            drift_batches=list(self.drift_batches_),
            total_time_s=self.timer.total,
            throughput_samples_per_sec=throughput,
            mean_batch_latency_s=self.timer.mean,
            batch_latency_p50_s=hist.percentile(0.50),
            batch_latency_p95_s=hist.percentile(0.95),
            batch_latency_p99_s=hist.percentile(0.99),
            n_quarantined=self.n_quarantined_,
            n_disabled_sinks=self.n_disabled_sinks_,
        )


def make_registry_reload(
    registry: Any,
    name: str,
    *,
    version: int | str | None = None,
    reset_rolling: bool = True,
    rebootstrap: bool = False,
) -> Callable[[DetectionService, DriftReport], None]:
    """Build an ``on_drift`` hook that reloads ``name`` from a model registry.

    Every firing of the drift monitor re-resolves the selector (``None`` =
    pinned-or-latest), so publishing a retrained model to the registry is all
    an operator has to do for the service to pick it up on the next drift
    signal.

    By default the swap keeps the monitor's *feature* reference
    (``rebootstrap=False``): a plain reload may well resolve to the same
    stale model, and re-baselining the features on it would permanently
    silence a persistent covariate shift — the recurring re-fire after each
    cooldown *is* the operator's signal that the reloaded model still does
    not fit the traffic.  Pass ``rebootstrap=True`` when every published
    version is known to be trained on recent traffic.  (The
    :mod:`repro.serve.lifecycle` refit path always rebootstraps — its swaps
    are guaranteed to be models trained on the post-drift window.)
    """

    def _reload(service: DetectionService, report: DriftReport) -> None:
        service.reload_detector(
            registry.load(name, version),
            reset_rolling=reset_rolling,
            rebootstrap=rebootstrap,
        )

    return _reload
