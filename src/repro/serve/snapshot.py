"""Pickle-free model snapshots: a versioned JSON manifest plus one ``.npz``.

A snapshot is a directory::

    <snapshot>/
        manifest.json   # format version, root class, object graph, metadata
        arrays.npz      # every ndarray of the model state, keyed by the graph

``manifest.json`` stores the model as an explicit object graph: a flat list of
``{"t": "obj", "cls": "module:QualName", "attrs": {...}}`` entries referenced
by index, so shared objects (a random generator passed down to sub-estimators,
sub-detectors of an ensemble) stay shared after loading.  Arrays are stored in
the ``.npz`` and referenced by key.  Nothing is ever ``eval``-ed or unpickled:
loading imports classes by name — restricted to this package — allocates them
with ``cls.__new__`` and fills ``__dict__`` from the manifest.

Caches that are cheap to rebuild or only serve the retained naive reference
implementations (linked tree nodes, layer activation caches, lazily compiled
single-tree forests) are declared *transient* via a ``_snapshot_transient_``
class attribute and round-trip as ``None``; every scoring path used in
deployment works on the persisted arrays alone and reproduces the original
scores bit for bit.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

import numpy as np

from repro._version import __version__

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "save_snapshot",
    "load_snapshot",
    "read_manifest",
]

#: Format version written to every manifest; the loader rejects anything newer.
SNAPSHOT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Only classes from these top-level packages may be instantiated on load.
_ALLOWED_PACKAGES = ("repro",)


class SnapshotError(ValueError):
    """Raised when model state cannot be serialized or a snapshot is invalid."""


def _sha256_file(path: Path) -> str:
    """Streaming SHA-256 of a file (bounded memory for large array stores)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _transient_attrs(cls: type) -> frozenset:
    """Union of ``_snapshot_transient_`` declarations across the class MRO."""
    names: set[str] = set()
    for base in cls.__mro__:
        names.update(getattr(base, "_snapshot_transient_", ()) or ())
    return frozenset(names)


def _class_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    package = module_name.split(".", 1)[0]
    if package not in _ALLOWED_PACKAGES or not qualname:
        raise SnapshotError(f"snapshot references a disallowed class {path!r}")
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise SnapshotError(f"snapshot references unknown class {path!r}")
    if not isinstance(obj, type):
        raise SnapshotError(f"snapshot class reference {path!r} is not a class")
    return obj


def _jsonify_rng_state(value: Any) -> Any:
    """Bit-generator state with any ndarray leaves made JSON-safe."""
    if isinstance(value, dict):
        return {k: _jsonify_rng_state(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {"__nd__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _restore_rng_state(value: Any) -> Any:
    if isinstance(value, dict):
        if "__nd__" in value:
            return np.asarray(value["__nd__"], dtype=value["dtype"])
        return {k: _restore_rng_state(v) for k, v in value.items()}
    return value


class _Encoder:
    """Walk a model's object graph into JSON specs plus an array store."""

    def __init__(self) -> None:
        self.arrays: dict[str, np.ndarray] = {}
        self.objects: list[dict[str, Any]] = []
        self._object_memo: dict[int, int] = {}
        self._array_memo: dict[int, str] = {}
        self._path: list[str] = []

    def encode(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, str)):
            return value
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, np.generic):
            return {"t": "np", "dtype": str(value.dtype), "v": value.item()}
        if isinstance(value, np.ndarray):
            return self._encode_array(value)
        if isinstance(value, (list, tuple)):
            kind = "list" if isinstance(value, list) else "tuple"
            items = []
            for i, item in enumerate(value):
                self._path.append(f"[{i}]")
                items.append(self.encode(item))
                self._path.pop()
            return {"t": kind, "v": items}
        if isinstance(value, dict):
            encoded: dict[str, Any] = {}
            for key, item in value.items():
                if not isinstance(key, str):
                    self._fail(f"dict key {key!r} is not a string")
                self._path.append(f"[{key!r}]")
                encoded[key] = self.encode(item)
                self._path.pop()
            return {"t": "dict", "v": encoded}
        if isinstance(value, np.random.Generator):
            return self._encode_object(value, self._rng_entry)
        if type(value).__module__.split(".", 1)[0] in _ALLOWED_PACKAGES:
            return self._encode_object(value, self._instance_entry)
        self._fail(f"cannot serialize a value of type {type(value).__name__}")
        raise AssertionError  # pragma: no cover - _fail always raises

    def _encode_array(self, value: np.ndarray) -> dict[str, Any]:
        if value.dtype == object:
            self._fail("object-dtype arrays are not serializable without pickle")
        key = self._array_memo.get(id(value))
        if key is None:
            key = f"a{len(self.arrays)}"
            self.arrays[key] = value
            self._array_memo[id(value)] = key
        return {"t": "nd", "k": key}

    def _encode_object(self, value: Any, make_entry) -> dict[str, Any]:
        index = self._object_memo.get(id(value))
        if index is None:
            index = len(self.objects)
            self._object_memo[id(value)] = index
            self.objects.append({})  # reserve the slot before recursing
            self.objects[index] = make_entry(value)
        return {"t": "ref", "i": index}

    def _rng_entry(self, rng: np.random.Generator) -> dict[str, Any]:
        bit_generator = rng.bit_generator
        return {
            "t": "rng",
            "bg": type(bit_generator).__name__,
            "state": _jsonify_rng_state(bit_generator.state),
        }

    def _instance_entry(self, value: Any) -> dict[str, Any]:
        cls = type(value)
        if not hasattr(value, "__dict__"):
            self._fail(f"instances of {cls.__name__} carry no __dict__")
        transient = _transient_attrs(cls)
        attrs: dict[str, Any] = {}
        for name, attr in vars(value).items():
            self._path.append(f".{name}")
            attrs[name] = None if name in transient else self.encode(attr)
            self._path.pop()
        return {"t": "obj", "cls": _class_path(cls), "attrs": attrs}

    def _fail(self, message: str) -> None:
        location = "".join(self._path) or "<root>"
        raise SnapshotError(f"at {location}: {message}")


class _Decoder:
    """Rebuild the object graph encoded by :class:`_Encoder`."""

    def __init__(self, objects: list[dict[str, Any]], arrays: dict[str, np.ndarray]) -> None:
        self._specs = objects
        self._arrays = arrays
        # Phase 1: allocate every instance so references (including any
        # cycles) resolve before attributes are filled in.
        self._instances: list[Any] = [self._allocate(spec) for spec in objects]
        for spec, instance in zip(objects, self._instances):
            if spec.get("t") == "obj":
                attrs = {
                    name: self.decode(attr_spec)
                    for name, attr_spec in spec["attrs"].items()
                }
                instance.__dict__.update(attrs)

    @staticmethod
    def _allocate(spec: dict[str, Any]) -> Any:
        kind = spec.get("t")
        if kind == "obj":
            cls = _resolve_class(spec["cls"])
            return cls.__new__(cls)
        if kind == "rng":
            bit_generator_cls = getattr(np.random, spec["bg"], None)
            if bit_generator_cls is None or not isinstance(bit_generator_cls, type):
                raise SnapshotError(f"unknown bit generator {spec['bg']!r}")
            bit_generator = bit_generator_cls()
            bit_generator.state = _restore_rng_state(spec["state"])
            return np.random.Generator(bit_generator)
        raise SnapshotError(f"unknown object entry kind {kind!r}")

    def decode(self, spec: Any) -> Any:
        if spec is None or isinstance(spec, (bool, int, float, str)):
            return spec
        if not isinstance(spec, dict):
            raise SnapshotError(f"malformed state spec of type {type(spec).__name__}")
        kind = spec.get("t")
        if kind == "ref":
            return self._instances[spec["i"]]
        if kind == "nd":
            try:
                return self._arrays[spec["k"]]
            except KeyError as exc:
                raise SnapshotError(f"missing array {spec['k']!r} in snapshot") from exc
        if kind == "np":
            return np.dtype(spec["dtype"]).type(spec["v"])
        if kind == "list":
            return [self.decode(item) for item in spec["v"]]
        if kind == "tuple":
            return tuple(self.decode(item) for item in spec["v"])
        if kind == "dict":
            return {key: self.decode(item) for key, item in spec["v"].items()}
        raise SnapshotError(f"unknown state spec kind {kind!r}")


def save_snapshot(
    model: Any,
    path: str | Path,
    *,
    metadata: dict[str, Any] | None = None,
    overwrite: bool = False,
) -> Path:
    """Persist ``model`` under the directory ``path`` and return that path.

    Parameters
    ----------
    model:
        Any estimator from this package (novelty detectors, tree ensembles,
        continual methods, fusion detectors).
    path:
        Snapshot directory; created (with parents) if missing.
    metadata:
        Optional JSON-serializable extra information stored in the manifest
        (e.g. training dataset, operator notes).
    overwrite:
        Refuse to clobber an existing snapshot unless set.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if manifest_path.exists() and not overwrite:
        raise FileExistsError(f"snapshot already exists at {path} (pass overwrite=True)")
    encoder = _Encoder()
    state = encoder.encode(model)
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "repro_version": __version__,
        "class": _class_path(type(model)),
        "created_at": datetime.now(timezone.utc).isoformat(),
        "metadata": metadata or {},
        "state": state,
        "objects": encoder.objects,
        "arrays_file": ARRAYS_NAME if encoder.arrays else None,
    }
    try:
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot metadata is not JSON-serializable: {exc}") from exc
    path.mkdir(parents=True, exist_ok=True)
    if encoder.arrays:
        with open(path / ARRAYS_NAME, "wb") as handle:
            np.savez_compressed(handle, **encoder.arrays)
        # Content hash per artifact, written after the artifact so the
        # manifest vouches for the exact bytes on disk; load_snapshot
        # verifies it and refuses silently corrupted model state.
        manifest["artifacts"] = {
            ARRAYS_NAME: {"sha256": _sha256_file(path / ARRAYS_NAME)}
        }
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True)
    # The manifest is written last and atomically: a crash mid-save leaves
    # either no manifest (the snapshot is invisible to the registry and
    # quarantined by its recovery scan) or a complete one that vouches for
    # the artifact bytes — never a torn file that parses as garbage.
    tmp_path = path / (MANIFEST_NAME + ".tmp")
    tmp_path.write_text(manifest_text + "\n")
    os.replace(tmp_path, manifest_path)
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Return the parsed ``manifest.json`` of a snapshot directory."""
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no snapshot manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise SnapshotError(f"snapshot at {path} has an invalid format version {version!r}")
    if version > SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot at {path} uses format version {version}, but this build "
            f"only understands up to {SNAPSHOT_FORMAT_VERSION}"
        )
    return manifest


def load_snapshot(path: str | Path, *, expected_class: type | None = None) -> Any:
    """Rebuild the model stored at ``path``.

    Parameters
    ----------
    path:
        Snapshot directory written by :func:`save_snapshot`.
    expected_class:
        When given, the loaded object must be an instance of this class
        (subclasses allowed); ``TypeError`` is raised otherwise.
    """
    path = Path(path)
    manifest = read_manifest(path)
    for artifact_name, info in (manifest.get("artifacts") or {}).items():
        artifact_path = path / artifact_name
        if not artifact_path.is_file():
            raise SnapshotError(
                f"snapshot at {path} is missing artifact {artifact_name!r} "
                "listed in its manifest"
            )
        expected = info.get("sha256")
        if expected is not None:
            actual = _sha256_file(artifact_path)
            if actual != expected:
                raise SnapshotError(
                    f"snapshot artifact {artifact_name!r} at {path} is corrupted: "
                    f"sha256 {actual} does not match the manifest's {expected} "
                    "(re-publish the model or restore the file from backup)"
                )
    arrays: dict[str, np.ndarray] = {}
    if manifest.get("arrays_file"):
        with np.load(path / manifest["arrays_file"], allow_pickle=False) as stored:
            arrays = {key: stored[key] for key in stored.files}
    decoder = _Decoder(manifest.get("objects", []), arrays)
    model = decoder.decode(manifest["state"])
    if expected_class is not None and not isinstance(model, expected_class):
        raise TypeError(
            f"snapshot at {path} holds a {type(model).__name__}, "
            f"expected {expected_class.__name__}"
        )
    return model
