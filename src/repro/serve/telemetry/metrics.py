"""Process-local metrics primitives for the serving stack.

:class:`MetricsRegistry` holds named :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments with a flat dict export
(:meth:`MetricsRegistry.snapshot`).  Three properties shape the design:

* **O(1) memory** — histograms bucket observations into a *fixed* log-spaced
  boundary grid (:func:`log_spaced_buckets`); only the per-bucket counts plus
  exact ``count``/``sum``/``min``/``max`` accumulate, never the samples.
  Percentiles (:meth:`Histogram.percentile`) are estimated from the bucket
  counts by geometric interpolation, clamped to the observed range.
* **Mergeable** — every instrument folds another instance of itself
  (:meth:`MetricsRegistry.merge` / :meth:`MetricsRegistry.fold`), which is
  how the sharded service folds its workers' registries into one global view.
  Counter and histogram merges are commutative sums; gauges adopt the last
  value *in fold order*, so folding shards in global shard order keeps the
  merged view deterministic.
* **Deterministic counter values** — counts (batches, rows, events, span
  calls) depend only on the stream, never on timing, so sequential, thread
  and process runs over the same stream produce identical values.  Wall-time
  *observations* obviously differ run to run; :func:`deterministic_view`
  strips them from a snapshot, leaving exactly the subset two runs of any
  worker mode must agree on (used by the metrics-merge determinism tests).

Everything here is plain Python + tuples, so a registry pickles cheaply —
the process-mode sharded service ships each shard's registry back with its
round state.  A :class:`MetricsEvent` wraps a snapshot for the ordinary sink
fabric (``DetectionService(metrics_every=N)`` emits one every N batches).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsEvent",
    "MetricsRegistry",
    "deterministic_view",
    "log_spaced_buckets",
]


def log_spaced_buckets(lo: float, hi: float, n: int) -> tuple[float, ...]:
    """``n`` log-spaced upper bounds from ``lo`` to ``hi`` (inclusive).

    ``bounds[i] = lo * (hi/lo)**(i/(n-1))`` — a fixed geometric grid, so two
    histograms built from the same parameters always merge.
    """
    if not 0.0 < lo < hi:
        raise ValueError("need 0 < lo < hi for log-spaced buckets")
    if n < 2:
        raise ValueError("need at least 2 bucket bounds")
    ratio = hi / lo
    return tuple(lo * ratio ** (i / (n - 1)) for i in range(n))


#: Default bucket grids by unit: 1 µs .. 100 s for latencies (5 per decade),
#: 1 .. ~1M for row counts (powers of two), 4 KiB .. 128 GiB for byte sizes
#: (powers of two — memory-profiler RSS/tracemalloc samples).
DEFAULT_BUCKETS: dict[str | None, tuple[float, ...]] = {
    "seconds": log_spaced_buckets(1e-6, 100.0, 41),
    "rows": tuple(float(2**k) for k in range(21)),
    "bytes": tuple(float(2**k) for k in range(12, 38)),
}
_GENERIC_BUCKETS = log_spaced_buckets(1e-3, 1e6, 46)


class Counter:
    """Monotonic count; merge is a plain sum (commutative, deterministic)."""

    __slots__ = ("name", "unit", "help", "value")
    kind = "counter"

    def __init__(self, name: str, *, unit: str = "count", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def export(self) -> dict:
        return {"value": self.value, "unit": self.unit}


class Gauge:
    """Last-set value.  Merging adopts the other gauge's value when it was
    ever set, so folding registries *in global order* makes "last writer wins"
    deterministic.  ``n_sets`` counts writes (and rides through merges)."""

    __slots__ = ("name", "unit", "help", "value", "n_sets")
    kind = "gauge"

    def __init__(self, name: str, *, unit: str = "value", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0.0
        self.n_sets = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.n_sets += 1

    def merge(self, other: "Gauge") -> None:
        if other.n_sets:
            self.value = other.value
        self.n_sets += other.n_sets

    def export(self) -> dict:
        return {"value": self.value, "unit": self.unit}


class Histogram:
    """Fixed-bucket histogram with exact ``count``/``sum``/``min``/``max``.

    ``bounds`` are inclusive upper edges; one overflow bucket past the last
    edge catches everything larger.  Memory is ``len(bounds) + 1`` integers
    regardless of how many values are observed.
    """

    __slots__ = ("name", "unit", "help", "bounds", "counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        *,
        unit: str = "seconds",
        buckets: Iterable[float] | None = None,
        help: str = "",
    ) -> None:
        self.name = name
        self.unit = unit
        self.help = help
        if buckets is None:
            buckets = DEFAULT_BUCKETS.get(unit, _GENERIC_BUCKETS)
        self.bounds = tuple(float(b) for b in buckets)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Bucket-estimated ``q``-quantile (``q`` in [0, 1]), 0.0 when empty.

        The rank-``ceil(q * count)`` observation's bucket is located, the
        estimate is the geometric midpoint of its edges, and the result is
        clamped to the exact observed ``[min, max]`` — so a histogram with a
        single distinct value reports that value for every percentile.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        rank = max(1, min(self.count, int(q * self.count + 0.9999999999)))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                if lo > 0 and hi > 0:
                    estimate = (lo * hi) ** 0.5
                else:
                    estimate = (lo + hi) / 2.0
                return float(min(self.max, max(self.min, estimate)))
        return float(self.max)  # pragma: no cover - counts always sum to count

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds differ"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def export(self) -> dict:
        empty = self.count == 0
        return {
            "unit": self.unit,
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.counts),
        }


class _NullInstrument:
    """No-op stand-in with every instrument's write API (see :data:`DISABLED`)."""

    __slots__ = ()
    bounds: tuple[float, ...] = ()
    value = 0
    n_sets = 0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def merge(self, other: Any) -> None:
        pass

    def export(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments with get-or-create access and a dict snapshot.

    Instruments are created on first use (``registry.counter("pipeline.rows",
    unit="rows").inc(n)``); asking for an existing name with a different kind
    or unit raises — one name, one meaning.  The registry is plain Python and
    pickles, so shard registries ship to/from process workers with their
    round state.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self.enabled = True

    def _get(self, name: str, kind: str, factory: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, *, unit: str = "count", help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, unit=unit, help=help))

    def gauge(self, name: str, *, unit: str = "value", help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, unit=unit, help=help))

    def histogram(
        self,
        name: str,
        *,
        unit: str = "seconds",
        buckets: Iterable[float] | None = None,
        help: str = "",
    ) -> Histogram:
        return self._get(
            name,
            "histogram",
            lambda: Histogram(name, unit=unit, buckets=buckets, help=help),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # -- merging -----------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry (in ``other``'s
        name order); missing instruments are created with matching config."""
        for name in sorted(other._instruments):
            instrument = other._instruments[name]
            if instrument.kind == "counter":
                mine = self.counter(name, unit=instrument.unit, help=instrument.help)
            elif instrument.kind == "gauge":
                mine = self.gauge(name, unit=instrument.unit, help=instrument.help)
            else:
                mine = self.histogram(
                    name,
                    unit=instrument.unit,
                    buckets=instrument.bounds,
                    help=instrument.help,
                )
            if mine.unit != instrument.unit:
                raise ValueError(
                    f"cannot merge metric {name!r}: unit "
                    f"{instrument.unit!r} != {mine.unit!r}"
                )
            mine.merge(instrument)
        return self

    @classmethod
    def fold(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Pure merge of ``registries`` (in the given order) into a fresh one.

        The sharded service folds ``[parent, shard 0, shard 1, ...]`` — a
        deterministic global order — every time a snapshot is needed, so
        repeated folding never double-counts.
        """
        merged = cls()
        for registry in registries:
            merged.merge(registry)
        return merged

    # -- export ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat dict export: ``{"counters": ..., "gauges": ..., "histograms":
        ...}``, names sorted, every value JSON-serializable."""
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            {"counter": counters, "gauge": gauges, "histogram": histograms}[
                instrument.kind
            ][name] = instrument.export()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def event(self, batch_index: int) -> "MetricsEvent":
        return MetricsEvent(batch_index=batch_index, snapshot=self.snapshot())


class _DisabledRegistry(MetricsRegistry):
    """The no-op registry: every instrument lookup returns one shared null
    object, so instrumented code paths cost a dict-free method call and
    nothing else.  Used by the telemetry benchmark's "uninstrumented" arm
    (``DetectionService(telemetry=DISABLED)``)."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def counter(self, name: str, **kwargs: Any) -> Any:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **kwargs: Any) -> Any:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **kwargs: Any) -> Any:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def merge(self, other: MetricsRegistry) -> MetricsRegistry:
        return self

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared disabled registry: pass as ``telemetry=DISABLED`` to switch a
#: service's instrumentation off entirely.
DISABLED = _DisabledRegistry()


@dataclass(frozen=True)
class MetricsEvent:
    """A metrics snapshot flowing through the ordinary sink fabric."""

    batch_index: int
    snapshot: Mapping[str, Any]

    def to_dict(self) -> dict:
        return {
            "type": "metrics",
            "batch_index": self.batch_index,
            "snapshot": dict(self.snapshot),
        }


def deterministic_view(snapshot: Mapping[str, Any]) -> dict:
    """The timing-free subset of a snapshot two runs of the same stream share.

    Keeps every counter whose unit is not ``"seconds"``, every non-seconds
    histogram in full, and only the *count* of seconds histograms (how many
    latencies were observed is deterministic; their values are not).  Gauges
    are dropped: a gauge holds "the last batch's value", and which shard
    scored the globally-last batch is mode-dependent.
    """
    counters = {
        name: entry
        for name, entry in snapshot.get("counters", {}).items()
        if entry.get("unit") != "seconds"
    }
    histograms: dict[str, Any] = {}
    for name, entry in snapshot.get("histograms", {}).items():
        if entry.get("unit") == "seconds":
            histograms[name] = {"unit": "seconds", "count": entry.get("count", 0)}
        else:
            histograms[name] = dict(entry)
    return {"counters": counters, "histograms": histograms}
