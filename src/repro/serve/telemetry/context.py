"""Deterministic trace-context propagation for distributed spans.

A :class:`TraceContext` gives every span a ``trace_id`` / ``span_id`` /
``parent_span_id`` triple without consulting ``random`` or the wall clock
(RL001): span ids are *hierarchical dotted paths* allocated from per-context
counters — the root context hands out ``"1"``, ``"2"``, ...; the context
under span ``"2"`` hands out ``"2.1"``, ``"2.2"``; a shard fork of that
context hands out ``"2.s0.1"``, ``"2.s0.2"``.  Two consequences matter for
the serving stack:

* **Reproducible trees** — allocation depends only on the order spans open
  under one context, so sequential, thread and process runs of the same
  stream produce the same span *tree shape* (parent/child edges and stage
  multiset), and replaying a round after a worker crash re-allocates the
  *same* ids (idempotent, no duplicates).
* **Race-free concurrency** — contexts are deliberately *not* shared across
  threads; instead the coordinator :meth:`fork`\\ s one child namespace per
  shard (``s0``, ``s1``, ...), so concurrent workers can never interleave on
  one counter.  A fork does not consume ids from its parent, which is what
  makes round replay deterministic.

Contexts pickle (the process-mode sharded service ships one per shard with
the per-round scalar state), and the dotted ids are collision-free across
process boundaries because each process only allocates inside the namespace
it was handed.
"""

from __future__ import annotations

__all__ = ["TraceContext"]


class TraceContext:
    """One id-allocation namespace under one parent span.

    ``trace_id`` names the whole trace; ``span_id`` is the parent span that
    spans opened under this context attach to (``None`` at the root).
    :meth:`allocate` mints the next child span id; :meth:`child` descends
    under an allocated span; :meth:`fork` splits off a disjoint namespace
    with the *same* parent span (one per shard/worker).
    """

    __slots__ = ("trace_id", "span_id", "_prefix", "_n_children")

    def __init__(
        self,
        trace_id: str,
        span_id: str | None = None,
        _prefix: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self._prefix = _prefix
        self._n_children = 0

    @classmethod
    def root(cls, seed: int = 0) -> "TraceContext":
        """The root context of a fresh trace; ``seed`` names the trace."""
        return cls(trace_id=f"t{int(seed):04d}")

    def allocate(self) -> str:
        """Mint the next span id in this namespace (deterministic counter)."""
        self._n_children += 1
        if self._prefix:
            return f"{self._prefix}.{self._n_children}"
        return str(self._n_children)

    def child(self, span_id: str) -> "TraceContext":
        """The context *under* an allocated span: children of ``span_id``."""
        return TraceContext(self.trace_id, span_id=span_id, _prefix=span_id)

    def fork(self, label: str) -> "TraceContext":
        """A disjoint sibling namespace with the same parent span.

        ``ctx.fork("s3")`` allocates ``<prefix>.s3.1``, ``<prefix>.s3.2``, ...
        while ``ctx`` keeps allocating ``<prefix>.1``, ``<prefix>.2``, ... —
        neither consumes the other's ids, so per-shard forks are safe to hand
        to concurrent workers and to re-create verbatim on round replay.
        """
        prefix = f"{self._prefix}.{label}" if self._prefix else str(label)
        return TraceContext(self.trace_id, span_id=self.span_id, _prefix=prefix)

    # -- pickling (``__slots__`` classes need explicit state) ------------------
    def __getstate__(self) -> tuple[str, str | None, str, int]:
        return (self.trace_id, self.span_id, self._prefix, self._n_children)

    def __setstate__(self, state: tuple[str, str | None, str, int]) -> None:
        self.trace_id, self.span_id, self._prefix, self._n_children = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, prefix={self._prefix!r}, "
            f"n_children={self._n_children})"
        )
