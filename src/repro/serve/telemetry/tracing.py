"""Pipeline span tracing for the serving stack.

:func:`trace_span` wraps one pipeline stage (quarantine scan, micro-batched
scoring, threshold update, drift check, sink emit, worker round submit/merge,
refit, gate, shadow double-score, registry publish) in a context manager that
records the stage's wall time into a ``stage.<name>.seconds`` histogram and
its row count into a ``stage.<name>.rows`` counter on a
:class:`~repro.serve.telemetry.metrics.MetricsRegistry` — and, when a
:class:`SpanTracer` is attached (``repro serve --trace-file``), appends one
JSONL record per span so a run leaves a replayable trace on disk.

The span object is a tiny ``__slots__`` class rather than a
``@contextmanager`` generator: it sits inside the per-batch hot loop, and a
generator frame costs several times more than the two ``perf_counter`` calls
that do the actual work.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import IO, Any

from .metrics import DISABLED, MetricsRegistry

__all__ = ["SpanTracer", "trace_span"]


class SpanTracer:
    """Append-only JSONL span sink (one object per span, sorted keys).

    The file opens lazily on the first span and every ``record`` appends one
    line, so a crashed run still leaves every completed span on disk.  Span
    timestamps are reported as ``t_offset_s`` relative to the tracer's
    construction (monotonic clock), which keeps traces comparable across
    runs without leaking wall-clock time into the format.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.n_spans = 0
        self._origin = perf_counter()
        self._file: IO[str] | None = None
        self._lock = threading.Lock()

    def record(self, span: dict[str, Any]) -> None:
        line = json.dumps(span, sort_keys=True)
        with self._lock:
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()
            self.n_spans += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class trace_span:
    """Context manager timing one pipeline stage into the metrics registry.

    ``with trace_span("score", metrics=registry, rows=len(X)): ...`` records
    the block's wall time into the ``stage.score.seconds`` histogram and adds
    ``rows`` to the ``stage.score.rows`` counter; with a ``tracer`` it also
    appends ``{"stage", "seconds", "rows", "batch_index", "t_offset_s",
    "error"}`` as one JSONL line.  Exceptions propagate (the span records
    them with ``"error": <type name>`` first), so instrumentation never
    changes control flow.
    """

    __slots__ = ("stage", "metrics", "tracer", "rows", "batch_index", "_t0")

    def __init__(
        self,
        stage: str,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        rows: int = 0,
        batch_index: int | None = None,
    ) -> None:
        self.stage = stage
        self.metrics = DISABLED if metrics is None else metrics
        self.tracer = tracer
        self.rows = int(rows)
        self.batch_index = batch_index
        self._t0 = 0.0

    def __enter__(self) -> "trace_span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        elapsed = perf_counter() - self._t0
        metrics = self.metrics
        metrics.histogram(f"stage.{self.stage}.seconds", unit="seconds").observe(
            elapsed
        )
        if self.rows:
            metrics.counter(f"stage.{self.stage}.rows", unit="rows").inc(self.rows)
        tracer = self.tracer
        if tracer is not None:
            span: dict[str, Any] = {
                "stage": self.stage,
                "seconds": elapsed,
                "rows": self.rows,
                "t_offset_s": self._t0 - tracer._origin,
            }
            if self.batch_index is not None:
                span["batch_index"] = self.batch_index
            if exc_type is not None:
                span["error"] = exc_type.__name__
            tracer.record(span)
