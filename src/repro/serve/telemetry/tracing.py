"""Pipeline span tracing for the serving stack.

:func:`trace_span` wraps one pipeline stage (quarantine scan, micro-batched
scoring, threshold update, drift check, sink emit, worker round submit/merge,
refit, gate, shadow double-score, registry publish) in a context manager that
records the stage's wall time into a ``stage.<name>.seconds`` histogram and
its row count into a ``stage.<name>.rows`` counter on a
:class:`~repro.serve.telemetry.metrics.MetricsRegistry` — and, when a
:class:`SpanTracer` is attached (``repro serve --trace-file``), appends one
JSONL record per span so a run leaves a replayable trace on disk.

With a :class:`~repro.serve.telemetry.context.TraceContext` attached, the
span additionally carries ``trace_id`` / ``span_id`` / ``parent_span_id``
(deterministic dotted ids — see :mod:`~repro.serve.telemetry.context`), and
``span.ctx`` exposes the child context for spans nested inside it.  Records
are appended at ``__exit__``, so a JSONL trace lists children *before* their
parents; readers must rebuild the tree from the ids, not the line order.

:class:`SpanBuffer` is the tracer stand-in for worker processes: it has the
same ``record`` API but accumulates span dicts in memory so a shard can ship
its spans back to the coordinator with its round results, which flushes them
to the real tracer in global shard order (deterministic file content).

The span object is a tiny ``__slots__`` class rather than a
``@contextmanager`` generator: it sits inside the per-batch hot loop, and a
generator frame costs several times more than the two ``perf_counter`` calls
that do the actual work.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import IO, Any

from .context import TraceContext
from .metrics import DISABLED, MetricsRegistry

__all__ = ["SpanBuffer", "SpanTracer", "trace_span"]


class SpanTracer:
    """Append-only JSONL span sink (one object per span, sorted keys).

    The file opens lazily on the first span and every ``record`` appends one
    line, so a crashed run still leaves every completed span on disk.  Span
    timestamps are reported as ``t_offset_s`` relative to the tracer's
    construction (monotonic clock), which keeps traces comparable across
    runs without leaking wall-clock time into the format.

    The tracer tracks the byte offset of the last fully-written line; an
    interrupted write (SIGINT landing mid-``write``) and :meth:`close` both
    truncate back to that offset, so a killed run never leaves a truncated
    trailing span line in the file.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.n_spans = 0
        self._origin = perf_counter()
        self._file: IO[str] | None = None
        self._good_offset = 0
        self._lock = threading.Lock()

    def record(self, span: dict[str, Any]) -> None:
        line = json.dumps(span, sort_keys=True)
        with self._lock:
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
                self._good_offset = self._file.seek(0, 2)
            try:
                self._file.write(line + "\n")
                self._file.flush()
            except BaseException:
                self._truncate_to_good()
                raise
            self._good_offset = self._file.tell()
            self.n_spans += 1

    def _truncate_to_good(self) -> None:
        """Drop a partially-written trailing line (lock held, file open)."""
        try:
            self._file.flush()
        except OSError:
            pass
        try:
            if self._file.tell() > self._good_offset:
                self._file.truncate(self._good_offset)
        except OSError:
            pass

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._truncate_to_good()
                self._file.close()
                self._file = None

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SpanBuffer:
    """In-memory tracer with :class:`SpanTracer`'s ``record`` API.

    Worker processes and thread shards record into a buffer instead of a
    file; the coordinator ships :attr:`spans` back with the round results and
    flushes them to the real tracer in shard order.  ``t_offset_s`` values
    are relative to *this buffer's* construction (the worker's own clock);
    ids, not timestamps, are the cross-process invariant.
    """

    __slots__ = ("spans", "n_spans", "_origin")

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []
        self.n_spans = 0
        self._origin = perf_counter()

    def record(self, span: dict[str, Any]) -> None:
        self.spans.append(span)
        self.n_spans += 1

    def flush_to(self, tracer: "SpanTracer | SpanBuffer | None") -> None:
        """Append every buffered span to ``tracer`` and clear the buffer."""
        if tracer is not None:
            for span in self.spans:
                tracer.record(span)
        self.spans = []

    def close(self) -> None:
        pass


class trace_span:
    """Context manager timing one pipeline stage into the metrics registry.

    ``with trace_span("score", metrics=registry, rows=len(X)): ...`` records
    the block's wall time into the ``stage.score.seconds`` histogram and adds
    ``rows`` to the ``stage.score.rows`` counter; with a ``tracer`` it also
    appends ``{"stage", "seconds", "rows", "batch_index", "t_offset_s",
    "error"}`` as one JSONL line.  With a ``context`` the record additionally
    carries ``trace_id``/``span_id``/``parent_span_id`` and ``span.ctx`` is
    the child :class:`TraceContext` for nested spans (``None`` otherwise, so
    callers can thread ``context=parent.ctx`` unconditionally).  Exceptions
    propagate (the span records them with ``"error": <type name>`` first), so
    instrumentation never changes control flow.
    """

    __slots__ = (
        "stage",
        "metrics",
        "tracer",
        "rows",
        "batch_index",
        "context",
        "span_id",
        "_child",
        "_t0",
    )

    def __init__(
        self,
        stage: str,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: "SpanTracer | SpanBuffer | None" = None,
        rows: int = 0,
        batch_index: int | None = None,
        context: TraceContext | None = None,
    ) -> None:
        self.stage = stage
        self.metrics = DISABLED if metrics is None else metrics
        self.tracer = tracer
        self.rows = int(rows)
        self.batch_index = batch_index
        self.context = context
        self.span_id: str | None = None
        self._child: TraceContext | None = None
        self._t0 = 0.0

    @property
    def ctx(self) -> TraceContext | None:
        """The child context under this span (``None`` without a context)."""
        if self._child is None and self.context is not None:
            self._child = self.context.child(self.span_id)
        return self._child

    def __enter__(self) -> "trace_span":
        context = self.context
        if context is not None:
            self.span_id = context.allocate()
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        elapsed = perf_counter() - self._t0
        metrics = self.metrics
        metrics.histogram(f"stage.{self.stage}.seconds", unit="seconds").observe(
            elapsed
        )
        if self.rows:
            metrics.counter(f"stage.{self.stage}.rows", unit="rows").inc(self.rows)
        tracer = self.tracer
        if tracer is not None:
            span: dict[str, Any] = {
                "stage": self.stage,
                "seconds": elapsed,
                "rows": self.rows,
                "t_offset_s": self._t0 - tracer._origin,
            }
            if self.batch_index is not None:
                span["batch_index"] = self.batch_index
            context = self.context
            if context is not None:
                span["trace_id"] = context.trace_id
                span["span_id"] = self.span_id
                if context.span_id is not None:
                    span["parent_span_id"] = context.span_id
            if exc_type is not None:
                span["error"] = exc_type.__name__
            tracer.record(span)
