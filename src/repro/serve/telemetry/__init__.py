"""Serving telemetry: metrics registry, span tracing, logs and run reports.

The observability substrate for :mod:`repro.serve`, in four pieces:

* :mod:`~repro.serve.telemetry.metrics` — process-local, mergeable
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments behind
  a :class:`MetricsRegistry` with a dict :meth:`~MetricsRegistry.snapshot`,
  a :class:`MetricsEvent` for the sink fabric, and
  :func:`deterministic_view` — the timing-free snapshot subset that
  sequential, thread and process runs of the same stream agree on exactly.
* :mod:`~repro.serve.telemetry.tracing` — :func:`trace_span` wraps each
  pipeline stage, recording wall time + rows into the registry and
  optionally to a :class:`SpanTracer` JSONL file (``serve --trace-file``).
* :mod:`~repro.serve.telemetry.log` — the ``"repro.serve"`` stdlib logger
  (NullHandler by default) carrying structured degradation records next to
  the existing ``UserWarning`` channel; :func:`configure_logging` backs the
  ``serve --log-level`` flag.
* :mod:`~repro.serve.telemetry.report` — auditable run reports:
  :func:`build_report` / :func:`render_markdown` produce sectioned
  MET/NOT_MET verdicts with evidence (``report.json`` + ``report.md``),
  :func:`build_run_summary` records reproducibility hashes, and
  :func:`render_run_report` re-renders from a run directory
  (``repro serve report``).
"""

from .log import configure_logging, get_logger, log_event, logger
from .metrics import (
    DISABLED,
    Counter,
    Gauge,
    Histogram,
    MetricsEvent,
    MetricsRegistry,
    deterministic_view,
    log_spaced_buckets,
)
from .report import (
    build_report,
    build_run_summary,
    config_sha256,
    load_run_dir,
    render_markdown,
    render_run_report,
    write_report_files,
)
from .tracing import SpanTracer, trace_span

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsEvent",
    "MetricsRegistry",
    "SpanTracer",
    "build_report",
    "build_run_summary",
    "config_sha256",
    "configure_logging",
    "deterministic_view",
    "get_logger",
    "load_run_dir",
    "log_event",
    "log_spaced_buckets",
    "logger",
    "render_markdown",
    "render_run_report",
    "trace_span",
    "write_report_files",
]
