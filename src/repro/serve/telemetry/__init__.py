"""Serving telemetry: metrics registry, span tracing, logs and run reports.

The observability substrate for :mod:`repro.serve`, in four pieces:

* :mod:`~repro.serve.telemetry.metrics` — process-local, mergeable
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments behind
  a :class:`MetricsRegistry` with a dict :meth:`~MetricsRegistry.snapshot`,
  a :class:`MetricsEvent` for the sink fabric, and
  :func:`deterministic_view` — the timing-free snapshot subset that
  sequential, thread and process runs of the same stream agree on exactly.
* :mod:`~repro.serve.telemetry.tracing` / :mod:`~repro.serve.telemetry.context`
  — :func:`trace_span` wraps each pipeline stage, recording wall time + rows
  into the registry and optionally to a :class:`SpanTracer` JSONL file
  (``serve --trace-file``); with a :class:`TraceContext` attached every span
  carries deterministic ``trace_id``/``span_id``/``parent_span_id`` ids that
  survive the thread/process worker boundary (:class:`SpanBuffer` ships
  worker spans back to the coordinator).
* :mod:`~repro.serve.telemetry.traceview` — the ``repro trace`` analyzer:
  tree reconstruction, per-stage aggregation, critical paths and
  ``--budget`` latency gates over span-JSONL files.
* :mod:`~repro.serve.telemetry.statusd` / :mod:`~repro.serve.telemetry.exposition`
  — the opt-in live introspection endpoint (``serve --status-port``):
  :class:`StatusServer` answers ``/metrics`` (:func:`render_prometheus`),
  ``/health`` (:class:`HeartbeatWatchdog` + degraded flag) and ``/status``.
* :mod:`~repro.serve.telemetry.profiling` — :class:`MemoryProfiler` samples
  RSS/tracemalloc per stage (``serve --profile-mem``) into gauges, byte
  histograms and the ``memory`` section of ``run_summary.json``.
* :mod:`~repro.serve.telemetry.log` — the ``"repro.serve"`` stdlib logger
  (NullHandler by default) carrying structured degradation records next to
  the existing ``UserWarning`` channel; :func:`configure_logging` backs the
  ``serve --log-level`` flag.
* :mod:`~repro.serve.telemetry.report` — auditable run reports:
  :func:`build_report` / :func:`render_markdown` produce sectioned
  MET/NOT_MET verdicts with evidence (``report.json`` + ``report.md``),
  :func:`build_run_summary` records reproducibility hashes, and
  :func:`render_run_report` re-renders from a run directory
  (``repro serve report``).
"""

from .context import TraceContext
from .exposition import render_prometheus
from .log import configure_logging, get_logger, log_event, logger
from .metrics import (
    DISABLED,
    Counter,
    Gauge,
    Histogram,
    MetricsEvent,
    MetricsRegistry,
    deterministic_view,
    log_spaced_buckets,
)
from .profiling import MemoryProfiler, read_rss_bytes
from .report import (
    build_report,
    build_run_summary,
    config_sha256,
    load_run_dir,
    render_markdown,
    render_run_report,
    write_report_files,
)
from .statusd import HeartbeatWatchdog, StatusServer
from .tracing import SpanBuffer, SpanTracer, trace_span
from .traceview import (
    build_forest,
    critical_path,
    read_spans,
    stage_aggregate,
    stage_multiset,
    tree_shape,
)

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "HeartbeatWatchdog",
    "Histogram",
    "MemoryProfiler",
    "MetricsEvent",
    "MetricsRegistry",
    "SpanBuffer",
    "SpanTracer",
    "StatusServer",
    "TraceContext",
    "build_forest",
    "build_report",
    "build_run_summary",
    "config_sha256",
    "configure_logging",
    "critical_path",
    "deterministic_view",
    "get_logger",
    "load_run_dir",
    "log_event",
    "log_spaced_buckets",
    "logger",
    "read_rss_bytes",
    "read_spans",
    "render_markdown",
    "render_prometheus",
    "render_run_report",
    "stage_aggregate",
    "stage_multiset",
    "trace_span",
    "tree_shape",
    "write_report_files",
]
