"""Continuous resource profiling for the serve loop (``--profile-mem``).

:class:`MemoryProfiler` samples the process's resident set size and (when
enabled) :mod:`tracemalloc`'s current/peak Python-heap usage once per stage
event — the serve loop calls :meth:`sample` after each merged batch, so the
profile rides the same cadence as the heartbeat and costs nothing when the
flag is off.

Every sample lands in the metrics registry passed at construction:

* gauges ``mem.rss_bytes``, ``mem.tracemalloc_current_bytes`` and
  ``mem.tracemalloc_peak_bytes`` track the latest observation;
* a per-stage histogram ``stage.<stage>.rss_bytes`` (``bytes`` bucket grid)
  keeps the distribution for the run report.

Each sample also opens a ``mem_sample`` span (duration of the sample itself)
so the profiler's own overhead is visible in the trace — the span carries
**no trace context** on purpose: samples are wall-clock-driven and must not
perturb the deterministic span-tree shape the cross-mode tests compare.

RSS is read stdlib-only: ``/proc/self/statm`` (resident pages × page size)
where procfs exists, falling back to ``resource.getrusage().ru_maxrss``
(peak, in KiB on Linux) elsewhere.  No psutil.
"""

from __future__ import annotations

import os
import tracemalloc
from typing import Any, Mapping

from .metrics import MetricsRegistry
from .tracing import SpanTracer, trace_span

__all__ = ["MemoryProfiler", "read_rss_bytes"]

_STATM = "/proc/self/statm"
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """Current resident set size in bytes, stdlib-only.

    Prefers ``/proc/self/statm`` (field 2 = resident pages); falls back to
    ``ru_maxrss`` — the *peak* RSS, close enough for trend-watching on
    platforms without procfs.  Returns 0 when neither source is readable.
    """
    try:
        with open(_STATM, "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover - exotic
        return 0


class MemoryProfiler:
    """Samples RSS + tracemalloc into gauges/histograms and a run summary.

    Parameters
    ----------
    metrics:
        Registry the samples are recorded into (usually the service's).
    tracer:
        Optional span sink for the ``mem_sample`` spans.
    trace_python:
        Start :mod:`tracemalloc` for Python-heap current/peak tracking.
        Costs a constant factor on every allocation, so it is opt-in along
        with the profiler itself; the profiler only stops tracemalloc on
        :meth:`close` if it was the one that started it.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        *,
        tracer: SpanTracer | None = None,
        trace_python: bool = True,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.n_samples = 0
        self._rss_min = 0
        self._rss_max = 0
        self._tracemalloc_peak = 0
        self._owns_tracemalloc = False
        if trace_python and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def sample(self, stage: str = "batch") -> dict[str, int]:
        """Take one sample attributed to ``stage``; returns the raw reading."""
        with trace_span(
            "mem_sample", metrics=self.metrics, tracer=self.tracer
        ):
            rss = read_rss_bytes()
            reading = {"rss_bytes": rss}
            self.metrics.gauge("mem.rss_bytes", unit="bytes").set(rss)
            self.metrics.histogram(
                f"stage.{stage}.rss_bytes", unit="bytes"
            ).observe(float(rss))
            if tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                reading["tracemalloc_current_bytes"] = current
                reading["tracemalloc_peak_bytes"] = peak
                self.metrics.gauge(
                    "mem.tracemalloc_current_bytes", unit="bytes"
                ).set(current)
                self.metrics.gauge(
                    "mem.tracemalloc_peak_bytes", unit="bytes"
                ).set(peak)
                self._tracemalloc_peak = max(self._tracemalloc_peak, peak)
        self.n_samples += 1
        if self._rss_min == 0 or rss < self._rss_min:
            self._rss_min = rss
        self._rss_max = max(self._rss_max, rss)
        return reading

    def summary(self) -> dict[str, Any]:
        """The ``memory`` section of ``run_summary.json``."""
        out: dict[str, Any] = {
            "n_samples": self.n_samples,
            "rss_min_bytes": self._rss_min,
            "rss_max_bytes": self._rss_max,
        }
        if self._tracemalloc_peak or tracemalloc.is_tracing():
            out["tracemalloc_peak_bytes"] = self._tracemalloc_peak
        return out

    def close(self) -> None:
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    def __enter__(self) -> "MemoryProfiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
