"""Live introspection endpoint for a running serve loop (``--status-port``).

:class:`StatusServer` runs a stdlib :class:`~http.server.ThreadingHTTPServer`
on a daemon thread next to the scoring loop and answers three read-only
routes:

* ``/metrics`` — Prometheus text exposition rendered from the service's
  ``metrics_snapshot()`` (via
  :func:`~repro.serve.telemetry.exposition.render_prometheus`);
* ``/health`` — ``200 OK`` / ``503 NOT_OK`` from the
  :class:`HeartbeatWatchdog` (no batch completed within the deadline) OR the
  fault layer's degraded-mode flag;
* ``/status`` — a JSON summary (epoch, serving version, worker restarts,
  disabled sinks, open shadow trial) from a caller-supplied callback.

The server never *writes* service state: it holds three callables and a
watchdog, so a scrape can race a batch at worst into a slightly stale
snapshot.  Scrape-side instrumentation (the ``status_render`` and
``heartbeat`` spans) records into the server's **own private registry** —
scrape counts are wall-clock-driven and must never leak into the service
registry that the cross-mode determinism contract covers.

:class:`HeartbeatWatchdog` reads :func:`time.monotonic` — a monotonic
duration clock, which RL001 sanctions (it measures "how long since the last
beat", never "what time is it").
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from .exposition import render_prometheus
from .metrics import MetricsRegistry
from .tracing import trace_span

__all__ = ["HeartbeatWatchdog", "StatusServer"]


class HeartbeatWatchdog:
    """Liveness from batch completions: unhealthy after ``deadline_s`` quiet.

    The serve loop calls :meth:`beat` after every merged batch; ``/health``
    calls :meth:`healthy`.  Uses the monotonic clock (RL001-sanctioned
    duration measurement — immune to wall-clock steps).
    """

    __slots__ = ("deadline_s", "n_beats", "_clock", "_last_beat")

    def __init__(
        self,
        deadline_s: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("heartbeat deadline must be positive")
        self.deadline_s = float(deadline_s)
        self.n_beats = 0
        self._clock = clock
        self._last_beat = clock()

    def beat(self) -> None:
        self._last_beat = self._clock()
        self.n_beats += 1

    def seconds_since_beat(self) -> float:
        return self._clock() - self._last_beat

    def healthy(self) -> bool:
        return self.seconds_since_beat() <= self.deadline_s


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET; all state lives on the owning :class:`StatusServer`."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapers are chatty; the serve loop owns stdout/stderr

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "StatusServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                with trace_span("status_render", metrics=owner.telemetry):
                    body = render_prometheus(owner.snapshot_fn())
                self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path == "/health":
                with trace_span("heartbeat", metrics=owner.telemetry):
                    verdict = owner.health()
                status = 200 if verdict["status"] == "OK" else 503
                self._send(status, "application/json", json.dumps(verdict) + "\n")
            elif path in ("/", "/status"):
                body = json.dumps(owner.status(), sort_keys=True, default=str)
                self._send(200, "application/json", body + "\n")
            else:
                self._send(404, "text/plain", "not found\n")
        except BrokenPipeError:  # scraper hung up mid-response
            pass


class StatusServer:
    """Opt-in HTTP introspection thread for ``repro serve --status-port``.

    ``port=0`` binds an ephemeral port (tests); the bound port is available
    as :attr:`port` after construction.  :meth:`close` shuts the listener
    down and joins the thread — the serve loop calls it on every exit path,
    and the thread is a daemon anyway so a crash never hangs the process.
    """

    def __init__(
        self,
        port: int,
        *,
        snapshot_fn: Callable[[], Mapping[str, Any]],
        status_fn: Callable[[], Mapping[str, Any]] | None = None,
        degraded_fn: Callable[[], bool] | None = None,
        watchdog: HeartbeatWatchdog | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.snapshot_fn = snapshot_fn
        self.status_fn = status_fn
        self.degraded_fn = degraded_fn
        self.watchdog = watchdog
        self.telemetry = MetricsRegistry()
        self._server = ThreadingHTTPServer((host, int(port)), _Handler)
        self._server.daemon_threads = True
        self._server.owner = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    def start(self) -> "StatusServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-statusd:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def url(self, path: str = "/status") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def health(self) -> dict[str, Any]:
        """The ``/health`` verdict: watchdog deadline AND degraded flag."""
        degraded = bool(self.degraded_fn()) if self.degraded_fn else False
        verdict: dict[str, Any] = {"status": "OK", "degraded": degraded}
        if self.watchdog is not None:
            since = self.watchdog.seconds_since_beat()
            verdict["seconds_since_beat"] = round(since, 3)
            verdict["deadline_s"] = self.watchdog.deadline_s
            verdict["n_beats"] = self.watchdog.n_beats
            if not self.watchdog.healthy():
                verdict["status"] = "NOT_OK"
                verdict["reason"] = "heartbeat deadline exceeded"
        if degraded:
            verdict["status"] = "NOT_OK"
            verdict["reason"] = "service degraded (worker restart budget spent)"
        return verdict

    def status(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"health": self.health()["status"]}
        if self.status_fn is not None:
            payload.update(self.status_fn())
        return payload

    def close(self) -> None:
        # shutdown() blocks on serve_forever's acknowledgement event, which
        # is only ever set once the serve loop has run — calling it on a
        # constructed-but-never-started server deadlocks forever, so it is
        # gated on the thread actually existing.  server_close() always
        # runs: the listening socket is bound eagerly in __init__.
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
