"""Trace analyzer behind ``repro trace`` (span-JSONL in, verdicts out).

Reads one or more span files written by
:class:`~repro.serve.telemetry.tracing.SpanTracer`, rebuilds the span tree
from the deterministic ``trace_id``/``span_id``/``parent_span_id`` ids (the
*file* lists children before parents — ids, not line order, carry the
structure), and derives:

* a per-stage aggregation table (count, total, mean, exact p50/p95/p99, max);
* a text tree / gantt rendering of the span forest;
* the critical path per round — the greedy longest-duration chain from each
  top-level span down to a leaf;
* ``--budget stage=ms`` assertions (repeatable) checked against a chosen
  aggregate (``--budget-metric``, default ``p95``) — any violation makes
  :func:`main` return 1, which is what CI latency gates key off.

:func:`tree_shape` and :func:`stage_multiset` are the comparison helpers the
cross-mode tests use: sequential, thread and process runs of one stream must
produce identical shapes (after eliding the coordinator-only
``round_submit``/``round_merge`` wrappers when comparing against sequential).

The reader is tolerant by design: a line that does not parse as a JSON
object (e.g. the torn tail of a run killed harder than SIGTERM) is skipped,
not fatal.
"""

from __future__ import annotations

import argparse
import json
import math
import re
from collections import Counter
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "SpanNode",
    "build_forest",
    "check_budgets",
    "configure_parser",
    "critical_path",
    "main",
    "parse_budget",
    "read_spans",
    "render_gantt",
    "render_stage_table",
    "render_tree",
    "run",
    "stage_aggregate",
    "stage_multiset",
    "tree_shape",
]

BUDGET_METRICS = ("p50", "p95", "p99", "max", "mean", "total")

_ID_PART = re.compile(r"^([A-Za-z_]*)(\d+)$")


def _id_key(span_id: str | None) -> tuple:
    """Sort key ordering dotted ids numerically (``2.s10.3`` after ``2.s2.1``)."""
    if span_id is None:
        return ((),)
    parts = []
    for part in str(span_id).split("."):
        m = _ID_PART.match(part)
        if m:
            parts.append((m.group(1), int(m.group(2))))
        else:
            parts.append((part, -1))
    return tuple(parts)


class SpanNode:
    """One span plus its children, ordered by span id."""

    __slots__ = ("span", "children")

    def __init__(self, span: Mapping[str, Any]) -> None:
        self.span = span
        self.children: list[SpanNode] = []

    @property
    def stage(self) -> str:
        return str(self.span.get("stage", "?"))

    @property
    def seconds(self) -> float:
        try:
            return float(self.span.get("seconds", 0.0))
        except (TypeError, ValueError):
            return 0.0

    @property
    def span_id(self) -> str | None:
        value = self.span.get("span_id")
        return None if value is None else str(value)

    def sort(self) -> None:
        self.children.sort(key=lambda n: _id_key(n.span_id))
        for child in self.children:
            child.sort()


def read_spans(path: str) -> list[dict[str, Any]]:
    """Load one span-JSONL file, skipping lines that do not parse."""
    spans: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed run — skip, don't die
            if isinstance(record, dict):
                spans.append(record)
    return spans


def build_forest(spans: Iterable[Mapping[str, Any]]) -> list[SpanNode]:
    """Rebuild the span forest from ids; id-less spans become roots.

    A span whose ``parent_span_id`` never shows up (parent crashed before
    its ``__exit__``) is promoted to a root rather than dropped.
    """
    spans = list(spans)
    by_id: dict[tuple[Any, str], SpanNode] = {}
    nodes: list[SpanNode] = []
    for span in spans:
        node = SpanNode(span)
        nodes.append(node)
        if span.get("span_id") is not None:
            by_id[(span.get("trace_id"), str(span["span_id"]))] = node
    roots: list[SpanNode] = []
    for node in nodes:
        parent_id = node.span.get("parent_span_id")
        parent = (
            by_id.get((node.span.get("trace_id"), str(parent_id)))
            if parent_id is not None
            else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    roots.sort(key=lambda n: _id_key(n.span_id))
    for root in roots:
        root.sort()
    return roots


def _elide(roots: list[SpanNode], stages: frozenset[str]) -> list[SpanNode]:
    """Splice elided stages out, promoting their children in place."""
    out: list[SpanNode] = []
    for node in roots:
        children = _elide(node.children, stages)
        if node.stage in stages:
            out.extend(children)
        else:
            clone = SpanNode(node.span)
            clone.children = children
            out.append(clone)
    return out


def tree_shape(
    spans: Iterable[Mapping[str, Any]], *, elide: Sequence[str] = ()
) -> tuple:
    """The span forest as nested ``(stage, children)`` tuples.

    Two runs have the same *tree shape* iff these structures are equal —
    ids and timings are dropped, parent/child edges and sibling order (by
    span id) are kept.  ``elide`` splices wrapper stages out so a sharded
    run's tree can be compared against a sequential one.
    """

    def shape(node: SpanNode) -> tuple:
        return (node.stage, tuple(shape(c) for c in node.children))

    roots = build_forest(spans)
    if elide:
        roots = _elide(roots, frozenset(elide))
    return tuple(shape(root) for root in roots)


def stage_multiset(
    spans: Iterable[Mapping[str, Any]], *, elide: Sequence[str] = ()
) -> Counter:
    """Stage-name multiset (order-free coverage comparison across modes)."""
    skip = frozenset(elide)
    return Counter(
        str(span.get("stage", "?"))
        for span in spans
        if str(span.get("stage", "?")) not in skip
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile on an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def stage_aggregate(
    spans: Iterable[Mapping[str, Any]],
) -> dict[str, dict[str, float]]:
    """Per-stage aggregation: count/total/mean/p50/p95/p99/max seconds."""
    durations: dict[str, list[float]] = {}
    rows: dict[str, int] = {}
    for span in spans:
        stage = str(span.get("stage", "?"))
        try:
            durations.setdefault(stage, []).append(float(span.get("seconds", 0.0)))
        except (TypeError, ValueError):
            durations.setdefault(stage, []).append(0.0)
        rows[stage] = rows.get(stage, 0) + int(span.get("rows", 0) or 0)
    out: dict[str, dict[str, float]] = {}
    for stage in sorted(durations):
        values = sorted(durations[stage])
        total = sum(values)
        out[stage] = {
            "count": float(len(values)),
            "rows": float(rows[stage]),
            "total": total,
            "mean": total / len(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
            "max": values[-1],
        }
    return out


def critical_path(root: SpanNode) -> list[SpanNode]:
    """Greedy longest-duration chain from ``root`` down to a leaf."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda n: (n.seconds, _id_key(n.span_id)))
        path.append(node)
    return path


def _label(node: SpanNode) -> str:
    bits = [node.stage]
    if node.span.get("batch_index") is not None:
        bits.append(f"#{node.span['batch_index']}")
    if node.span.get("retry"):
        bits.append(f"retry={node.span['retry']}")
    if node.span.get("error"):
        bits.append(f"error={node.span['error']}")
    return " ".join(bits)


def render_tree(roots: list[SpanNode]) -> str:
    """Indented text tree with per-span durations and ids."""
    lines: list[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        span_id = node.span_id or "-"
        lines.append(
            f"{'  ' * depth}{_label(node)}  "
            f"[{span_id}]  {node.seconds * 1e3:.3f} ms"
        )
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_gantt(roots: list[SpanNode], *, width: int = 48) -> str:
    """Text gantt: one bar per span, offset/scaled to the trace extent."""
    flat: list[SpanNode] = []

    def walk(node: SpanNode) -> None:
        flat.append(node)
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    if not flat:
        return "(empty trace)"
    t0 = min(float(n.span.get("t_offset_s", 0.0) or 0.0) for n in flat)
    t1 = max(
        float(n.span.get("t_offset_s", 0.0) or 0.0) + n.seconds for n in flat
    )
    extent = max(t1 - t0, 1e-9)
    lines = []
    for node in flat:
        start = float(node.span.get("t_offset_s", 0.0) or 0.0) - t0
        lead = int(start / extent * width)
        bar = max(1, int(node.seconds / extent * width))
        lines.append(
            f"{_label(node):<28.28} |{' ' * lead}{'#' * bar:<{width - lead}}| "
            f"{node.seconds * 1e3:.3f} ms"
        )
    return "\n".join(lines)


def render_stage_table(aggregate: Mapping[str, Mapping[str, float]]) -> str:
    header = (
        f"{'stage':<20} {'count':>6} {'rows':>8} {'total_ms':>10} "
        f"{'mean_ms':>9} {'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9} {'max_ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for stage, agg in aggregate.items():
        lines.append(
            f"{stage:<20} {int(agg['count']):>6} {int(agg['rows']):>8} "
            f"{agg['total'] * 1e3:>10.3f} {agg['mean'] * 1e3:>9.3f} "
            f"{agg['p50'] * 1e3:>9.3f} {agg['p95'] * 1e3:>9.3f} "
            f"{agg['p99'] * 1e3:>9.3f} {agg['max'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)


def parse_budget(spec: str) -> tuple[str, float]:
    """Parse one ``stage=ms`` budget spec; raises ``ValueError`` when torn."""
    stage, sep, value = spec.partition("=")
    if not sep or not stage:
        raise ValueError(f"budget must look like stage=ms, got {spec!r}")
    return stage.strip(), float(value)


def check_budgets(
    aggregate: Mapping[str, Mapping[str, float]],
    budgets: Mapping[str, float],
    *,
    metric: str = "p95",
) -> list[dict[str, Any]]:
    """Evaluate budgets (ms) against the chosen aggregate metric.

    Returns one verdict dict per budget; an unknown stage is a violation
    too (a budget on a stage that never ran is a misconfigured gate, and a
    gate that silently passes is worse than one that fails loudly).
    """
    verdicts = []
    for stage in sorted(budgets):
        limit_ms = budgets[stage]
        agg = aggregate.get(stage)
        observed_ms = agg[metric] * 1e3 if agg is not None else None
        met = observed_ms is not None and observed_ms <= limit_ms
        verdicts.append(
            {
                "stage": stage,
                "metric": metric,
                "budget_ms": limit_ms,
                "observed_ms": observed_ms,
                "status": "MET" if met else "NOT_MET",
            }
        )
    return verdicts


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the ``repro trace`` arguments (shared by CLI and module main)."""
    parser.add_argument("files", nargs="+", help="span JSONL file(s)")
    parser.add_argument(
        "--view",
        choices=("summary", "tree", "gantt", "all"),
        default="summary",
        help="what to print (default: summary table + critical paths)",
    )
    parser.add_argument(
        "--budget",
        action="append",
        default=[],
        metavar="STAGE=MS",
        help="per-stage latency budget in ms (repeatable); any violation "
        "exits 1",
    )
    parser.add_argument(
        "--budget-metric",
        choices=BUDGET_METRICS,
        default="p95",
        help="aggregate the budgets are checked against (default: p95)",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute the analyzer on parsed arguments; returns the exit code."""
    try:
        budgets = dict(parse_budget(spec) for spec in args.budget)
    except ValueError as exc:
        raise SystemExit(f"--budget: {exc}")

    spans: list[dict[str, Any]] = []
    for path in args.files:
        try:
            spans.extend(read_spans(path))
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}")
    print(f"spans: {len(spans)} from {len(args.files)} file(s)")
    if not spans:
        print("(empty trace)")
        return 1 if budgets else 0

    aggregate = stage_aggregate(spans)
    roots = build_forest(spans)
    if args.view in ("summary", "all"):
        print()
        print(render_stage_table(aggregate))
        print()
        print("critical paths (greedy longest chain per top-level span):")
        worst: tuple[float, str] | None = None
        for root in roots:
            path = critical_path(root)
            total_ms = sum(n.seconds for n in path) * 1e3
            text = " > ".join(_label(n) for n in path)
            print(f"  {total_ms:>9.3f} ms  {text}")
            if worst is None or total_ms > worst[0]:
                worst = (total_ms, text)
        if worst is not None:
            print(f"worst: {worst[0]:.3f} ms  {worst[1]}")
    if args.view in ("tree", "all"):
        print()
        print(render_tree(roots))
    if args.view in ("gantt", "all"):
        print()
        print(render_gantt(roots))

    failed = False
    if budgets:
        print()
        for verdict in check_budgets(
            aggregate, budgets, metric=args.budget_metric
        ):
            observed = verdict["observed_ms"]
            observed_text = (
                f"{observed:.3f} ms" if observed is not None else "absent"
            )
            print(
                f"budget {verdict['stage']} {args.budget_metric} "
                f"<= {verdict['budget_ms']:g} ms: observed {observed_text} "
                f"-> {verdict['status']}"
            )
            failed = failed or verdict["status"] != "MET"
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="repro trace",
            description="Analyze span-JSONL trace files written by repro serve.",
        )
    )
    return run(parser.parse_args(argv))
