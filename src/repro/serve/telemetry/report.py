"""Auditable run reports: sectioned MET/NOT_MET verdicts with evidence.

A serving run already leaves alerts, lifecycle lineage and (with telemetry)
a metrics snapshot behind — this module folds them into one reviewable
artifact pair, ``report.json`` (machine-readable) + ``report.md``
(human-readable), in the style of the dac_agent review exemplar: every
section carries an explicit verdict, every check carries its severity and
the evidence it was judged on.  Sections:

1. **Throughput** — did the stream complete, and does throughput hold up
   against the committed ``BENCH_inference.json`` baseline entry?
2. **Latency** — batch p50/p95/p99 and the per-stage span table.
   (When the run directory carries a ``trace.jsonl``, a **Trace** section
   follows with per-stage span totals from the trace file, the worst
   critical path, and MET/NOT_MET verdicts against ``--budget``-style
   per-stage latency thresholds.)
3. **Timeline** — ordered alert/drift/quarantine/restart/sink/swap events,
   with checks on degradations (no sink disabled, restart budget intact,
   quarantine fraction bounded).
4. **Lifecycle & shadow** — every shadow trial resolved, every swap carries
   a published version.
5. **Reproducibility** — config SHA-256, model artifact SHA-256s and the
   stream source are recorded in ``run_summary.json``.

Verdicts roll up mechanically: a section is **NOT_MET** when any *major*
check fails, **PARTIALLY_MET** when only *minor* checks fail, **MET**
otherwise; the overall verdict applies the same rule across all checks.
:func:`build_report` is pure (dict in, dict out — the golden-report test
locks its output for fixed inputs), :func:`render_markdown` is presentation
only, and :func:`render_run_report` re-renders after the fact from a run
directory's ``run_summary.json`` + ``events.jsonl`` (the ``repro serve
report`` CLI).
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "build_report",
    "build_run_summary",
    "config_sha256",
    "load_run_dir",
    "render_markdown",
    "render_run_report",
    "write_report_files",
]

FORMAT_VERSION = 1

#: Event types that belong on the run timeline (metrics snapshots do not).
_TIMELINE_TYPES = frozenset(
    {
        "alert",
        "drift",
        "quarantined_rows",
        "worker_restart",
        "sink_disabled",
        "registry_recover",
        "lifecycle",
    }
)
#: Event fields worth carrying into a condensed timeline entry.
_TIMELINE_KEYS = (
    "batch_index",
    "round_index",
    "reason",
    "sink",
    "n_errors",
    "shards",
    "restarts",
    "degraded",
    "action",
    "swapped",
    "published_version",
    "epoch",
)

_SHA256_HEX_LEN = 64


def _now_utc() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _round(value: Any) -> Any:
    """Round floats (recursively) so evidence blobs stay readable."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {k: _round(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round(v) for v in value]
    return value


def config_sha256(config: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical-JSON form of ``config``.

    Canonical means sorted keys and no whitespace, so two runs with the same
    effective configuration hash identically regardless of dict order.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _is_sha256(value: Any) -> bool:
    return (
        isinstance(value, str)
        and len(value) == _SHA256_HEX_LEN
        and all(c in "0123456789abcdef" for c in value)
    )


def build_run_summary(
    config: Mapping[str, Any],
    *,
    stream: Mapping[str, Any] | None = None,
    model: Mapping[str, Any] | None = None,
    service_report: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    generated_at: str | None = None,
) -> dict:
    """Assemble ``run_summary.json``: the reproducibility record of one run.

    ``config`` is hashed (:func:`config_sha256`); ``model`` should carry the
    snapshot-manifest facts (``name``, ``version``, ``artifacts`` mapping
    artifact names to SHA-256 hex digests); ``stream`` records the data
    source (dataset, scale, seed, batch size ...).
    """
    return {
        "format_version": FORMAT_VERSION,
        "generated_at": generated_at if generated_at is not None else _now_utc(),
        "config": dict(config),
        "config_sha256": config_sha256(config),
        "stream": dict(stream) if stream else None,
        "model": dict(model) if model else None,
        "service_report": dict(service_report) if service_report else None,
        "metrics": dict(metrics) if metrics else None,
    }


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------


def _check(
    check_id: str,
    title: str,
    met: bool,
    *,
    severity: str = "major",
    evidence: Mapping[str, Any] | None = None,
) -> dict:
    return {
        "id": check_id,
        "title": title,
        "verdict": "MET" if met else "NOT_MET",
        "severity": severity,
        "evidence": _round(dict(evidence or {})),
    }


def _section_verdict(checks: Sequence[Mapping[str, Any]]) -> str:
    failed = [c for c in checks if c["verdict"] != "MET"]
    if any(c["severity"] == "major" for c in failed):
        return "NOT_MET"
    if failed:
        return "PARTIALLY_MET"
    return "MET"


def _baseline_rate(baseline: Mapping[str, Any] | None, entry: str) -> float | None:
    """Look up ``samples_per_sec`` for ``entry`` (``"section:name"`` or a
    top-level ``"name"``) in a ``BENCH_inference.json`` payload."""
    if not baseline:
        return None
    section, _, name = entry.rpartition(":")
    results = (
        baseline.get(section, {}).get("results", {})
        if section
        else baseline.get("results", {})
    )
    try:
        rate = float(results[name]["samples_per_sec"])
    except (KeyError, TypeError, ValueError):
        return None
    return rate if rate > 0 else None


def _condense_timeline(
    events: Iterable[Mapping[str, Any]], *, max_events: int
) -> tuple[list[dict], int]:
    """Order-preserving condensed timeline.

    Consecutive events of the same type in the same batch (e.g. per-sample
    alerts) collapse into one entry with an ``"n"`` count; entries past
    ``max_events`` are dropped (the count of dropped entries is returned so
    the report can say so instead of silently truncating).
    """
    condensed: list[dict] = []
    for event in events:
        kind = event.get("type")
        if kind not in _TIMELINE_TYPES:
            continue
        entry: dict[str, Any] = {"type": kind, "n": 1}
        for key in _TIMELINE_KEYS:
            if key in event and event[key] is not None:
                entry[key] = event[key]
        if "row_indices" in event:
            entry["n_rows"] = len(event["row_indices"])
        if (
            condensed
            and condensed[-1]["type"] == kind
            and condensed[-1].get("batch_index") == entry.get("batch_index")
            and kind == "alert"
        ):
            condensed[-1]["n"] += 1
            continue
        condensed.append(entry)
    truncated = max(0, len(condensed) - max_events)
    return condensed[:max_events], truncated


def _stage_table(metrics: Mapping[str, Any] | None) -> dict[str, dict]:
    """Per-stage latency table from a metrics snapshot's span histograms."""
    table: dict[str, dict] = {}
    for name, entry in (metrics or {}).get("histograms", {}).items():
        if not (name.startswith("stage.") and name.endswith(".seconds")):
            continue
        stage = name[len("stage.") : -len(".seconds")]
        table[stage] = {
            "count": entry.get("count", 0),
            "p50_s": entry.get("p50", 0.0),
            "p95_s": entry.get("p95", 0.0),
            "p99_s": entry.get("p99", 0.0),
        }
    return dict(sorted(table.items()))


def _trace_section(
    trace: Sequence[Mapping[str, Any]],
    budgets: Mapping[str, float] | None,
    budget_metric: str,
) -> dict:
    """The Trace section: span totals, worst critical path, budget verdicts.

    Only assembled when a trace is present, so trace-free reports (and the
    golden fixtures locking them) are byte-identical to before.
    """
    from .traceview import (  # local import: traceview is presentation-side
        build_forest,
        check_budgets,
        critical_path,
        stage_aggregate,
    )

    aggregate = stage_aggregate(trace)
    roots = build_forest(trace)
    worst_ms, worst_path = 0.0, []
    for root in roots:
        path = critical_path(root)
        total_ms = sum(node.seconds for node in path) * 1e3
        if total_ms > worst_ms or not worst_path:
            worst_ms = total_ms
            worst_path = [node.stage for node in path]
    stages = {
        stage: {
            "count": int(agg["count"]),
            "total_s": agg["total"],
            "p50_s": agg["p50"],
            "p95_s": agg["p95"],
            "p99_s": agg["p99"],
        }
        for stage, agg in aggregate.items()
    }
    checks = [
        _check(
            "TR-01",
            "Trace file parsed into a span tree",
            bool(trace) and bool(roots),
            severity="minor",
            evidence={"n_spans": len(trace), "n_roots": len(roots)},
        )
    ]
    if budgets:
        verdicts = check_budgets(aggregate, budgets, metric=budget_metric)
        checks.append(
            _check(
                "TR-02",
                f"Per-stage trace latency budgets met ({budget_metric})",
                all(v["status"] == "MET" for v in verdicts),
                evidence={"budgets": verdicts},
            )
        )
    return {
        "title": "Trace",
        "checks": checks,
        "data": {
            "stages": _round(stages),
            "critical_path": _round(
                {"total_ms": worst_ms, "path": worst_path}
            ),
        },
    }


def build_report(
    summary: Mapping[str, Any],
    *,
    metrics: Mapping[str, Any] | None = None,
    events: Sequence[Mapping[str, Any]] = (),
    history: Sequence[Mapping[str, Any]] = (),
    run_info: Mapping[str, Any] | None = None,
    baseline: Mapping[str, Any] | None = None,
    baseline_entry: str = "faults:process_batch[clean]",
    min_throughput_fraction: float = 0.5,
    max_quarantined_fraction: float = 0.10,
    max_timeline_events: int = 50,
    trace: Sequence[Mapping[str, Any]] | None = None,
    trace_budgets: Mapping[str, float] | None = None,
    trace_budget_metric: str = "p95",
    generated_at: str | None = None,
    title: str = "Serving run report",
) -> dict:
    """Build the ``report.json`` payload (pure: dict in, dict out).

    ``summary`` is a ``ServiceReport.to_dict()``; ``events`` are sink-fabric
    event dicts in emission order (e.g. read back from ``events.jsonl``);
    ``history`` is registry lifecycle lineage (used for the lifecycle
    section when sink events lack it); ``run_info`` is a
    :func:`build_run_summary` payload; ``baseline`` is a parsed
    ``BENCH_inference.json`` enabling the throughput-vs-baseline check.
    ``trace`` is a list of span records (``trace.jsonl``); when given, a
    Trace section with per-stage span totals, the worst critical path and
    optional ``trace_budgets`` (stage -> ms, judged on
    ``trace_budget_metric``) is added — a trace-free report is unchanged.
    """
    summary = dict(summary)
    n_batches = int(summary.get("n_batches", 0))
    n_samples = int(summary.get("n_samples", 0))
    throughput = float(summary.get("throughput_samples_per_sec", 0.0))

    # -- 1. throughput ---------------------------------------------------------
    throughput_checks = [
        _check(
            "THR-01",
            "Stream completed with scored batches",
            n_batches > 0 and n_samples > 0,
            evidence={
                "n_batches": n_batches,
                "n_samples": n_samples,
                "total_time_s": summary.get("total_time_s", 0.0),
            },
        )
    ]
    throughput_data: dict[str, Any] = {
        "throughput_samples_per_sec": _round(throughput)
    }
    base_rate = _baseline_rate(baseline, baseline_entry)
    if base_rate is not None:
        floor = min_throughput_fraction * base_rate
        throughput_checks.append(
            _check(
                "THR-02",
                f"Throughput within {min_throughput_fraction:.0%} of committed "
                f"baseline `{baseline_entry}`",
                throughput >= floor,
                evidence={
                    "throughput_samples_per_sec": throughput,
                    "baseline_samples_per_sec": base_rate,
                    "required_min": floor,
                },
            )
        )
    elif baseline is not None:
        throughput_data["baseline_note"] = (
            f"baseline entry {baseline_entry!r} not found; "
            "throughput-vs-baseline check skipped"
        )

    # -- 2. latency ------------------------------------------------------------
    p50 = float(summary.get("batch_latency_p50_s", 0.0))
    p95 = float(summary.get("batch_latency_p95_s", 0.0))
    p99 = float(summary.get("batch_latency_p99_s", 0.0))
    stages = _stage_table(metrics)
    latency_checks = [
        _check(
            "LAT-01",
            "Batch latency percentiles measured",
            n_batches == 0 or p50 > 0.0,
            evidence={"p50_s": p50, "p95_s": p95, "p99_s": p99},
        ),
        _check(
            "LAT-02",
            "Per-stage spans recorded in metrics snapshot",
            any(entry["count"] > 0 for entry in stages.values()),
            severity="minor",
            evidence={"n_stages": len(stages), "stages": sorted(stages)},
        ),
    ]

    # -- 3. timeline -----------------------------------------------------------
    timeline, truncated = _condense_timeline(
        events, max_events=max_timeline_events
    )
    event_counts: dict[str, int] = {}
    for event in events:
        kind = event.get("type")
        if kind in _TIMELINE_TYPES:
            event_counts[kind] = event_counts.get(kind, 0) + 1
    n_disabled = max(
        int(summary.get("n_disabled_sinks", 0)),
        event_counts.get("sink_disabled", 0),
    )
    degraded_rounds = [
        e
        for e in events
        if e.get("type") == "worker_restart" and e.get("degraded")
    ]
    n_quarantined = int(summary.get("n_quarantined", 0))
    seen_rows = n_samples + n_quarantined
    quarantined_fraction = n_quarantined / seen_rows if seen_rows else 0.0
    timeline_checks = [
        _check(
            "TL-01",
            "No alert sink was disabled",
            n_disabled == 0,
            evidence={"n_disabled_sinks": n_disabled},
        ),
        _check(
            "TL-02",
            "Worker restart budget not exhausted (no degraded rounds)",
            not degraded_rounds,
            evidence={
                "n_worker_restarts": summary.get("n_worker_restarts", 0),
                "n_degraded_rounds": len(degraded_rounds),
            },
        ),
        _check(
            "TL-03",
            f"Quarantined rows below {max_quarantined_fraction:.0%} of traffic",
            quarantined_fraction <= max_quarantined_fraction,
            severity="minor",
            evidence={
                "n_quarantined": n_quarantined,
                "quarantined_fraction": quarantined_fraction,
            },
        ),
    ]
    timeline_data: dict[str, Any] = {
        "event_counts": dict(sorted(event_counts.items())),
        "entries": _round(timeline),
    }
    if truncated:
        timeline_data["truncated"] = truncated

    # -- 4. lifecycle & shadow -------------------------------------------------
    lineage = [e for e in history if e.get("type") == "lifecycle"]
    if not lineage:
        lineage = [e for e in events if e.get("type") == "lifecycle"]
    actions: dict[str, int] = {}
    for event in lineage:
        action = event.get("action", "unknown")
        actions[action] = actions.get(action, 0) + 1
    n_started = actions.get("shadow_start", 0)
    n_resolved = actions.get("shadow_pass", 0) + actions.get("shadow_reject", 0)
    swaps = [e for e in lineage if e.get("swapped")]
    unversioned_swaps = [e for e in swaps if not e.get("published_version")]
    lifecycle_checks = [
        _check(
            "LC-01",
            "Every shadow trial resolved (pass or reject)",
            n_started == n_resolved,
            evidence={
                "shadow_start": n_started,
                "shadow_pass": actions.get("shadow_pass", 0),
                "shadow_reject": actions.get("shadow_reject", 0),
            },
        ),
        _check(
            "LC-02",
            "Every swap carries a published registry version",
            not unversioned_swaps,
            severity="minor",
            evidence={
                "n_swaps": len(swaps),
                "n_unversioned": len(unversioned_swaps),
            },
        ),
    ]
    lifecycle_data = {"actions": dict(sorted(actions.items()))}

    # -- 5. reproducibility ----------------------------------------------------
    info = dict(run_info or {})
    model = dict(info.get("model") or {})
    artifacts = dict(model.get("artifacts") or {})
    artifact_hashes = {
        name: (value.get("sha256") if isinstance(value, Mapping) else value)
        for name, value in artifacts.items()
    }
    stream_info = dict(info.get("stream") or {})
    repro_checks = [
        _check(
            "RP-01",
            "Config SHA-256 recorded",
            _is_sha256(info.get("config_sha256")),
            evidence={"config_sha256": info.get("config_sha256")},
        ),
        _check(
            "RP-02",
            "Model artifact SHA-256s recorded",
            bool(artifact_hashes)
            and all(_is_sha256(h) for h in artifact_hashes.values()),
            evidence={
                "model_version": model.get("version"),
                "n_artifacts": len(artifact_hashes),
                "artifacts": artifact_hashes,
            },
        ),
        _check(
            "RP-03",
            "Stream source recorded",
            bool(stream_info),
            severity="minor",
            evidence={"stream": stream_info},
        ),
    ]

    sections = [
        {"title": "Throughput", "checks": throughput_checks, "data": throughput_data},
        {"title": "Latency", "checks": latency_checks, "data": {"stages": _round(stages)}},
        {"title": "Timeline", "checks": timeline_checks, "data": timeline_data},
        {"title": "Lifecycle & shadow", "checks": lifecycle_checks, "data": lifecycle_data},
        {"title": "Reproducibility", "checks": repro_checks, "data": {}},
    ]
    if trace:
        sections.insert(2, _trace_section(trace, trace_budgets, trace_budget_metric))
    for index, section in enumerate(sections, start=1):
        section["index"] = index
        section["verdict"] = _section_verdict(section["checks"])
    all_checks = [c for section in sections for c in section["checks"]]

    return {
        "format_version": FORMAT_VERSION,
        "title": title,
        "generated_at": generated_at if generated_at is not None else _now_utc(),
        "overall": _section_verdict(all_checks),
        "run": _round(
            {
                "n_batches": n_batches,
                "n_samples": n_samples,
                "n_alerts": summary.get("n_alerts", 0),
                "n_drift_events": summary.get("n_drift_events", 0),
                "n_quarantined": n_quarantined,
                "throughput_samples_per_sec": throughput,
                "total_time_s": summary.get("total_time_s", 0.0),
            }
        ),
        "sections": sections,
    }


# ---------------------------------------------------------------------------
# markdown rendering
# ---------------------------------------------------------------------------


def _evidence_line(evidence: Mapping[str, Any]) -> str:
    return json.dumps(evidence, sort_keys=True, default=str)


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render ``report.json`` to the human-readable ``report.md``."""
    run = report.get("run", {})
    lines = [
        f"# {report.get('title', 'Serving run report')}",
        "",
        f"- Generated at: `{report.get('generated_at', 'unknown')}`",
        f"- Overall: **{report.get('overall', 'NOT_MET')}**",
        f"- Batches: {run.get('n_batches', 0)} · rows: {run.get('n_samples', 0)}"
        f" · alerts: {run.get('n_alerts', 0)}"
        f" · quarantined: {run.get('n_quarantined', 0)}",
        f"- Throughput: {run.get('throughput_samples_per_sec', 0.0):,.0f}"
        f" rows/s over {run.get('total_time_s', 0.0):.3f} s",
        "",
        "## Sections",
    ]
    for section in report.get("sections", []):
        lines.append("")
        lines.append(
            f"### {section.get('index', '?')}. {section.get('title', '?')}"
            f" — **{section.get('verdict', 'NOT_MET')}**"
        )
        lines.append("")
        for check in section.get("checks", []):
            lines.append(
                f"- `{check['id']}` **{check['verdict']}**"
                f" ({check['severity']}) — {check['title']}"
            )
            if check.get("evidence"):
                lines.append(f"  - evidence: `{_evidence_line(check['evidence'])}`")
        data = section.get("data", {})
        stages = data.get("stages")
        if stages:
            lines.append("")
            lines.append("| stage | spans | p50 (ms) | p95 (ms) | p99 (ms) |")
            lines.append("| --- | ---: | ---: | ---: | ---: |")
            for stage, row in stages.items():
                lines.append(
                    f"| {stage} | {row['count']} |"
                    f" {1e3 * row['p50_s']:.3f} |"
                    f" {1e3 * row['p95_s']:.3f} |"
                    f" {1e3 * row['p99_s']:.3f} |"
                )
        crit = data.get("critical_path")
        if crit and crit.get("path"):
            lines.append("")
            lines.append(
                f"- worst critical path: `{' > '.join(crit['path'])}`"
                f" ({crit.get('total_ms', 0.0):.3f} ms)"
            )
        entries = data.get("entries")
        if entries is not None:
            lines.append("")
            if not entries:
                lines.append("- (no timeline events)")
            for entry in entries:
                detail = ", ".join(
                    f"{k}={entry[k]}"
                    for k in entry
                    if k not in ("type", "n") and entry[k] is not None
                )
                prefix = f"- `{entry['type']}`"
                if entry.get("n", 1) > 1:
                    prefix += f" ×{entry['n']}"
                lines.append(f"{prefix} — {detail}" if detail else prefix)
            if data.get("truncated"):
                lines.append(f"- … {data['truncated']} more entries truncated")
        if data.get("baseline_note"):
            lines.append("")
            lines.append(f"> {data['baseline_note']}")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# run-directory round trip
# ---------------------------------------------------------------------------


def write_report_files(
    run_dir: str | Path, report: Mapping[str, Any]
) -> tuple[Path, Path]:
    """Write ``report.json`` + ``report.md`` into ``run_dir``; return paths."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    json_path = run_dir / "report.json"
    md_path = run_dir / "report.md"
    json_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    md_path.write_text(render_markdown(report), encoding="utf-8")
    return json_path, md_path


def load_run_dir(run_dir: str | Path) -> tuple[dict, list[dict]]:
    """Load ``(run_summary, events)`` back from a ``serve --run-dir`` output.

    ``run_summary.json`` is required; ``events.jsonl`` is optional (a run
    with no sink events still reports).  Truncated trailing event lines —
    a crash mid-append — are skipped, mirroring registry history reads.
    """
    run_dir = Path(run_dir)
    summary_path = run_dir / "run_summary.json"
    if not summary_path.is_file():
        raise FileNotFoundError(
            f"{summary_path} not found; was this run started with --run-dir?"
        )
    run_summary = json.loads(summary_path.read_text(encoding="utf-8"))
    from ..sinks import read_events  # local import: avoid package-init cycle

    events_path = run_dir / "events.jsonl"
    events = read_events(events_path) if events_path.is_file() else []
    return run_summary, events


def render_run_report(
    run_dir: str | Path,
    *,
    baseline: Mapping[str, Any] | None = None,
    history: Sequence[Mapping[str, Any]] = (),
    trace_budgets: Mapping[str, float] | None = None,
    trace_budget_metric: str = "p95",
    generated_at: str | None = None,
) -> dict:
    """Re-render a run directory's report and rewrite its files.

    Backs ``repro serve report <run-dir>``: everything needed is read from
    ``run_summary.json`` + ``events.jsonl`` (+ ``trace.jsonl`` when the run
    traced into its run directory), so a report can be (re)built long after
    the serving process exited.
    """
    run_summary, events = load_run_dir(run_dir)
    from .traceview import read_spans  # local import, keeps module load light

    trace_path = Path(run_dir) / "trace.jsonl"
    trace = read_spans(trace_path) if trace_path.is_file() else None
    report = build_report(
        run_summary.get("service_report") or {},
        metrics=run_summary.get("metrics"),
        events=events,
        history=history,
        run_info=run_summary,
        baseline=baseline,
        trace=trace,
        trace_budgets=trace_budgets,
        trace_budget_metric=trace_budget_metric,
        generated_at=generated_at,
    )
    write_report_files(run_dir, report)
    return report
