"""Prometheus text exposition rendered from a metrics snapshot.

:func:`render_prometheus` is a pure function from
:meth:`MetricsRegistry.snapshot() <repro.serve.telemetry.metrics.MetricsRegistry.snapshot>`
output to the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4) — the ``/metrics`` endpoint of the live status server calls it on
every scrape.  Keeping the renderer snapshot-in/text-out makes it trivially
testable and keeps the HTTP layer free of metrics knowledge.

Mapping rules:

* metric names are sanitized (``.`` and other illegal characters become
  ``_``) and prefixed ``repro_``; counters gain the conventional ``_total``
  suffix;
* each metric family gets ``# HELP`` / ``# TYPE`` comment lines;
* histograms expose cumulative ``_bucket{le="..."}`` series (our snapshot
  stores *per-bucket* counts, so the renderer cumulates), a final
  ``le="+Inf"`` bucket equal to ``_count``, plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = ["render_prometheus"]

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _name(raw: str, *, suffix: str = "") -> str:
    return "repro_" + _ILLEGAL.sub("_", raw) + suffix


def _value(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot as Prometheus text exposition format."""
    lines: list[str] = []

    for raw, entry in snapshot.get("counters", {}).items():
        name = _name(raw, suffix="_total")
        lines.append(f"# HELP {name} {raw} ({entry.get('unit', 'count')})")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_value(entry.get('value', 0))}")

    for raw, entry in snapshot.get("gauges", {}).items():
        name = _name(raw)
        lines.append(f"# HELP {name} {raw} ({entry.get('unit', 'value')})")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_value(entry.get('value', 0))}")

    for raw, entry in snapshot.get("histograms", {}).items():
        name = _name(raw)
        lines.append(f"# HELP {name} {raw} ({entry.get('unit', 'seconds')})")
        lines.append(f"# TYPE {name} histogram")
        bounds = entry.get("bounds", ())
        bucket_counts = entry.get("bucket_counts", [])
        count = int(entry.get("count", 0))
        cumulative = 0
        for bound, n in zip(bounds, bucket_counts):
            cumulative += int(n)
            lines.append(f'{name}_bucket{{le="{_value(bound)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{name}_sum {_value(entry.get('sum', 0.0))}")
        lines.append(f"{name}_count {count}")

    return "\n".join(lines) + "\n"
