"""Structured operator logging for ``repro.serve``.

The serving stack signals degradations (disabled sink, worker restart,
history-persist failure, truncated history line) to *API users* through
``warnings.warn(..., UserWarning)`` — those stay, because a library caller
filters warnings, not log streams.  Operators running ``repro serve`` want
the same facts as log records instead: greppable, timestamped, leveled.
This module is that second channel.

Everything logs under the ``"repro.serve"`` stdlib logger, which carries a
``NullHandler`` by default (library-friendly: silent until the application
configures logging).  ``repro serve --log-level info`` calls
:func:`configure_logging` to attach a stderr handler for the CLI.

:func:`log_event` renders structured records in ``event key=value`` form so
a single grep pulls every record of one event type::

    repro.serve WARNING sink_disabled sink='JsonlSink' n_errors=3 ...
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["configure_logging", "get_logger", "log_event", "logger"]

#: Package logger: silent (NullHandler) until the application configures it.
logger = logging.getLogger("repro.serve")
logger.addHandler(logging.NullHandler())

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro.serve`` logger, or a child (``get_logger("parallel")``)."""
    if not name:
        return logger
    return logger.getChild(name)


def configure_logging(level: int | str = logging.INFO) -> logging.Logger:
    """Attach one stderr handler to the package logger (idempotent).

    Meant for the CLI (``serve --log-level``); libraries embedding the
    service should configure the ``"repro.serve"`` logger themselves.
    Calling twice adjusts the level instead of stacking handlers.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    handler = next(
        (
            h
            for h in logger.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger


def log_event(
    level: int, event: str, *, logger_: logging.Logger | None = None, **fields: Any
) -> None:
    """Log ``event key=value ...`` at ``level``, values ``repr()``-rendered.

    Field order follows the call site, so related records line up; the event
    name leads, so ``grep sink_disabled`` finds every occurrence.
    """
    target = logger_ if logger_ is not None else logger
    if not target.isEnabledFor(level):
        return
    parts = [event]
    parts.extend(f"{key}={value!r}" for key, value in fields.items())
    target.log(level, " ".join(parts))
