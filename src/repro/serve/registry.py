"""Directory-backed model registry: named, versioned snapshots on disk.

Layout::

    <root>/
        <name>/
            v1/            # snapshot (manifest.json + arrays.npz)
            v2/
            pin.json       # {"version": 1} when a version is pinned
            history.jsonl  # lifecycle event lineage (one JSON object per line)

Versions are monotonically increasing integers assigned by :meth:`publish`.
``resolve``/``load`` accept an explicit version, ``"latest"``, ``"pinned"``,
or ``None`` (pinned when a pin exists, otherwise latest) — so a deployment can
follow the newest model by default but be frozen to a known-good version with
one :meth:`pin` call, without touching the serving code.

Crash safety
------------
Writes are atomic: :meth:`publish` saves into a hidden ``.tmp-*`` directory
and ``os.replace``-renames it into place, and :meth:`append_history` rewrites
the lineage file through a fsynced temp file — a ``kill -9`` at any point
leaves either the old state or the new state, never a torn one.  Concurrent
writers on one model are serialized through an ``flock``-based lock file
(POSIX; a no-op where :mod:`fcntl` is unavailable).  On construction a
recovery scan (:meth:`recover`) quarantines whatever an *earlier, pre-atomic*
crash may have left behind — orphaned temp directories, version directories
with a missing/unreadable manifest or a SHA-256 mismatch against their
artifacts — into ``<name>/.corrupt/``, records a ``registry_recover`` lineage
event, and lets ``resolve`` keep serving the newest intact version.
"""

from __future__ import annotations

import json
import logging
import os
import re
import shutil
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.serve.faults import RegistryRecovery, call_with_retry
from repro.serve.snapshot import (
    _sha256_file,
    load_snapshot,
    read_manifest,
    save_snapshot,
)
from repro.serve.telemetry.log import get_logger, log_event

__all__ = ["ModelRegistry", "SnapshotInfo"]

_logger = get_logger("registry")

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_DIR = re.compile(r"^v(\d+)$")
_PIN_FILE = "pin.json"
_HISTORY_FILE = "history.jsonl"
_LOCK_FILE = ".lock"
_CORRUPT_DIR = ".corrupt"
_TMP_PREFIX = ".tmp-"


@dataclass(frozen=True)
class SnapshotInfo:
    """A resolved registry entry."""

    name: str
    version: int
    path: Path

    @property
    def manifest(self) -> dict[str, Any]:
        """Parsed snapshot manifest (class, creation time, metadata)."""
        return read_manifest(self.path)


def _check_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValueError(
            f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
        )
    return name


class ModelRegistry:
    """Store and resolve named, versioned model snapshots under one directory.

    Parameters
    ----------
    root:
        Registry directory; created (with parents) if missing.
    recover:
        Run the startup recovery scan (see :meth:`recover`); the quarantined
        entries, if any, are kept in :attr:`recovered_`.  Disable only in
        tests that stage corruption deliberately.
    """

    def __init__(self, root: str | Path, *, recover: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.recovered_: list[RegistryRecovery] = self.recover() if recover else []

    # -- write serialization -----------------------------------------------------
    @contextmanager
    def _writer_lock(self, name: str) -> Iterator[None]:
        """Exclusive per-model writer lock (``flock`` on ``<name>/.lock``).

        Serializes publishes/appends from concurrent processes on POSIX; a
        no-op where :mod:`fcntl` is unavailable — the atomic renames then
        still guarantee torn-write safety, just not a total write order.
        """
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(model_dir / _LOCK_FILE, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- queries ---------------------------------------------------------------
    def models(self) -> list[str]:
        """Sorted names that have at least one published version.

        Directories that are not valid model names (editor droppings,
        ``__pycache__``, ...) are skipped rather than treated as corruption.
        """
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and _NAME_PATTERN.match(entry.name)
            and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Ascending published versions of ``name`` (empty when unknown)."""
        model_dir = self.root / _check_name(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_DIR.match(entry.name)
            if match and (entry / "manifest.json").is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no published versions of model {name!r} in {self.root}")
        return versions[-1]

    def pinned_version(self, name: str) -> int | None:
        """The pinned version of ``name``, or ``None`` when nothing is pinned."""
        pin_path = self.root / _check_name(name) / _PIN_FILE
        if not pin_path.is_file():
            return None
        return int(json.loads(pin_path.read_text())["version"])

    def resolve(self, name: str, version: int | str | None = None) -> SnapshotInfo:
        """Resolve a version selector to a concrete :class:`SnapshotInfo`.

        ``version`` may be an int, ``"v3"``-style string, ``"latest"``,
        ``"pinned"``, or ``None`` (pinned when a pin exists, else latest).
        """
        name = _check_name(name)
        if version is None:
            pinned = self.pinned_version(name)
            resolved = pinned if pinned is not None else self.latest_version(name)
        elif version == "latest":
            resolved = self.latest_version(name)
        elif version == "pinned":
            pinned = self.pinned_version(name)
            if pinned is None:
                raise KeyError(f"model {name!r} has no pinned version")
            resolved = pinned
        else:
            if isinstance(version, str):
                match = _VERSION_DIR.match(version)
                if not match and not version.isdigit():
                    raise ValueError(f"unrecognised version selector {version!r}")
                resolved = int(match.group(1)) if match else int(version)
            else:
                resolved = int(version)
        path = self.root / name / f"v{resolved}"
        if not (path / "manifest.json").is_file():
            raise KeyError(f"model {name!r} has no version v{resolved} in {self.root}")
        return SnapshotInfo(name=name, version=resolved, path=path)

    # -- lifecycle lineage -----------------------------------------------------
    def history_path(self, name: str) -> Path:
        """Path of ``name``'s lineage file (may not exist yet)."""
        return self.root / _check_name(name) / _HISTORY_FILE

    def append_history(self, name: str, payload: dict[str, Any]) -> Path:
        """Append one lineage record (a JSON-serializable dict) for ``name``.

        The lifecycle manager persists every :class:`LifecycleEvent` here
        (``LifecycleEvent.to_dict()``), next to the versions the events
        produced, so an operator can audit *why* each version was published
        — or a candidate rejected — after the serving process has exited.
        The file is append-only and survives :meth:`gc` (pruning old model
        artifacts must not erase the audit trail).  The append is crash-safe:
        the whole file is rewritten through a fsynced temp file and
        ``os.replace``-renamed into place under the writer lock, so a crash
        mid-append leaves the previous lineage intact rather than a torn
        trailing record.
        """
        name = _check_name(name)
        path = self.history_path(name)
        record = json.dumps(payload, sort_keys=True) + "\n"
        with self._writer_lock(name):
            existing = path.read_text() if path.is_file() else ""
            tmp = path.with_name(f"{path.name}{_TMP_PREFIX}{os.getpid()}")

            def _write() -> None:
                with open(tmp, "w") as handle:
                    handle.write(existing + record)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)

            try:
                call_with_retry(_write)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
        return path

    def history(self, name: str) -> list[dict[str, Any]]:
        """Replay ``name``'s lineage records, oldest first (empty when none).

        A truncated *trailing* line — the signature a pre-atomic crash
        mid-append leaves behind — is skipped with a warning so the lineage
        stays replayable; corruption anywhere *before* the last record is
        not a torn append and still raises.
        """
        path = self.history_path(name)
        if not path.is_file():
            return []
        lines = path.read_text().splitlines()
        records: list[dict[str, Any]] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if any(rest.strip() for rest in lines[i + 1 :]):
                    raise
                # Warned for API users *and* logged for operators: the same
                # fact travels both channels (see repro.serve.telemetry.log).
                log_event(
                    logging.WARNING,
                    "history_truncated_line",
                    logger_=_logger,
                    path=str(path),
                    line_index=i,
                )
                warnings.warn(
                    f"skipping truncated trailing record in {path} "
                    "(crash mid-append); lineage up to it is intact",
                    UserWarning,
                    stacklevel=2,
                )
                break
        return records

    # -- recovery --------------------------------------------------------------
    @staticmethod
    def _diagnose(version_dir: Path) -> str | None:
        """Why ``version_dir`` is unservable, or ``None`` when it is intact."""
        try:
            manifest = read_manifest(version_dir)
        except FileNotFoundError:
            return "manifest.json missing (crash before the manifest write)"
        except ValueError as exc:  # SnapshotError and json decode errors
            return f"unreadable manifest: {exc}"
        for artifact_name, info in (manifest.get("artifacts") or {}).items():
            artifact_path = version_dir / artifact_name
            if not artifact_path.is_file():
                return f"artifact {artifact_name!r} missing"
            expected = info.get("sha256")
            if expected is not None and _sha256_file(artifact_path) != expected:
                return f"artifact {artifact_name!r} sha256 mismatch (torn write)"
        return None

    def _quarantine(self, name: str, entry: Path, reason: str) -> RegistryRecovery:
        corrupt_dir = self.root / name / _CORRUPT_DIR
        corrupt_dir.mkdir(exist_ok=True)
        target = corrupt_dir / entry.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = corrupt_dir / f"{entry.name}.{suffix}"
        os.replace(entry, target)
        return RegistryRecovery(
            name=name,
            version_dir=entry.name,
            reason=reason,
            quarantined_to=str(target),
        )

    def recover(self, name: str | None = None) -> list[RegistryRecovery]:
        """Quarantine partial/corrupt versions into ``<name>/.corrupt/``.

        Scans one model (or all of them) for what a crash mid-publish can
        leave behind — orphaned ``.tmp-*`` publish directories, and version
        directories whose manifest is missing/unreadable or whose artifacts
        fail their manifest SHA-256 — and moves each offender aside so
        ``resolve``/``latest_version`` keep serving the newest *intact*
        version.  Every quarantine appends a ``registry_recover`` lineage
        record and is returned as a
        :class:`~repro.serve.faults.RegistryRecovery` event.  Runs on every
        :class:`ModelRegistry` construction by default.
        """
        if name is not None:
            names = [_check_name(name)]
        else:
            names = sorted(
                entry.name
                for entry in self.root.iterdir()
                if entry.is_dir() and _NAME_PATTERN.match(entry.name)
            )
        recovered: list[RegistryRecovery] = []
        for model_name in names:
            model_dir = self.root / model_name
            if not model_dir.is_dir():
                continue
            with self._writer_lock(model_name):
                for entry in sorted(model_dir.iterdir()):
                    if not entry.is_dir():
                        continue
                    if entry.name.startswith(_TMP_PREFIX):
                        recovered.append(
                            self._quarantine(
                                model_name,
                                entry,
                                "orphaned temp publish directory "
                                "(crash mid-publish)",
                            )
                        )
                        continue
                    if _VERSION_DIR.match(entry.name):
                        reason = self._diagnose(entry)
                        if reason is not None:
                            recovered.append(
                                self._quarantine(model_name, entry, reason)
                            )
        # Outside the lock: append_history takes the same flock, and flock
        # is per open-file-description, so nesting would deadlock.
        for event in recovered:
            self.append_history(event.name, event.to_dict())
        return recovered

    # -- mutation --------------------------------------------------------------
    def publish(
        self, model: Any, name: str, *, metadata: dict[str, Any] | None = None
    ) -> SnapshotInfo:
        """Save ``model`` as the next version of ``name`` and return its info.

        Atomic: the snapshot is written into a hidden ``.tmp-*`` sibling and
        renamed into ``v{N}`` in one ``os.replace`` — a reader (or a crash)
        never observes a half-written version, and the recovery scan sweeps
        any orphaned temp directory a dead publisher left behind.  Transient
        ``OSError``\\ s during the snapshot write are retried with backoff.
        """
        name = _check_name(name)
        with self._writer_lock(name):
            versions = self.versions(name)
            version = (versions[-1] + 1) if versions else 1
            path = self.root / name / f"v{version}"
            tmp = self.root / name / f"{_TMP_PREFIX}v{version}-{os.getpid()}"
            try:
                call_with_retry(
                    lambda: save_snapshot(
                        model, tmp, metadata=metadata, overwrite=True
                    )
                )
                os.replace(tmp, path)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        return SnapshotInfo(name=name, version=version, path=path)

    def load(self, name: str, version: int | str | None = None) -> Any:
        """Load the model behind ``resolve(name, version)``.

        Transient ``OSError``\\ s are retried with backoff; corruption
        (:class:`~repro.serve.snapshot.SnapshotError`) is not — a bad
        snapshot will not heal by rereading it.
        """
        info = self.resolve(name, version)
        return call_with_retry(lambda: load_snapshot(info.path))

    def pin(self, name: str, version: int | str) -> SnapshotInfo:
        """Pin ``name`` to a published version; ``resolve(name)`` now returns it."""
        info = self.resolve(name, version)
        pin_path = self.root / info.name / _PIN_FILE
        pin_path.write_text(json.dumps({"version": info.version}) + "\n")
        return info

    def unpin(self, name: str) -> None:
        """Remove the pin of ``name`` (a no-op when nothing is pinned)."""
        pin_path = self.root / _check_name(name) / _PIN_FILE
        if pin_path.is_file():
            pin_path.unlink()

    def delete_version(self, name: str, version: int | str) -> None:
        """Delete one published version (refuses to delete a pinned version)."""
        info = self.resolve(name, version)
        if self.pinned_version(name) == info.version:
            raise ValueError(
                f"model {name!r} is pinned to v{info.version}; unpin before deleting"
            )
        shutil.rmtree(info.path)

    def gc(self, name: str | None = None, *, keep: int = 3) -> list[SnapshotInfo]:
        """Prune old versions, keeping the newest ``keep`` per model.

        An online-refit lifecycle publishes a new version per accepted
        candidate, so registries grow without bound; ``gc`` is the retention
        policy.  A pinned version is always kept (on top of the newest
        ``keep``), so freezing a deployment to a known-good model survives
        any later cleanup.  Returns the deleted entries, oldest first.

        Parameters
        ----------
        name:
            Prune a single model, or every model when ``None``.
        keep:
            Number of newest versions to retain per model (at least 1).
        """
        if keep < 1:
            raise ValueError("keep must be at least 1 (gc must not empty a model)")
        names = [_check_name(name)] if name is not None else self.models()
        deleted: list[SnapshotInfo] = []
        for model_name in names:
            versions = self.versions(model_name)
            survivors = set(versions[-keep:])
            pinned = self.pinned_version(model_name)
            if pinned is not None:
                survivors.add(pinned)
            for version in versions:
                if version in survivors:
                    continue
                path = self.root / model_name / f"v{version}"
                shutil.rmtree(path)
                deleted.append(
                    SnapshotInfo(name=model_name, version=version, path=path)
                )
        return deleted
