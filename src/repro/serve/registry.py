"""Directory-backed model registry: named, versioned snapshots on disk.

Layout::

    <root>/
        <name>/
            v1/            # snapshot (manifest.json + arrays.npz)
            v2/
            pin.json       # {"version": 1} when a version is pinned
            history.jsonl  # lifecycle event lineage (one JSON object per line)

Versions are monotonically increasing integers assigned by :meth:`publish`.
``resolve``/``load`` accept an explicit version, ``"latest"``, ``"pinned"``,
or ``None`` (pinned when a pin exists, otherwise latest) — so a deployment can
follow the newest model by default but be frozen to a known-good version with
one :meth:`pin` call, without touching the serving code.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.serve.snapshot import load_snapshot, read_manifest, save_snapshot

__all__ = ["ModelRegistry", "SnapshotInfo"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_DIR = re.compile(r"^v(\d+)$")
_PIN_FILE = "pin.json"
_HISTORY_FILE = "history.jsonl"


@dataclass(frozen=True)
class SnapshotInfo:
    """A resolved registry entry."""

    name: str
    version: int
    path: Path

    @property
    def manifest(self) -> dict[str, Any]:
        """Parsed snapshot manifest (class, creation time, metadata)."""
        return read_manifest(self.path)


def _check_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValueError(
            f"invalid model name {name!r}: use letters, digits, '.', '_' or '-'"
        )
    return name


class ModelRegistry:
    """Store and resolve named, versioned model snapshots under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- queries ---------------------------------------------------------------
    def models(self) -> list[str]:
        """Sorted names that have at least one published version.

        Directories that are not valid model names (editor droppings,
        ``__pycache__``, ...) are skipped rather than treated as corruption.
        """
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and _NAME_PATTERN.match(entry.name)
            and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Ascending published versions of ``name`` (empty when unknown)."""
        model_dir = self.root / _check_name(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_DIR.match(entry.name)
            if match and (entry / "manifest.json").is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no published versions of model {name!r} in {self.root}")
        return versions[-1]

    def pinned_version(self, name: str) -> int | None:
        """The pinned version of ``name``, or ``None`` when nothing is pinned."""
        pin_path = self.root / _check_name(name) / _PIN_FILE
        if not pin_path.is_file():
            return None
        return int(json.loads(pin_path.read_text())["version"])

    def resolve(self, name: str, version: int | str | None = None) -> SnapshotInfo:
        """Resolve a version selector to a concrete :class:`SnapshotInfo`.

        ``version`` may be an int, ``"v3"``-style string, ``"latest"``,
        ``"pinned"``, or ``None`` (pinned when a pin exists, else latest).
        """
        name = _check_name(name)
        if version is None:
            pinned = self.pinned_version(name)
            resolved = pinned if pinned is not None else self.latest_version(name)
        elif version == "latest":
            resolved = self.latest_version(name)
        elif version == "pinned":
            pinned = self.pinned_version(name)
            if pinned is None:
                raise KeyError(f"model {name!r} has no pinned version")
            resolved = pinned
        else:
            if isinstance(version, str):
                match = _VERSION_DIR.match(version)
                if not match and not version.isdigit():
                    raise ValueError(f"unrecognised version selector {version!r}")
                resolved = int(match.group(1)) if match else int(version)
            else:
                resolved = int(version)
        path = self.root / name / f"v{resolved}"
        if not (path / "manifest.json").is_file():
            raise KeyError(f"model {name!r} has no version v{resolved} in {self.root}")
        return SnapshotInfo(name=name, version=resolved, path=path)

    # -- lifecycle lineage -----------------------------------------------------
    def history_path(self, name: str) -> Path:
        """Path of ``name``'s lineage file (may not exist yet)."""
        return self.root / _check_name(name) / _HISTORY_FILE

    def append_history(self, name: str, payload: dict[str, Any]) -> Path:
        """Append one lineage record (a JSON-serializable dict) for ``name``.

        The lifecycle manager persists every :class:`LifecycleEvent` here
        (``LifecycleEvent.to_dict()``), next to the versions the events
        produced, so an operator can audit *why* each version was published
        — or a candidate rejected — after the serving process has exited.
        The file is append-only and survives :meth:`gc` (pruning old model
        artifacts must not erase the audit trail).
        """
        path = self.history_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        return path

    def history(self, name: str) -> list[dict[str, Any]]:
        """Replay ``name``'s lineage records, oldest first (empty when none)."""
        path = self.history_path(name)
        if not path.is_file():
            return []
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    # -- mutation --------------------------------------------------------------
    def publish(
        self, model: Any, name: str, *, metadata: dict[str, Any] | None = None
    ) -> SnapshotInfo:
        """Save ``model`` as the next version of ``name`` and return its info."""
        name = _check_name(name)
        versions = self.versions(name)
        version = (versions[-1] + 1) if versions else 1
        path = self.root / name / f"v{version}"
        save_snapshot(model, path, metadata=metadata)
        return SnapshotInfo(name=name, version=version, path=path)

    def load(self, name: str, version: int | str | None = None) -> Any:
        """Load the model behind ``resolve(name, version)``."""
        return load_snapshot(self.resolve(name, version).path)

    def pin(self, name: str, version: int | str) -> SnapshotInfo:
        """Pin ``name`` to a published version; ``resolve(name)`` now returns it."""
        info = self.resolve(name, version)
        pin_path = self.root / info.name / _PIN_FILE
        pin_path.write_text(json.dumps({"version": info.version}) + "\n")
        return info

    def unpin(self, name: str) -> None:
        """Remove the pin of ``name`` (a no-op when nothing is pinned)."""
        pin_path = self.root / _check_name(name) / _PIN_FILE
        if pin_path.is_file():
            pin_path.unlink()

    def delete_version(self, name: str, version: int | str) -> None:
        """Delete one published version (refuses to delete a pinned version)."""
        info = self.resolve(name, version)
        if self.pinned_version(name) == info.version:
            raise ValueError(
                f"model {name!r} is pinned to v{info.version}; unpin before deleting"
            )
        shutil.rmtree(info.path)

    def gc(self, name: str | None = None, *, keep: int = 3) -> list[SnapshotInfo]:
        """Prune old versions, keeping the newest ``keep`` per model.

        An online-refit lifecycle publishes a new version per accepted
        candidate, so registries grow without bound; ``gc`` is the retention
        policy.  A pinned version is always kept (on top of the newest
        ``keep``), so freezing a deployment to a known-good model survives
        any later cleanup.  Returns the deleted entries, oldest first.

        Parameters
        ----------
        name:
            Prune a single model, or every model when ``None``.
        keep:
            Number of newest versions to retain per model (at least 1).
        """
        if keep < 1:
            raise ValueError("keep must be at least 1 (gc must not empty a model)")
        names = [_check_name(name)] if name is not None else self.models()
        deleted: list[SnapshotInfo] = []
        for model_name in names:
            versions = self.versions(model_name)
            survivors = set(versions[-keep:])
            pinned = self.pinned_version(model_name)
            if pinned is not None:
                survivors.add(pinned)
            for version in versions:
                if version in survivors:
                    continue
                path = self.root / model_name / f"v{version}"
                shutil.rmtree(path)
                deleted.append(
                    SnapshotInfo(name=model_name, version=version, path=path)
                )
        return deleted
