"""Online serving subsystem: snapshots, registry, streaming detection service.

The experiment layer fits and scores inside one process; this package turns a
fitted detector into something that can be *deployed*:

* :mod:`repro.serve.snapshot` — pickle-free ``save(path)`` / ``load(path)``
  persistence for every detector, tree ensemble and continual method
  (versioned JSON manifest + one ``.npz`` of arrays),
* :mod:`repro.serve.registry` — a directory-backed model registry with
  named, versioned snapshots and ``latest`` / pinned resolution,
* :mod:`repro.serve.service` — :class:`DetectionService`, a long-lived
  consumer of :class:`~repro.datasets.streaming.FlowStream` (or any batch
  iterator) with micro-batched bounded-memory scoring, rolling thresholds,
  structured alerts and throughput counters,
* :mod:`repro.serve.drift` — rolling score/feature statistics that flag
  distribution shift and can trigger a refit-from-registry,
* :mod:`repro.serve.fusion` — score-level fusion of several detectors
  (mean / max / conflict-aware PCR-style weighting) served as one model,
* :mod:`repro.serve.parallel` — :class:`ShardedDetectionService`, fanning a
  stream out to thread/process workers with deterministic (round-robin or
  greedy least-loaded) sharding, a global-order merge of alerts and drift
  events, and an epoch-tagged coordinated hot-swap on drift quorum,
* :mod:`repro.serve.lifecycle` — :class:`LifecycleManager` and friends: the
  online *drift → refit → gate → publish → swap* loop (clean-window
  buffering, Full/Continual/NoRefit policies, quality gate),
* :mod:`repro.serve.sinks` — pluggable alert sinks (in-memory, JSONL,
  callback),
* :mod:`repro.serve.faults` — the fault-tolerance layer threaded through all
  of the above: poison-row quarantine, supervised worker restarts, resilient
  sinks, retrying I/O, crash-safe registry recovery events, and the
  deterministic :class:`FaultInjector` chaos harness behind
  ``repro serve --inject-faults``,
* :mod:`repro.serve.telemetry` — the observability layer over all of the
  above: a mergeable metrics registry (counters, gauges, log-bucketed
  latency histograms that fold deterministically across workers), span
  tracing of every pipeline stage (``serve --trace-file``), structured
  operator logging (``serve --log-level``), and auditable run reports with
  reproducibility hashes (``serve --run-dir`` / ``serve report``).
"""

from repro.serve.drift import DriftMonitor, DriftReport
from repro.serve.faults import (
    FaultInjected,
    FaultInjector,
    QuarantinedRows,
    RaisingSink,
    RegistryRecovery,
    ResilientSink,
    SinkDisabled,
    WorkerRestart,
    call_with_retry,
    emit_resilient,
    wrap_sinks,
)
from repro.serve.fusion import FusionDetector
from repro.serve.lifecycle import (
    ContinualRefit,
    FullRefit,
    GateResult,
    LifecycleEvent,
    LifecycleManager,
    NoRefit,
    QualityGate,
    RefitPolicy,
    ShadowEvaluator,
    ShadowTrial,
    ShadowVerdict,
    WindowBuffer,
    clone_model,
)
from repro.serve.parallel import ShardedDetectionService
from repro.serve.registry import ModelRegistry, SnapshotInfo
from repro.serve.service import (
    Alert,
    BatchResult,
    DetectionService,
    DriftEvent,
    ServiceReport,
    make_registry_reload,
)
from repro.serve.sinks import AlertSink, CallbackSink, JsonlSink, ListSink, read_events
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    read_manifest,
    save_snapshot,
)
from repro.serve.telemetry import (
    MetricsEvent,
    MetricsRegistry,
    SpanTracer,
    build_report,
    build_run_summary,
    configure_logging,
    deterministic_view,
    get_logger,
    log_event,
    render_markdown,
    render_run_report,
    trace_span,
    write_report_files,
)

__all__ = [
    "Alert",
    "AlertSink",
    "BatchResult",
    "CallbackSink",
    "ContinualRefit",
    "DetectionService",
    "DriftEvent",
    "DriftMonitor",
    "DriftReport",
    "FaultInjected",
    "FaultInjector",
    "FullRefit",
    "FusionDetector",
    "GateResult",
    "JsonlSink",
    "LifecycleEvent",
    "LifecycleManager",
    "ListSink",
    "MetricsEvent",
    "MetricsRegistry",
    "ModelRegistry",
    "NoRefit",
    "QualityGate",
    "QuarantinedRows",
    "RaisingSink",
    "RefitPolicy",
    "RegistryRecovery",
    "ResilientSink",
    "ServiceReport",
    "ShadowEvaluator",
    "ShadowTrial",
    "ShadowVerdict",
    "ShardedDetectionService",
    "SinkDisabled",
    "SnapshotError",
    "SnapshotInfo",
    "SNAPSHOT_FORMAT_VERSION",
    "SpanTracer",
    "WindowBuffer",
    "WorkerRestart",
    "build_report",
    "build_run_summary",
    "call_with_retry",
    "clone_model",
    "configure_logging",
    "deterministic_view",
    "emit_resilient",
    "get_logger",
    "load_snapshot",
    "log_event",
    "make_registry_reload",
    "read_events",
    "read_manifest",
    "render_markdown",
    "render_run_report",
    "save_snapshot",
    "trace_span",
    "wrap_sinks",
    "write_report_files",
]
