"""Distribution-shift monitoring from rolling score and feature statistics.

The monitor compares a *reference* distribution (training-time anomaly scores
and feature means, or the first samples of the stream when no reference is
given) against rolling statistics of the most recent window.  Shift is
measured in units of the reference standard deviation::

    score_shift   = |rolling_mean(scores) - ref_mean| / ref_std
    feature_shift = max_j |rolling_mean(x_j) - ref_mean_j| / ref_std_j

Both are cheap to maintain (two ring buffers, O(window) memory) and scale-free,
so one threshold works across detectors whose score ranges differ by orders of
magnitude.  When either shift exceeds ``threshold`` the monitor reports drift
and then stays silent for ``cooldown`` updates, giving the operator (or the
service's refit hook) time to react before re-alerting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DriftMonitor", "DriftReport"]


class _RingBuffer:
    """Fixed-capacity rolling window over a stream of rows (bounded memory)."""

    def __init__(self, capacity: int, width: int) -> None:
        self._data = np.empty((capacity, width))
        self._next = 0
        self.count = 0

    def extend(self, rows: np.ndarray) -> None:
        capacity = self._data.shape[0]
        rows = rows[-capacity:]  # only the tail can survive anyway
        n = rows.shape[0]
        end = self._next + n
        if end <= capacity:
            self._data[self._next : end] = rows
        else:
            split = capacity - self._next
            self._data[self._next :] = rows[:split]
            self._data[: end - capacity] = rows[split:]
        self._next = end % capacity
        self.count = min(self.count + n, capacity)

    def mean(self) -> np.ndarray:
        if self.count == 0:
            # NumPy would emit "Mean of empty slice" and return NaN; a loud
            # error beats NaN statistics leaking into thresholds or shifts.
            raise ValueError("mean of an empty window")
        return self._data[: self.count].mean(axis=0)

    def values(self) -> np.ndarray:
        """The populated window rows (in no particular order)."""
        return self._data[: self.count]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.update` call."""

    drifted: bool
    score_shift: float
    feature_shift: float
    threshold: float
    n_samples_seen: int
    #: Whether the monitor was suppressing firings during this update — true
    #: for *every* update inside the post-firing cooldown, not only the ones
    #: whose shift re-exceeded the threshold, so sinks see the monitor's
    #: actual state (a quiet cooldown update is still a muted monitor).
    in_cooldown: bool = False

    def to_dict(self) -> dict:
        return {
            "type": "drift",
            "drifted": self.drifted,
            "score_shift": self.score_shift,
            "feature_shift": self.feature_shift,
            "threshold": self.threshold,
            "n_samples_seen": self.n_samples_seen,
            "in_cooldown": self.in_cooldown,
        }


@dataclass
class DriftMonitor:
    """Flag distribution shift from rolling score/feature means.

    Parameters
    ----------
    window:
        Number of most recent samples in the rolling window.
    threshold:
        Shift (in reference standard deviations) above which drift is flagged.
    min_samples:
        Updates report ``drifted=False`` until this many samples have been
        seen, so a few early outliers cannot fire the monitor.
    track_features:
        Also monitor per-feature means (catches covariate drift that does not
        move the anomaly-score distribution yet).
    cooldown:
        Number of ``update`` calls after a firing during which further
        firings are suppressed (reported with ``in_cooldown=True``).
    """

    window: int = 2048
    threshold: float = 0.5
    min_samples: int = 256
    track_features: bool = True
    cooldown: int = 10

    _score_ref: tuple[float, float] | None = field(default=None, repr=False)
    _feature_ref: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)
    _scores: _RingBuffer | None = field(default=None, repr=False)
    _features: _RingBuffer | None = field(default=None, repr=False)
    _n_seen: int = field(default=0, repr=False)
    _cooldown_left: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be at least 2")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    # -- reference -------------------------------------------------------------
    def set_reference(
        self, scores: np.ndarray | None = None, X: np.ndarray | None = None
    ) -> "DriftMonitor":
        """Fix the reference distribution (typically training-time statistics).

        Without an explicit reference, the first ``min_samples`` streamed
        samples become the reference automatically.
        """
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64).ravel()
            if scores.size < 2:
                raise ValueError("need at least 2 reference scores")
            if not np.isfinite(scores).all():
                raise ValueError(
                    "reference scores contain non-finite values; a poisoned "
                    "reference would misjudge every later shift"
                )
            self._score_ref = (float(scores.mean()), float(max(scores.std(), 1e-12)))
        if X is not None and self.track_features:
            X = np.asarray(X, dtype=np.float64)
            if X.ndim != 2 or X.shape[0] < 2:
                raise ValueError("reference X must be 2-D with at least 2 rows")
            if not np.isfinite(X).all():
                raise ValueError(
                    "reference X contains non-finite values; a poisoned "
                    "reference would misjudge every later shift"
                )
            std = X.std(axis=0)
            std[std == 0.0] = 1e-12
            self._feature_ref = (X.mean(axis=0), std)
        return self

    def reset(
        self, *, clear_score_reference: bool = False, rebootstrap: bool = False
    ) -> None:
        """Clear the rolling windows and cooldown.

        The references are kept by default.  Pass ``clear_score_reference=True``
        when the *model* behind the scores changed: the old model's score
        mean/std says nothing about the new model's scale, so the score
        reference re-bootstraps from the next ``min_samples`` streamed scores.

        Pass ``rebootstrap=True`` from a hot-swap path (drift-triggered
        reload or online refit): it additionally clears the *feature*
        reference.  A refitted model was trained on the post-drift window, so
        the pre-swap feature reference no longer describes the traffic the
        new model considers normal — keeping it would re-flag the (still
        shifted, now expected) features immediately after every swap and
        trap the service in a refit loop.  Both references re-bootstrap from
        the next ``min_samples`` streamed samples.
        """
        self._scores = None
        self._features = None
        self._n_seen = 0
        self._cooldown_left = 0
        if clear_score_reference or rebootstrap:
            self._score_ref = None
        if rebootstrap:
            self._feature_ref = None

    # -- streaming -------------------------------------------------------------
    def update(self, scores: np.ndarray, X: np.ndarray | None = None) -> DriftReport:
        """Fold one batch into the rolling window and report the shift.

        Non-finite rows are dropped before entering the windows: one NaN
        score or feature would otherwise poison the rolling mean — and, at
        stream start, the *bootstrapped reference* — silencing or misfiring
        the monitor for the rest of the window.  (The serving layer
        quarantines such rows before scoring; this guard covers monitors fed
        directly.)
        """
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if X is not None and self.track_features:
            X = np.asarray(X, dtype=np.float64)
        finite = np.isfinite(scores)
        if X is not None and self.track_features and X.shape[0] == scores.shape[0]:
            finite &= np.isfinite(X).all(axis=1)
            X = X[finite]
        scores = scores[finite]
        if self._scores is None:
            self._scores = _RingBuffer(self.window, 1)
        self._scores.extend(scores[:, None])
        if X is not None and self.track_features:
            if self._features is None:
                self._features = _RingBuffer(self.window, X.shape[1])
            self._features.extend(X)
        self._n_seen += scores.size

        # Bootstrap the reference from the stream head when none was given.
        if self._score_ref is None and self._n_seen >= self.min_samples:
            window_scores = self._scores.values().ravel()
            self._score_ref = (
                float(window_scores.mean()),
                float(max(window_scores.std(), 1e-12)),
            )
        if (
            self._feature_ref is None
            and self._features is not None
            and self._n_seen >= self.min_samples
        ):
            window_features = self._features.values()
            std = window_features.std(axis=0)
            std[std == 0.0] = 1e-12
            self._feature_ref = (window_features.mean(axis=0), std)

        score_shift = 0.0
        feature_shift = 0.0
        if self._score_ref is not None and self._scores.count:
            ref_mean, ref_std = self._score_ref
            score_shift = float(abs(self._scores.mean()[0] - ref_mean) / ref_std)
        if self._feature_ref is not None and self._features is not None and self._features.count:
            ref_mean, ref_std = self._feature_ref
            feature_shift = float(
                np.max(np.abs(self._features.mean() - ref_mean) / ref_std)
            )

        exceeded = (
            self._n_seen >= self.min_samples
            and max(score_shift, feature_shift) > self.threshold
        )
        in_cooldown = self._cooldown_left > 0
        if in_cooldown:
            self._cooldown_left -= 1
        drifted = exceeded and not in_cooldown
        if drifted:
            self._cooldown_left = self.cooldown
        return DriftReport(
            drifted=drifted,
            score_shift=score_shift,
            feature_shift=feature_shift,
            threshold=self.threshold,
            n_samples_seen=self._n_seen,
            in_cooldown=in_cooldown,
        )
