"""Refit policies: how a serving deployment turns a clean window into a model.

A :class:`RefitPolicy` receives the currently served model plus the clean
recent window collected by :class:`~repro.serve.lifecycle.buffer.WindowBuffer`
and returns a *candidate* model (or ``None`` to decline).  The candidate is
never the served object itself — policies clone through the pickle-free
snapshot codec (:func:`clone_model`) so workers can keep scoring the old
model while the candidate trains, and a rejected candidate leaves no trace.

Three policies cover the spectrum the paper's continual story needs:

* :class:`FullRefit` — fit a fresh detector of the same class (or from an
  explicit factory) from scratch on the window; the strongest reaction to
  covariate drift, at full training cost.
* :class:`ContinualRefit` — route the window through the model's own
  continual update path (:meth:`repro.continual.base.ContinualMethod.update`),
  preserving what the model already knows; the paper's CND-IDS adaptation.
* :class:`NoRefit` — decline to produce a candidate, which makes the
  lifecycle manager fall back to reloading the latest published registry
  version (the pre-lifecycle behavior of ``make_registry_reload``).
"""

from __future__ import annotations

import tempfile
from typing import Any, Callable

import numpy as np

__all__ = ["RefitPolicy", "FullRefit", "ContinualRefit", "NoRefit", "clone_model"]


def clone_model(model: Any) -> Any:
    """Deep-clone a model through the snapshot codec (no pickle, no sharing).

    The clone scores bit-identically to the original but shares no mutable
    state, so it can be trained or discarded without touching the served
    model mid-stream.
    """
    from repro.serve.snapshot import load_snapshot, save_snapshot

    with tempfile.TemporaryDirectory(prefix="repro-clone-") as tmp:
        return load_snapshot(save_snapshot(model, f"{tmp}/model"))


class RefitPolicy:
    """Strategy interface: produce a candidate model from the clean window."""

    #: Short identifier recorded in lifecycle events and registry metadata.
    name: str = "refit"

    def refit(self, current: Any, X_clean: np.ndarray) -> Any | None:
        """Return a fitted candidate, or ``None`` to decline (reload fallback).

        Implementations must not mutate ``current`` — it is still being
        served while the candidate trains.
        """
        raise NotImplementedError


class FullRefit(RefitPolicy):
    """Refit the detector class from scratch on the clean window.

    Parameters
    ----------
    factory:
        Optional zero-argument callable building a fresh *unfitted* model
        (use it to keep non-default hyper-parameters explicit).  Without a
        factory the served model is cloned through the snapshot codec and
        its ``fit`` is called on the window — hyper-parameters carried by
        the instance survive the clone.
    """

    name = "full"

    def __init__(self, factory: Callable[[], Any] | None = None) -> None:
        self.factory = factory

    def refit(self, current: Any, X_clean: np.ndarray) -> Any:
        candidate = self.factory() if self.factory is not None else clone_model(current)
        if not hasattr(candidate, "fit"):
            raise TypeError(
                f"FullRefit needs a model with fit(); {type(candidate).__name__} "
                "has none (use ContinualRefit or a factory)"
            )
        candidate.fit(X_clean)
        return candidate


class ContinualRefit(RefitPolicy):
    """Update a continual method with the clean window as one experience.

    The served model must expose the continual update path — ``update(X)``
    (see :meth:`repro.continual.base.ContinualMethod.update`) or
    ``fit_experience(X)`` — and is cloned first so the update can be gated
    and rolled back without affecting live scoring.
    """

    name = "continual"

    def refit(self, current: Any, X_clean: np.ndarray) -> Any:
        if not (hasattr(current, "update") or hasattr(current, "fit_experience")):
            raise TypeError(
                f"ContinualRefit requires a continual method with update()/"
                f"fit_experience(); {type(current).__name__} has neither "
                "(use FullRefit for plain detectors)"
            )
        candidate = clone_model(current)
        if hasattr(candidate, "update"):
            candidate.update(X_clean)
        else:
            candidate.fit_experience(X_clean)
        return candidate


class NoRefit(RefitPolicy):
    """Never produce a candidate; the manager falls back to a registry reload."""

    name = "reload"

    def refit(self, current: Any, X_clean: np.ndarray) -> None:
        return None
