"""The lifecycle manager: buffer + refit policy + quality gate + registry.

:class:`LifecycleManager` owns the full *drift → refit → gate → publish →
swap* loop during serving:

1. every scored batch feeds the clean-window buffer
   (:meth:`LifecycleManager.observe_batch`),
2. when the service's drift monitor fires, :meth:`handle_drift` asks the
   refit policy for a candidate trained on the buffered window,
3. the candidate must pass the quality gate (score-distribution sanity on
   the same window) or it is dropped,
4. an accepted candidate is published to the model registry as a new
   version (when a registry and model name are configured) and hot-swapped
   into the service, bumping the service's model epoch.

When the policy declines (``NoRefit``) or the window is too small, the
manager falls back to reloading the latest published registry version — the
pre-lifecycle behavior of :func:`repro.serve.service.make_registry_reload` —
so a deployment can mix operator-pushed models with online refits.

Every decision is recorded as a structured :class:`LifecycleEvent` (kept on
the manager and emitted to optional sinks), so an operator can audit exactly
why a model was or was not replaced.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

import numpy as np

from repro.serve.drift import DriftReport
from repro.serve.faults import call_with_retry, emit_resilient, wrap_sinks
from repro.serve.lifecycle.buffer import WindowBuffer
from repro.serve.lifecycle.gate import GateResult, QualityGate
from repro.serve.lifecycle.policy import RefitPolicy
from repro.serve.lifecycle.shadow import ShadowEvaluator, ShadowTrial, ShadowVerdict
from repro.serve.telemetry.log import get_logger, log_event
from repro.serve.telemetry.tracing import trace_span
from repro.utils.timing import Timer

_logger = get_logger("lifecycle")

__all__ = ["LifecycleEvent", "LifecycleManager"]


@dataclass(frozen=True)
class LifecycleEvent:
    """One lifecycle decision: what happened after a drift signal and why.

    ``action`` is one of ``"refit"`` (a candidate passed the gate and swapped
    immediately — no shadow evaluator configured), ``"reload"`` (fallback to
    the registry's published version), ``"rejected"`` (the candidate failed
    the gate; the current model keeps serving), ``"skipped"`` (nothing to do —
    window too small and no registry to fall back to, or a shadow trial is
    already judging a candidate), ``"shadow_start"`` (a gate-passed candidate
    entered shadow evaluation instead of swapping), ``"shadow_pass"`` (the
    candidate agreed with live traffic: published + swapped) or
    ``"shadow_reject"`` (live disagreement; candidate discarded).  ``swapped``
    tells whether the served model actually changed, and ``epoch`` is the
    serving epoch after the decision.
    """

    action: str
    policy: str
    swapped: bool = False
    epoch: int = 0
    n_window_rows: int = 0
    published_version: int | None = None
    refit_latency_s: float = 0.0
    gate: GateResult | None = None
    shadow: ShadowVerdict | None = None
    reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "type": "lifecycle",
            "action": self.action,
            "policy": self.policy,
            "swapped": self.swapped,
            "epoch": self.epoch,
            "n_window_rows": self.n_window_rows,
            "published_version": self.published_version,
            "refit_latency_s": self.refit_latency_s,
            "gate": self.gate.to_dict() if self.gate is not None else None,
            "shadow": self.shadow.to_dict() if self.shadow is not None else None,
            "reason": self.reason,
        }


class LifecycleManager:
    """Coordinate online refit, quality gating, publishing and hot-swaps.

    Parameters
    ----------
    policy:
        The :class:`~repro.serve.lifecycle.policy.RefitPolicy` producing
        candidates from the clean window.
    buffer:
        Clean-window buffer; a fresh 4096-row
        :class:`~repro.serve.lifecycle.buffer.WindowBuffer` when omitted.
    gate:
        Candidate quality gate; defaults to
        :class:`~repro.serve.lifecycle.gate.QualityGate`.
    registry, model_name:
        When both are given, accepted candidates are published to
        ``registry`` under ``model_name`` (auto-increment version) and the
        reload fallback resolves the same name.
    min_refit_rows:
        Below this many buffered rows a refit is not attempted (the window
        would under-determine the model); the manager reloads from the
        registry instead, when one is configured.
    publish:
        Set ``False`` to swap accepted candidates without publishing them.
    shadow:
        Optional :class:`~repro.serve.lifecycle.shadow.ShadowEvaluator`.
        When configured, a gate-passed refit candidate does **not** swap
        immediately: it enters a shadow trial (``"shadow_start"`` event,
        publish deferred), is double-scored against live traffic for the
        evaluator's round budget, and only a passing verdict publishes and
        swaps it (``"shadow_pass"``; a failing one discards it with
        ``"shadow_reject"``).  Registry *reload* fallbacks swap directly
        either way — they are operator-published models, not online refits.
    serving_version:
        Registry version of the model currently being served, when known
        (the CLI passes the version it published or loaded).  The reload
        fallback declines when the registry resolves to this same version —
        re-"swapping" the byte-identical model would only reset the drift
        monitor and silently absorb a real drift episode.  Kept up to date
        as the manager publishes refits and reloads newer versions.
    sinks:
        Optional :mod:`repro.serve.sinks` instances receiving every
        :class:`LifecycleEvent`.
    """

    def __init__(
        self,
        policy: RefitPolicy,
        *,
        buffer: WindowBuffer | None = None,
        gate: QualityGate | None = None,
        registry: Any = None,
        model_name: str | None = None,
        min_refit_rows: int = 256,
        publish: bool = True,
        serving_version: int | None = None,
        shadow: ShadowEvaluator | None = None,
        sinks: Sequence[Any] = (),
    ) -> None:
        if not isinstance(policy, RefitPolicy):
            raise TypeError(
                f"policy must be a RefitPolicy, got {type(policy).__name__}"
            )
        if min_refit_rows < 2:
            raise ValueError("min_refit_rows must be at least 2")
        if registry is not None and model_name is None:
            raise ValueError("a registry requires a model_name to publish/reload under")
        if shadow is not None and not isinstance(shadow, ShadowEvaluator):
            raise TypeError(
                f"shadow must be a ShadowEvaluator, got {type(shadow).__name__}"
            )
        self.policy = policy
        self.buffer = buffer if buffer is not None else WindowBuffer()
        self.gate = gate if gate is not None else QualityGate()
        self.registry = registry
        self.model_name = model_name
        self.min_refit_rows = min_refit_rows
        self.publish = publish
        self.serving_version = serving_version
        self.shadow = shadow
        self.sinks = wrap_sinks(sinks)
        self.events: list[LifecycleEvent] = []
        self.n_refits_ = 0
        self.n_reloads_ = 0
        self.n_rejected_ = 0
        self.n_skipped_ = 0
        self.n_shadow_trials_ = 0
        self.n_shadow_pass_ = 0
        self.n_shadow_reject_ = 0
        self._shadow_trial: ShadowTrial | None = None
        #: Telemetry channel for the refit/gate/publish spans.  Left unset
        #: here: the serving service that adopts this manager wires its own
        #: registry/tracer in (``DetectionService``/``ShardedDetectionService``
        #: auto-wire on construction); unwired, the spans are no-ops.
        self.telemetry = None
        self.tracer = None

    # -- stream observation ------------------------------------------------------
    def observe_batch(
        self,
        X: np.ndarray,
        scores: np.ndarray,
        threshold: float,
        drift: DriftReport | None,
    ) -> int:
        """Feed one scored batch's clean rows into the window buffer.

        The batch that *fired* the drift monitor is excluded — it is the
        acute anomaly that triggered detection.  Batches in the cooldown
        that follows are admitted (below the active threshold, as always):
        under a persistent covariate shift every subsequent batch sits in a
        cooldown-or-refire episode, so excluding them would starve the refit
        window forever and deadlock the lifecycle with a permanently stale
        model.  The contamination risk of admitting them is bounded by the
        below-threshold filter (a rolling threshold tracks typical recent
        traffic), the bounded episode the cooldown imposes between refires,
        and the quality gate every candidate must pass.

        Returns the number of rows buffered.
        """
        if scores is None or np.size(scores) == 0:
            return 0
        if drift is not None and drift.drifted:
            return 0
        return self.buffer.add_clean(X, scores, threshold)

    # -- candidate production ----------------------------------------------------
    def _reload_fallback(self) -> tuple[Any | None, str | None]:
        """Resolve the registry fallback; ``(model, None)`` or ``(None, why)``.

        Declines when the registry resolves to :attr:`serving_version`:
        swapping in the byte-identical model would reset the drift monitor
        for nothing and silently absorb the drift signal.
        """
        if self.registry is None or self.model_name is None:
            return None, "no registry configured"
        try:
            info = self.registry.resolve(self.model_name)
        except KeyError:
            return None, f"registry has no published version of {self.model_name!r}"
        if self.serving_version is not None and info.version == self.serving_version:
            return None, (
                f"registry resolves to v{info.version}, which is already "
                "serving (nothing newer to reload)"
            )
        self.serving_version = info.version
        return self.registry.load(self.model_name, info.version), None

    def produce_candidate(self, current: Any) -> tuple[Any | None, LifecycleEvent]:
        """Run refit + gate (+ publish) and return ``(candidate, event)``.

        The caller is responsible for the actual swap — the sequential
        service swaps itself (:meth:`handle_drift`), the sharded service
        swaps every worker at the next round boundary.  ``candidate`` is
        ``None`` when the current model should keep serving; the event's
        ``swapped``/``epoch`` fields are filled in by the caller via
        :meth:`record`.

        With a configured shadow evaluator a gate-passed candidate is *not*
        returned for swapping: it enters a shadow trial instead
        (``"shadow_start"``, publish deferred until the verdict), and while a
        trial is running further drift signals are ``"skipped"`` — two
        candidates shadowing at once would double the scoring cost for an
        unattributable verdict.
        """
        if self._shadow_trial is not None:
            trial = self._shadow_trial
            return None, LifecycleEvent(
                action="skipped", policy=self.policy.name,
                n_window_rows=int(self.buffer.count),
                reason=(
                    f"shadow trial in progress ({trial.n_rounds_}/"
                    f"{trial.config.rounds} rounds observed)"
                ),
            )
        window = self.buffer.values()
        n_rows = int(window.shape[0])
        if n_rows < self.min_refit_rows:
            fallback, declined = self._reload_fallback()
            reason = (
                f"clean window holds {n_rows} rows, below "
                f"min_refit_rows={self.min_refit_rows}"
            )
            if declined is not None:
                reason = f"{reason}; {declined}"
            action = "reload" if fallback is not None else "skipped"
            return fallback, LifecycleEvent(
                action=action, policy=self.policy.name,
                n_window_rows=n_rows, reason=reason,
            )
        timer = Timer()
        with timer, trace_span(
            "refit", metrics=self.telemetry, tracer=self.tracer, rows=n_rows
        ):
            candidate = self.policy.refit(current, window)
        if candidate is None:
            fallback, declined = self._reload_fallback()
            reason = "policy produced no candidate"
            if declined is not None:
                reason = f"{reason}; {declined}"
            action = "reload" if fallback is not None else "skipped"
            return fallback, LifecycleEvent(
                action=action, policy=self.policy.name, n_window_rows=n_rows,
                refit_latency_s=timer.total,
                reason=reason,
            )
        with trace_span(
            "gate", metrics=self.telemetry, tracer=self.tracer, rows=n_rows
        ):
            gate_result = self.gate.evaluate(candidate, window)
        if not gate_result.passed:
            # A gate failure keeps the *current* model serving: reloading the
            # registry version here would mask a bad refit behind churn.
            return None, LifecycleEvent(
                action="rejected", policy=self.policy.name, n_window_rows=n_rows,
                refit_latency_s=timer.total, gate=gate_result,
                reason=gate_result.reason,
            )
        if self.shadow is not None:
            trial = self.shadow.begin(candidate)
            event = LifecycleEvent(
                action="shadow_start", policy=self.policy.name,
                n_window_rows=n_rows, refit_latency_s=timer.total,
                gate=gate_result,
                reason=(
                    f"candidate shadows the live model for "
                    f"{self.shadow.rounds} round(s) before any swap"
                ),
            )
            trial.origin = event
            self._shadow_trial = trial
            return None, event
        version = self._publish_candidate(candidate, n_rows, gate_result, None)
        return candidate, LifecycleEvent(
            action="refit", policy=self.policy.name, n_window_rows=n_rows,
            published_version=version, refit_latency_s=timer.total,
            gate=gate_result,
        )

    def _publish_candidate(
        self,
        candidate: Any,
        n_rows: int,
        gate_result: GateResult | None,
        verdict: ShadowVerdict | None,
    ) -> int | None:
        """Publish an accepted candidate to the registry, when configured."""
        if not (self.publish and self.registry is not None and self.model_name):
            return None
        lifecycle_meta: dict[str, Any] = {
            "policy": self.policy.name,
            "n_window_rows": n_rows,
            "gate": gate_result.stats if gate_result is not None else None,
        }
        if verdict is not None:
            lifecycle_meta["shadow"] = verdict.to_dict()
        with trace_span(
            "registry_publish", metrics=self.telemetry, tracer=self.tracer
        ):
            info = self.registry.publish(
                candidate, self.model_name, metadata={"lifecycle": lifecycle_meta}
            )
        self.serving_version = info.version
        return info.version

    # -- shadow evaluation -------------------------------------------------------
    @property
    def shadow_candidate(self) -> Any | None:
        """The candidate currently under shadow, or ``None``.

        The serving layer double-scores every batch with this model while it
        is set (reusing the micro-batch scorer), feeding the scores back via
        :meth:`observe_shadow` / :meth:`handle_shadow`.
        """
        return self._shadow_trial.candidate if self._shadow_trial is not None else None

    def shadow_pending(self) -> bool:
        """Whether a shadow trial is currently judging a candidate."""
        return self._shadow_trial is not None

    def observe_shadow(
        self,
        live_scores: np.ndarray,
        live_threshold: float,
        candidate_scores: np.ndarray,
    ) -> None:
        """Feed one double-scored batch into the running trial (if any)."""
        if self._shadow_trial is not None:
            self._shadow_trial.observe(live_scores, live_threshold, candidate_scores)

    def shadow_resolution(self) -> tuple[Any | None, LifecycleEvent] | None:
        """Resolve a completed trial into ``(candidate, event)``, else ``None``.

        Mirrors :meth:`produce_candidate`'s contract: the caller applies the
        swap (sequential service in-place, sharded service at the round
        boundary so the verdict stays round-aligned) and fills in
        ``swapped``/``epoch`` via :meth:`record`.  A passing verdict
        publishes the candidate (the publish deferred at ``shadow_start``);
        a failing one discards it unpublished.
        """
        trial = self._shadow_trial
        if trial is None or not trial.complete:
            return None
        self._shadow_trial = None
        verdict = trial.verdict()
        origin = trial.origin if trial.origin is not None else LifecycleEvent(
            action="shadow_start", policy=self.policy.name
        )
        if verdict.passed:
            version = self._publish_candidate(
                trial.candidate, origin.n_window_rows, origin.gate, verdict
            )
            return trial.candidate, replace(
                origin, action="shadow_pass", published_version=version,
                shadow=verdict, reason=None,
            )
        return None, replace(
            origin, action="shadow_reject", shadow=verdict, reason=verdict.reason
        )

    def handle_shadow(
        self,
        service: Any,
        live_scores: np.ndarray,
        live_threshold: float,
        candidate_scores: np.ndarray,
    ) -> LifecycleEvent | None:
        """Sequential-service shadow step: observe, and swap on a verdict.

        Returns the recorded ``shadow_pass``/``shadow_reject`` event when the
        trial resolved on this batch, ``None`` while it is still running.
        """
        self.observe_shadow(live_scores, live_threshold, candidate_scores)
        resolution = self.shadow_resolution()
        if resolution is None:
            return None
        candidate, event = resolution
        if candidate is not None:
            service.reload_detector(candidate, rebootstrap=True)
            event = replace(event, swapped=True, epoch=service.epoch_)
        else:
            event = replace(event, epoch=getattr(service, "epoch_", 0))
        return self.record(event)

    # -- bookkeeping -------------------------------------------------------------
    def record(self, event: LifecycleEvent) -> LifecycleEvent:
        """Append ``event``, update counters, persist lineage, emit to sinks.

        With a registry and model name configured, every event is also
        appended to the model's ``history.jsonl``
        (:meth:`repro.serve.registry.ModelRegistry.append_history`) so the
        swap lineage survives the serving process and can be audited after a
        restart (``repro registry history NAME``).
        """
        self.events.append(event)
        counter = {
            "refit": "n_refits_",
            "reload": "n_reloads_",
            "rejected": "n_rejected_",
            "skipped": "n_skipped_",
            "shadow_start": "n_shadow_trials_",
            "shadow_pass": "n_shadow_pass_",
            "shadow_reject": "n_shadow_reject_",
        }.get(event.action)
        if counter is not None:
            setattr(self, counter, getattr(self, counter) + 1)
        if self.registry is not None and self.model_name is not None:
            append = getattr(self.registry, "append_history", None)
            if append is not None:
                # Lineage is an audit trail, not the serving path: a full
                # disk must not turn a recorded decision into a crashed
                # stream.  Transient I/O errors are retried; a persistent
                # failure is warned about and the in-memory event kept.
                try:
                    call_with_retry(
                        lambda: append(self.model_name, event.to_dict())
                    )
                except OSError as exc:
                    log_event(
                        logging.WARNING,
                        "history_persist_failed",
                        logger_=_logger,
                        model=self.model_name,
                        action=event.action,
                        error=repr(exc),
                    )
                    warnings.warn(
                        f"failed to persist lifecycle lineage for "
                        f"{self.model_name!r}: {exc}; the event is kept "
                        "in memory only",
                        UserWarning,
                        stacklevel=2,
                    )
        emit_resilient(self.sinks, event)
        return event

    # -- sequential swap ---------------------------------------------------------
    def handle_drift(self, service: Any, report: DriftReport) -> LifecycleEvent:
        """Full loop for a sequential service: refit, gate, publish, swap.

        ``service`` must expose ``detector``, ``reload_detector`` and
        ``epoch_`` (duck-typed: :class:`~repro.serve.service.DetectionService`).

        Only a *refit* swap rebootstraps the drift monitor's feature
        reference: the candidate was trained on the post-drift window, so
        the shifted traffic is its normal.  A fallback *reload* may be a
        stale operator-published model — the feature reference is kept so a
        persistent shift keeps re-firing (see
        :meth:`repro.serve.service.DetectionService.reload_detector`).
        """
        candidate, event = self.produce_candidate(service.detector)
        if candidate is not None:
            service.reload_detector(candidate, rebootstrap=event.action == "refit")
            event = replace(event, swapped=True, epoch=service.epoch_)
        else:
            event = replace(event, epoch=getattr(service, "epoch_", 0))
        return self.record(event)

    # Allow passing the manager itself wherever an ``on_drift`` hook fits.
    __call__ = handle_drift
