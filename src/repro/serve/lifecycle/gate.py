"""Quality gate: score-distribution sanity checks before a candidate ships.

An online refit must never make serving *worse* than the model it replaces —
a candidate trained on a polluted or too-small window can emit NaNs, collapse
to a constant score, or flag most of the clean traffic it was just trained
on.  :class:`QualityGate` scores the candidate on the reference window (the
same clean rows it was refit from, i.e. the best available stand-in for
current benign traffic) and rejects it unless the distribution is sane:

* every score is finite,
* the scores are not (numerically) constant — a constant scorer cannot rank,
* the alert rate on the clean window, judged by the candidate's own default
  threshold, stays at or below ``max_clean_alert_rate``.

When the candidate exposes no fitted ``threshold_`` (continual methods
served with rolling thresholds), judging its scores against a quantile of
those *same* scores would be vacuous — the alert rate would equal
``1 - fallback_quantile`` by construction, for any scorer.  The gate
therefore splits the window: the threshold comes from the first half's
scores, the alert rate is measured on the second half.  For a sane scorer
the halves are exchangeable clean traffic and the rate stays near
``1 - fallback_quantile``; a scorer whose scale wanders across the window
(a degraded continual update drifting mid-stream) blows past the cap and is
rejected.

A rejected candidate is simply dropped; the lifecycle manager keeps serving
the current model (or falls back to a registry reload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.metrics.thresholds import quantile_threshold

__all__ = ["GateResult", "QualityGate"]


@dataclass(frozen=True)
class GateResult:
    """Outcome of one :meth:`QualityGate.evaluate` call."""

    passed: bool
    reason: str | None = None
    stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"passed": self.passed, "reason": self.reason, "stats": dict(self.stats)}


@dataclass
class QualityGate:
    """Reject refit candidates whose clean-window score distribution is off.

    Parameters
    ----------
    max_clean_alert_rate:
        Maximum fraction of the reference window the candidate may flag with
        its own default threshold.  A freshly fitted detector with threshold
        quantile ``q`` flags about ``1 - q`` of its training data, so the
        default (0.25) leaves generous headroom while still catching a
        candidate that considers ordinary traffic anomalous.
    min_score_std:
        Minimum standard deviation of the reference-window scores; at or
        below it the candidate is treated as a constant (useless) scorer.
    fallback_quantile:
        Threshold quantile used when the candidate exposes no fitted
        ``threshold_`` (e.g. continual methods served with rolling
        thresholds); computed on the first half of the window and judged on
        the second, so the check stays discriminative (see module
        docstring).
    """

    max_clean_alert_rate: float = 0.25
    min_score_std: float = 1e-12
    fallback_quantile: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.max_clean_alert_rate <= 1.0:
            raise ValueError("max_clean_alert_rate must be in (0, 1]")
        if self.min_score_std < 0.0:
            raise ValueError("min_score_std must be non-negative")
        if not 0.0 < self.fallback_quantile < 1.0:
            raise ValueError("fallback_quantile must be strictly between 0 and 1")

    def evaluate(self, candidate: Any, X_reference: np.ndarray) -> GateResult:
        """Score ``candidate`` on the reference window and judge the result."""
        X_reference = np.asarray(X_reference, dtype=np.float64)
        if X_reference.ndim != 2 or X_reference.shape[0] < 2:
            return GateResult(False, "reference window has fewer than 2 rows")
        scores = np.asarray(
            candidate.score_samples(X_reference), dtype=np.float64
        ).ravel()
        if scores.shape[0] != X_reference.shape[0]:
            return GateResult(
                False,
                f"candidate returned {scores.shape[0]} scores for "
                f"{X_reference.shape[0]} reference rows",
            )
        if not np.isfinite(scores).all():
            n_bad = int(np.count_nonzero(~np.isfinite(scores)))
            return GateResult(
                False, f"{n_bad} non-finite score(s) on the reference window"
            )
        std = float(scores.std())
        if std <= self.min_score_std:
            return GateResult(
                False,
                f"reference-window score std {std:.3g} <= {self.min_score_std:.3g} "
                "(constant scorer)",
                {"score_std": std},
            )
        threshold = getattr(candidate, "threshold_", None)
        if threshold is not None:
            alert_rate = float(np.mean(scores > float(threshold)))
            threshold_source = "candidate"
        else:
            # Holdout split: threshold from the first half, rate on the
            # second — a self-quantile over the full window would pin the
            # rate at 1 - fallback_quantile for *any* scorer.
            half = scores.shape[0] // 2
            threshold = quantile_threshold(scores[:half], self.fallback_quantile)
            alert_rate = float(np.mean(scores[half:] > float(threshold)))
            threshold_source = "holdout_quantile"
        stats = {
            "score_mean": float(scores.mean()),
            "score_std": std,
            "clean_alert_rate": alert_rate,
            "threshold": float(threshold),
            "threshold_source": threshold_source,
        }
        if alert_rate > self.max_clean_alert_rate:
            return GateResult(
                False,
                f"candidate flags {alert_rate:.1%} of the clean window "
                f"(limit {self.max_clean_alert_rate:.1%})",
                stats,
            )
        return GateResult(True, None, stats)
