"""Shadow evaluation: a candidate must agree with live traffic before it swaps.

The quality gate (:mod:`repro.serve.lifecycle.gate`) judges a refit candidate
on the *clean window it was trained from* — a single self-referential check.
Shadow evaluation closes the remaining gap: after the gate passes, the
candidate is scored **alongside** the live model on every subsequent stream
batch for a configured number of rounds, and only earns the swap when the two
models *agree* on live traffic.  The verdict follows the same conflict-aware
spirit as the PCR fusion rules (:mod:`repro.serve.fusion`): disagreement mass
between the committee members — here, live and candidate — is what blocks a
promotion, not a one-shot self-quantile.

Both agreement statistics are standardized (scale-free), so one threshold
works across detector families whose raw score ranges differ by orders of
magnitude:

* **alert-decision overlap** — per batch, the live model flags ``k`` samples
  with the active serving threshold; the candidate's *top-k by score* is
  compared against that set (rate-matched, so a candidate with a differently
  calibrated threshold is judged on *which* samples it ranks anomalous, not
  on its absolute scale).  Aggregated as
  ``sum(|live ∩ candidate-top-k|) / sum(k)`` over the trial.  Batches where
  the live model flags nothing (``k == 0``) or everything (``k == n``) carry
  no rate-matched information — any candidate's top-0/top-n trivially
  matches — and are excluded from the statistic.
* **score-rank correlation** — Spearman correlation between live and
  candidate scores on each shared batch, sample-weighted across rounds
  (a batch needs at least two rows to rank).

A trial that sees fewer than ``min_samples`` rows — or whose batches were
all too degenerate to measure *either* statistic (single-row batches, or
no/all alerts throughout) — is rejected outright: thin evidence must never
promote a model.

The lifecycle manager starts a trial when a gate-passed candidate is
produced (:meth:`~repro.serve.lifecycle.manager.LifecycleManager.produce_candidate`
with a configured :class:`ShadowEvaluator`), feeds it one observation per
scored batch, and resolves it into a ``shadow_pass`` (publish + swap) or
``shadow_reject`` (candidate discarded, current model keeps serving)
:class:`~repro.serve.lifecycle.manager.LifecycleEvent`.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serve.telemetry.log import get_logger, log_event

__all__ = ["ShadowEvaluator", "ShadowTrial", "ShadowVerdict", "describe_agreement"]

_logger = get_logger("shadow")


def describe_agreement(
    agreement: float | None, correlation: float | None
) -> str:
    """``agreement 87%, rank corr 0.89`` with ``n/a`` for unmeasured stats.

    Shared by every surface that prints a verdict (CLI event/history lines,
    the example) so the display stays in one place.
    """
    overlap = f"{agreement:.0%}" if agreement is not None else "n/a"
    corr = f"{correlation:.2f}" if correlation is not None else "n/a"
    return f"agreement {overlap}, rank corr {corr}"


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation via ordinal ranks (stable sort).

    Scores are continuous floats, so ties are measure-zero; ordinal ranks keep
    the denominator strictly positive for any ``n >= 2`` (ranks are a
    permutation of ``0..n-1``), which means the statistic is always finite —
    no NaN can leak into a verdict even for a constant scorer.
    """
    ranks_a = np.empty(a.size)
    ranks_a[np.argsort(a, kind="stable")] = np.arange(a.size)
    ranks_b = np.empty(b.size)
    ranks_b[np.argsort(b, kind="stable")] = np.arange(b.size)
    ranks_a -= ranks_a.mean()
    ranks_b -= ranks_b.mean()
    denom = math.sqrt(float((ranks_a * ranks_a).sum() * (ranks_b * ranks_b).sum()))
    return float((ranks_a * ranks_b).sum() / denom)


@dataclass(frozen=True)
class ShadowVerdict:
    """Outcome of a completed shadow trial.

    Either statistic is ``None`` when the trial could not measure it —
    ``rank_correlation`` needs at least one batch with two or more rows,
    ``alert_agreement`` needs at least one live alert.  An unmeasurable
    statistic defers to the other; a trial where *neither* is measurable is
    rejected (a verdict needs evidence).
    """

    passed: bool
    n_rounds: int
    n_samples: int
    alert_agreement: float | None
    rank_correlation: float | None
    #: Every live alert raised during the trial — including the ones from
    #: vacuous (no-alert / all-alert) batches that the overlap statistic
    #: excludes — so an audited reject is never read as "live was quiet".
    n_live_alerts: int
    reason: str | None = None

    def describe(self) -> str:
        """One-line human-readable agreement summary."""
        return describe_agreement(self.alert_agreement, self.rank_correlation)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "n_rounds": self.n_rounds,
            "n_samples": self.n_samples,
            "alert_agreement": self.alert_agreement,
            "rank_correlation": self.rank_correlation,
            "n_live_alerts": self.n_live_alerts,
            "reason": self.reason,
        }


@dataclass
class ShadowEvaluator:
    """Configuration for shadow trials (one instance gates every candidate).

    Parameters
    ----------
    rounds:
        Number of scored stream batches the candidate shadows before the
        verdict.  In a sharded service rounds are merged batches, so the
        verdict is global (never per shard) and applied at the next round
        boundary.
    min_agreement:
        Minimum rate-matched alert-decision overlap (see module docstring),
        in ``(0, 1]``.  When the live model raised no alert during the whole
        trial the overlap is unmeasurable and the rank correlation decides
        alone (and vice versa — see :class:`ShadowVerdict`).
    min_rank_correlation:
        Minimum sample-weighted Spearman correlation between live and
        candidate scores, in ``[-1, 1]``.
    min_samples:
        Trials that observed fewer rows than this are rejected — a verdict
        needs evidence, and an idle stream must not promote a model.
    """

    rounds: int = 5
    min_agreement: float = 0.6
    min_rank_correlation: float = 0.5
    min_samples: int = 64

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if not 0.0 < self.min_agreement <= 1.0:
            raise ValueError("min_agreement must be in (0, 1]")
        if not -1.0 <= self.min_rank_correlation <= 1.0:
            raise ValueError("min_rank_correlation must be in [-1, 1]")
        if self.min_samples < 2:
            raise ValueError("min_samples must be at least 2")

    def begin(self, candidate: Any) -> "ShadowTrial":
        """Open a trial for ``candidate`` under this configuration."""
        log_event(
            logging.INFO,
            "shadow_trial_started",
            logger_=_logger,
            candidate=type(candidate).__name__,
            rounds=self.rounds,
            min_samples=self.min_samples,
        )
        return ShadowTrial(candidate, self)


class ShadowTrial:
    """Running agreement statistics for one candidate under shadow.

    The trial only keeps O(1) accumulators — per observed batch it folds in
    the Spearman correlation (sample-weighted) and the rate-matched alert
    overlap, never the score arrays themselves, so shadowing adds bounded
    memory on top of the double-scoring cost.

    ``origin`` is set by the lifecycle manager to the ``shadow_start``
    :class:`~repro.serve.lifecycle.manager.LifecycleEvent` so the final
    pass/reject event inherits the refit context (policy, window size, gate).
    """

    def __init__(self, candidate: Any, config: ShadowEvaluator) -> None:
        self.candidate = candidate
        self.config = config
        self.origin: Any = None
        self.n_rounds_ = 0
        self.n_samples_ = 0
        self._corr_weighted = 0.0
        self._corr_weight = 0
        self._alert_intersection = 0
        self._alert_count = 0  # overlap denominator: rate-matched batches only
        self._live_alerts_total = 0  # every live alert, for the audit record

    @property
    def complete(self) -> bool:
        """Whether the configured number of rounds has been observed."""
        return self.n_rounds_ >= self.config.rounds

    def observe(
        self,
        live_scores: np.ndarray,
        live_threshold: float,
        candidate_scores: np.ndarray,
    ) -> None:
        """Fold one double-scored batch into the agreement statistics.

        Empty batches are not rounds (there is nothing to agree on), and a
        completed trial ignores further observations — the sharded service
        merges a whole round before the boundary resolves the verdict, so a
        few extra batches may arrive after the round budget is spent.
        """
        if self.complete:
            return
        live = np.asarray(live_scores, dtype=np.float64).ravel()
        cand = np.asarray(candidate_scores, dtype=np.float64).ravel()
        if live.shape[0] != cand.shape[0]:
            raise ValueError(
                f"{cand.shape[0]} candidate scores for {live.shape[0]} live scores"
            )
        n = int(live.shape[0])
        if n == 0:
            return
        self.n_rounds_ += 1
        self.n_samples_ += n
        if n >= 2:
            self._corr_weighted += _spearman(live, cand) * n
            self._corr_weight += n
        if live_threshold is not None and not math.isnan(live_threshold):
            flagged = np.flatnonzero(live > live_threshold)
            k = int(flagged.size)
            self._live_alerts_total += k
            # k == 0 and k == n are vacuous under rate-matching (any
            # candidate's top-0/top-n trivially equals the live set); only
            # batches with a real decision boundary count.
            if 0 < k < n:
                top_k = np.argpartition(cand, n - k)[n - k :]
                self._alert_intersection += int(
                    np.intersect1d(flagged, top_k, assume_unique=True).size
                )
                self._alert_count += k

    def verdict(self) -> ShadowVerdict:
        """Judge the accumulated agreement against the configured minima.

        A statistic the trial could not measure is not fabricated: a stream
        of single-row batches yields no per-batch rank correlation, and a
        trial without a single live alert yields no overlap — each case
        defers to the other statistic rather than injecting a failing (or
        vacuously passing) number.  When *neither* is measurable the trial
        is rejected outright.
        """
        config = self.config
        agreement = (
            self._alert_intersection / self._alert_count
            if self._alert_count
            else None  # the live model never alerted: nothing to overlap
        )
        correlation = (
            self._corr_weighted / self._corr_weight
            if self._corr_weight
            else None  # no batch carried >= 2 rows: ranks are undefined
        )
        reasons = []
        if self.n_samples_ < config.min_samples:
            reasons.append(
                f"shadow saw only {self.n_samples_} samples "
                f"(min_samples={config.min_samples})"
            )
        if agreement is None and correlation is None:
            reasons.append(
                "no measurable agreement statistic (no batch with a real "
                "alert boundary and none with >= 2 rows)"
            )
        if agreement is not None and agreement < config.min_agreement:
            reasons.append(
                f"alert-decision overlap {agreement:.1%} < "
                f"{config.min_agreement:.1%}"
            )
        if correlation is not None and correlation < config.min_rank_correlation:
            reasons.append(
                f"score-rank correlation {correlation:.2f} < "
                f"{config.min_rank_correlation:.2f}"
            )
        verdict = ShadowVerdict(
            passed=not reasons,
            n_rounds=self.n_rounds_,
            n_samples=self.n_samples_,
            alert_agreement=None if agreement is None else float(agreement),
            rank_correlation=None if correlation is None else float(correlation),
            n_live_alerts=self._live_alerts_total,
            reason="; ".join(reasons) or None,
        )
        log_event(
            logging.INFO,
            "shadow_verdict",
            logger_=_logger,
            passed=verdict.passed,
            n_rounds=verdict.n_rounds,
            n_samples=verdict.n_samples,
            agreement=verdict.describe(),
            reason=verdict.reason,
        )
        return verdict
