"""Bounded reservoir of recent clean-looking stream rows (refit data source).

The lifecycle layer refits models *from the stream itself*: after drift is
flagged, the candidate model is trained on the most recent window of rows the
service judged non-anomalous.  :class:`WindowBuffer` retains exactly that
window with bounded memory — a ring over the last ``capacity`` rows that were

* **below the active alert threshold** when they were scored (an anomaly the
  service flagged must never become refit data), and
* **not part of the batch that fired the drift monitor** (the acute
  transition is skipped wholesale by the caller; the cooldown batches that
  follow are admitted so a persistent shift can still fill the window — see
  :meth:`~repro.serve.lifecycle.manager.LifecycleManager.observe_batch`).

With a ``"rolling"`` service threshold the buffer therefore tracks the
*typical recent traffic* even while the distribution drifts — which is what
makes refit-from-stream recover from covariate shift: by the time the drift
monitor fires, the window is dominated by post-shift benign rows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.serve.drift import _RingBuffer

__all__ = ["WindowBuffer"]


class WindowBuffer:
    """Keep the most recent ``capacity`` clean rows of a stream.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained; older rows are overwritten ring-wise.

    Attributes
    ----------
    n_added_:
        Total rows ever accepted (monotonic; ``count`` saturates at capacity).
    n_rejected_:
        Total rows offered via :meth:`add_clean` but filtered out as
        above-threshold.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._ring: _RingBuffer | None = None
        self.n_added_ = 0
        self.n_rejected_ = 0

    @property
    def count(self) -> int:
        """Rows currently held (at most ``capacity``)."""
        return self._ring.count if self._ring is not None else 0

    @property
    def n_features(self) -> int | None:
        """Feature width of the buffered rows (``None`` before the first add)."""
        if self._ring is None:
            return None
        return int(self._ring.values().shape[1])

    def add(self, X: np.ndarray) -> int:
        """Fold rows into the ring unconditionally; returns the rows added."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"buffered rows must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            return 0
        if self._ring is None:
            self._ring = _RingBuffer(self.capacity, X.shape[1])
        elif X.shape[1] != self._ring.values().shape[1]:
            raise ValueError(
                f"buffered rows have {X.shape[1]} features, "
                f"buffer started with {self._ring.values().shape[1]}"
            )
        self._ring.extend(X)
        self.n_added_ += int(X.shape[0])
        return int(X.shape[0])

    def add_clean(
        self, X: np.ndarray, scores: np.ndarray, threshold: float
    ) -> int:
        """Fold in only the rows scored at or below ``threshold``.

        A ``nan`` threshold (the service's marker for an empty batch) accepts
        nothing.  Returns the number of rows that entered the buffer.
        """
        if threshold is None or math.isnan(threshold):
            return 0
        scores = np.asarray(scores, dtype=np.float64).ravel()
        X = np.asarray(X, dtype=np.float64)
        if scores.shape[0] != X.shape[0]:
            raise ValueError(
                f"{scores.shape[0]} scores for {X.shape[0]} rows"
            )
        mask = scores <= threshold
        self.n_rejected_ += int(X.shape[0] - np.count_nonzero(mask))
        if not mask.any():
            return 0
        return self.add(X[mask])

    def values(self) -> np.ndarray:
        """The buffered rows as one ``(count, n_features)`` array.

        Row order within the window is not meaningful (ring storage); refit
        consumers treat the window as an i.i.d. sample of recent clean
        traffic.  Returns an empty ``(0, 0)`` array before the first add.
        """
        if self._ring is None:
            return np.empty((0, 0))
        return self._ring.values().copy()

    def clear(self) -> None:
        """Drop every buffered row (the feature-width contract is kept)."""
        if self._ring is not None:
            width = self._ring.values().shape[1]
            self._ring = _RingBuffer(self.capacity, width)
