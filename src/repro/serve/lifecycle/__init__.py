"""Model lifecycle management during serving: online refit and hot-swap.

PR 2's serving stack could only *reload an already-published snapshot* when
drift fired; this package closes the continual-adaptation loop the paper
claims: detect drift, refit on a clean recent window drawn from the stream
itself, gate the candidate's quality, republish to the registry, and swap the
served model — coordinated across every worker of a sharded deployment.

* :mod:`repro.serve.lifecycle.buffer` — :class:`WindowBuffer`, a bounded
  reservoir of recent below-threshold rows (refit data with bounded memory),
* :mod:`repro.serve.lifecycle.policy` — :class:`FullRefit` /
  :class:`ContinualRefit` / :class:`NoRefit` refit strategies,
* :mod:`repro.serve.lifecycle.gate` — :class:`QualityGate`, the
  score-distribution sanity check a candidate must pass before publishing,
* :mod:`repro.serve.lifecycle.shadow` — :class:`ShadowEvaluator`, the
  opt-in live-traffic trial: gate-passed candidates are double-scored
  alongside the live model for a round budget and only swap on agreement,
* :mod:`repro.serve.lifecycle.manager` — :class:`LifecycleManager`, which
  composes buffer + policy + gate + shadow + registry and drives the swap.

Wire a manager into :class:`~repro.serve.service.DetectionService` via its
``lifecycle=`` parameter, or into
:class:`~repro.serve.parallel.ShardedDetectionService` (``lifecycle=`` +
``quorum=``) for the epoch-tagged coordinated swap across workers.
"""

from repro.serve.lifecycle.buffer import WindowBuffer
from repro.serve.lifecycle.gate import GateResult, QualityGate
from repro.serve.lifecycle.manager import LifecycleEvent, LifecycleManager
from repro.serve.lifecycle.policy import (
    ContinualRefit,
    FullRefit,
    NoRefit,
    RefitPolicy,
    clone_model,
)
from repro.serve.lifecycle.shadow import ShadowEvaluator, ShadowTrial, ShadowVerdict

__all__ = [
    "ContinualRefit",
    "FullRefit",
    "GateResult",
    "LifecycleEvent",
    "LifecycleManager",
    "NoRefit",
    "QualityGate",
    "RefitPolicy",
    "ShadowEvaluator",
    "ShadowTrial",
    "ShadowVerdict",
    "WindowBuffer",
    "clone_model",
]
