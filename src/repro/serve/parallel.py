"""Sharded, multi-worker stream serving on top of :class:`DetectionService`.

:class:`ShardedDetectionService` fans one stream of flow batches out to ``N``
workers, each running its own :class:`~repro.serve.service.DetectionService`
over a deterministic shard, and merges the per-shard outputs back into global
stream order.  The decomposition mirrors the tree/row-block parallelism of
:mod:`repro.ml` one layer up: batches are independent work items, so sharding
them changes *where* a batch is scored, never *what* its scores are.

Determinism contract
--------------------
* **Shard assignment is round-robin by global batch index** — batch ``g``
  always goes to worker ``g % n_workers``, independent of timing, so a rerun
  shards identically.
* **Scores are bit-identical to the sequential service**: each batch is
  scored by the same micro-batched code path against the same model.
* **Alerts and drift events are re-serialized into global stream order**
  before they reach the sinks, carrying global batch/sample indices; with a
  fixed or ``"auto"`` threshold the merged alert stream is *identical* to the
  sequential service's.
* **Rolling thresholds are per shard**: each worker's rolling window sees
  only its own shard (1 of every ``n_workers`` batches), so ``"rolling"``
  thresholds track the same distribution but are not batch-for-batch
  identical to a single sequential window.  Use a fixed or ``"auto"``
  threshold when exact sequential equivalence matters.

Worker modes
------------
``mode="thread"`` shares the fitted detector across worker threads
(scoring is read-only; NumPy and the native kernels release the GIL, so
native-kernel detectors scale well) and consumes the stream lazily in
bounded *rounds*.  ``mode="process"`` snapshots the detector once
(:func:`~repro.serve.snapshot.save_snapshot`), loads it in each worker
process, and materializes the stream up front — higher overhead and memory,
but unaffected by the GIL for pure-Python scoring.  ``mode="auto"`` picks
threads when the native kernels are available and processes otherwise.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.ml import native
from repro.serve.drift import DriftMonitor
from repro.serve.service import (
    Alert,
    BatchResult,
    DetectionService,
    DriftEvent,
    ServiceReport,
    _validate_stream_batch,
)
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.utils.timing import Timer

__all__ = ["ShardedDetectionService"]


def _score_shard_in_subprocess(
    snapshot_path: str,
    service_kwargs: dict,
    drift_monitor_factory: Callable[[], DriftMonitor] | None,
    items: list[tuple[int, np.ndarray]],
) -> list[tuple[int, BatchResult]]:
    """Worker-process entry point: load the snapshot, score one whole shard.

    Module-level so it pickles; returns ``(global_batch_index, BatchResult)``
    pairs (all dataclasses of arrays/floats — cheap to pickle back).
    """
    detector = load_snapshot(snapshot_path)
    monitor = drift_monitor_factory() if drift_monitor_factory is not None else None
    service = DetectionService(detector, drift_monitor=monitor, **service_kwargs)
    return [(g, service.process_batch(X)) for g, X in items]


class ShardedDetectionService:
    """Serve a stream through ``n_workers`` sharded detection services.

    Parameters
    ----------
    detector:
        Fitted object exposing ``score_samples``; shared across threads or
        snapshotted into worker processes depending on ``mode``.
    n_workers:
        Number of shards/workers (``1`` degenerates to a sequential service
        with merger overhead).
    mode:
        ``"thread"``, ``"process"`` or ``"auto"`` (threads when the native
        kernels are available, processes otherwise).
    threshold, rolling_window, rolling_quantile, min_rolling, micro_batch_size:
        Forwarded to every shard's :class:`DetectionService` (see there);
        rolling thresholds are evaluated per shard.
    drift_monitor_factory:
        Zero-argument callable building one fresh
        :class:`~repro.serve.drift.DriftMonitor` per shard (must be picklable
        in process mode, e.g. a module-level function or
        :func:`functools.partial` over one).  Drift events are merged into
        global batch order.  A shared mutable monitor instance cannot be
        accepted — shards would race on its windows — hence a factory.
    sinks:
        Alert sinks fed by the *merger* (not the shards) so events arrive in
        global stream order exactly once.
    batches_per_round:
        Thread mode consumes the stream in rounds of
        ``n_workers * batches_per_round`` batches, bounding buffered memory
        while keeping every worker busy.
    """

    def __init__(
        self,
        detector: Any,
        *,
        n_workers: int = 2,
        mode: str = "auto",
        threshold: float | str = "auto",
        rolling_window: int = 4096,
        rolling_quantile: float = 0.95,
        min_rolling: int = 64,
        micro_batch_size: int = 1024,
        drift_monitor_factory: Callable[[], DriftMonitor] | None = None,
        sinks: Sequence[Any] = (),
        batches_per_round: int = 4,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if mode not in ("auto", "thread", "process"):
            raise ValueError("mode must be 'auto', 'thread' or 'process'")
        if batches_per_round < 1:
            raise ValueError("batches_per_round must be at least 1")
        if isinstance(drift_monitor_factory, DriftMonitor):
            raise TypeError(
                "pass a factory building one DriftMonitor per shard, not a "
                "monitor instance (shards would race on its windows)"
            )
        self.detector = detector
        self.n_workers = n_workers
        self.mode = mode
        self.drift_monitor_factory = drift_monitor_factory
        self.sinks = list(sinks)
        self.batches_per_round = batches_per_round
        self._service_kwargs = dict(
            threshold=threshold,
            rolling_window=rolling_window,
            rolling_quantile=rolling_quantile,
            min_rolling=min_rolling,
            micro_batch_size=micro_batch_size,
        )
        # Validate the shared configuration eagerly (same errors, same
        # messages as the sequential service) instead of inside a worker.
        DetectionService(detector, **self._service_kwargs)

        self.timer = Timer()
        self.n_features_: int | None = None
        self.n_batches_ = 0
        self.n_samples_ = 0
        self.n_alerts_ = 0
        self.n_drift_events_ = 0
        self.drift_batches_: list[int] = []
        self._latency_total = 0.0
        self._shard_services: list[DetectionService] | None = None

    # -- configuration -----------------------------------------------------------
    def resolved_mode(self) -> str:
        """The worker mode actually used (``"auto"`` resolved)."""
        if self.mode != "auto":
            return self.mode
        return "thread" if native.available() else "process"

    # -- stream plumbing ---------------------------------------------------------
    def _validate_width(self, X: Any) -> np.ndarray:
        """Parent-side feature contract, identical to the sequential service.

        Each shard only sees every ``n_workers``-th batch, so a mid-stream
        width change could otherwise slip past the shard that never receives
        it; validating at dispatch keeps the sequential error behavior.
        """
        X, self.n_features_ = _validate_stream_batch(X, self.n_features_)
        return X

    def _indexed_batches(self, stream: Iterable[Any]) -> Iterator[tuple[int, np.ndarray]]:
        for g, item in enumerate(stream, start=self.n_batches_):
            yield g, self._validate_width(DetectionService._batch_features(item))

    # -- merging -----------------------------------------------------------------
    def _emit(self, event: Any) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def _merge_in_order(
        self, per_batch: dict[int, BatchResult]
    ) -> Iterator[BatchResult]:
        """Re-serialize shard results into global order; emit + count."""
        for g in sorted(per_batch):
            shard_result = per_batch[g]
            offset = self.n_samples_
            alerts = tuple(
                Alert(
                    batch_index=g,
                    sample_index=offset + int(i),
                    score=float(shard_result.scores[i]),
                    threshold=shard_result.threshold,
                )
                for i in np.flatnonzero(shard_result.predictions)
            )
            for alert in alerts:
                self._emit(alert)
            drift = shard_result.drift
            if drift is not None and drift.drifted:
                self.n_drift_events_ += 1
                self.drift_batches_.append(g)
                self._emit(DriftEvent(batch_index=g, report=drift))
            self.n_batches_ += 1
            self.n_samples_ += shard_result.n_samples
            self.n_alerts_ += len(alerts)
            self._latency_total += shard_result.latency_s
            yield BatchResult(
                index=g,
                scores=shard_result.scores,
                predictions=shard_result.predictions,
                threshold=shard_result.threshold,
                alerts=alerts,
                drift=drift,
                latency_s=shard_result.latency_s,
            )

    # -- thread mode -------------------------------------------------------------
    def _make_shard_service(self) -> DetectionService:
        monitor = (
            self.drift_monitor_factory()
            if self.drift_monitor_factory is not None
            else None
        )
        return DetectionService(
            self.detector, drift_monitor=monitor, **self._service_kwargs
        )

    @staticmethod
    def _score_shard(
        service: DetectionService, items: list[tuple[int, np.ndarray]]
    ) -> list[tuple[int, BatchResult]]:
        return [(g, service.process_batch(X)) for g, X in items]

    def _process_threaded(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        if self._shard_services is None:
            self._shard_services = [
                self._make_shard_service() for _ in range(self.n_workers)
            ]
        round_size = self.n_workers * self.batches_per_round
        batches = self._indexed_batches(stream)
        with ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-shard"
        ) as pool:
            while True:
                round_items: list[tuple[int, np.ndarray]] = []
                for item in batches:
                    round_items.append(item)
                    if len(round_items) >= round_size:
                        break
                if not round_items:
                    return
                shards: list[list[tuple[int, np.ndarray]]] = [
                    [] for _ in range(self.n_workers)
                ]
                for g, X in round_items:
                    shards[g % self.n_workers].append((g, X))
                futures = [
                    pool.submit(self._score_shard, self._shard_services[s], items)
                    for s, items in enumerate(shards)
                    if items
                ]
                per_batch: dict[int, BatchResult] = {}
                for future in futures:
                    per_batch.update(dict(future.result()))
                yield from self._merge_in_order(per_batch)

    # -- process mode ------------------------------------------------------------
    def _process_multiprocess(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        shards: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(self.n_workers)
        ]
        for g, X in self._indexed_batches(stream):
            shards[g % self.n_workers].append((g, X))
        if not any(shards):
            return
        per_batch: dict[int, BatchResult] = {}
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            snapshot_path = str(Path(tmp) / "model")
            save_snapshot(self.detector, snapshot_path)
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [
                    pool.submit(
                        _score_shard_in_subprocess,
                        snapshot_path,
                        self._service_kwargs,
                        self.drift_monitor_factory,
                        items,
                    )
                    for items in shards
                    if items
                ]
                for future in futures:
                    per_batch.update(dict(future.result()))
        yield from self._merge_in_order(per_batch)

    # -- public API --------------------------------------------------------------
    def process(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        """Yield merged :class:`BatchResult`\\ s in global stream order.

        Thread mode yields round by round (bounded buffering); process mode
        yields only after the whole stream was scored.
        """
        with self.timer:
            if self.resolved_mode() == "thread":
                yield from self._process_threaded(stream)
            else:
                yield from self._process_multiprocess(stream)

    def run(self, stream: Iterable[Any], *, close_sinks: bool = True) -> ServiceReport:
        """Consume the whole stream and return the merged aggregate report."""
        try:
            for _ in self.process(stream):
                pass
        finally:
            if close_sinks:
                for sink in self.sinks:
                    sink.close()
        return self.report()

    def report(self) -> ServiceReport:
        """Merged counters so far.

        ``total_time_s`` and the throughput are *wall-clock* over the whole
        fan-out (that is the operator-visible rate); ``mean_batch_latency_s``
        averages the per-batch scoring latencies measured inside the workers.
        """
        rate_timer = Timer(total=self.timer.total, n_calls=1)
        throughput = rate_timer.throughput(self.n_samples_) if self.n_samples_ else 0.0
        return ServiceReport(
            n_batches=self.n_batches_,
            n_samples=self.n_samples_,
            n_alerts=self.n_alerts_,
            n_drift_events=self.n_drift_events_,
            drift_batches=list(self.drift_batches_),
            total_time_s=self.timer.total,
            throughput_samples_per_sec=throughput,
            mean_batch_latency_s=(
                self._latency_total / self.n_batches_ if self.n_batches_ else 0.0
            ),
        )
