"""Sharded, multi-worker stream serving on top of :class:`DetectionService`.

:class:`ShardedDetectionService` fans one stream of flow batches out to ``N``
workers, each running its own :class:`~repro.serve.service.DetectionService`
over a deterministic shard, and merges the per-shard outputs back into global
stream order.  The decomposition mirrors the tree/row-block parallelism of
:mod:`repro.ml` one layer up: batches are independent work items, so sharding
them changes *where* a batch is scored, never *what* its scores are.

Determinism contract
--------------------
* **Shard assignment is deterministic** — round-robin by global batch index
  (batch ``g`` goes to worker ``g % n_workers``) by default, or the opt-in
  ``shard_mode="greedy"`` least-loaded assignment, which depends only on the
  batch sizes seen so far, never on timing — either way a rerun shards
  identically.
* **Scores are bit-identical to the sequential service**: each batch is
  scored by the same micro-batched code path against the same model.
* **Alerts and drift events are re-serialized into global stream order**
  before they reach the sinks, carrying global batch/sample indices; with a
  fixed or ``"auto"`` threshold the merged alert stream is *identical* to the
  sequential service's.
* **Rolling thresholds are per shard**: each worker's rolling window sees
  only its own shard, so ``"rolling"`` thresholds track the same distribution
  but are not batch-for-batch identical to a single sequential window.  Use a
  fixed or ``"auto"`` threshold when exact sequential equivalence matters.

Coordinated hot-swap (epoch-tagged)
-----------------------------------
With a :class:`~repro.serve.lifecycle.LifecycleManager` (``lifecycle=``), the
sharded service closes the drift loop that per-shard monitors alone cannot:
each worker's monitor only *votes*.  The parent collects votes (one per
shard) while merging; when at least ``quorum * n_workers`` distinct shards
have voted since the last swap, the parent — at the next **round boundary**,
with every worker idle — refits once from its clean-window buffer, gates,
publishes, and swaps all workers to the new model.  Swaps only ever happen
between rounds, so within any round every shard scores with the same model
epoch (:attr:`BatchResult.model_epoch`), in thread *and* process modes.

When the lifecycle carries a shadow evaluator
(:class:`~repro.serve.lifecycle.shadow.ShadowEvaluator`), a vote-coordinated
refit does not swap immediately: every worker double-scores its shard's
batches with the candidate (threads share the object; processes load a
per-trial snapshot, cached like the served model), the parent merges the
candidate scores back into **global order** and feeds one trial, and the
verdict is applied at a round boundary — the ``shadow_pass`` swap (or
``shadow_reject`` discard) is global and round-aligned in both modes.

Fault tolerance
---------------
Process-mode workers are *supervised* (:mod:`repro.serve.faults`): a dead or
hung worker tears down the pool, a fresh one is spawned, and only the failed
shards' slices are replayed — idempotently, because per-shard state ships per
round and advances only on success.  Each recovery emits a ``worker_restart``
event; past the ``max_worker_restarts`` budget the service degrades to
in-parent sequential scoring instead of dying.  Rows quarantined by a shard
(non-finite features) are announced by the parent in global order, and all
sinks are wrapped so one raising sink is disabled rather than fatal.

Worker modes
------------
``mode="thread"`` shares the fitted detector across worker threads
(scoring is read-only; NumPy and the native kernels release the GIL, so
native-kernel detectors scale well).  ``mode="process"`` snapshots the
detector (:func:`~repro.serve.snapshot.save_snapshot`) and loads it inside
each worker process (cached per epoch), shipping each shard's rolling/drift
state to and from the workers every round — higher overhead, but unaffected
by the GIL for pure-Python scoring.  Both modes consume the stream lazily in
bounded *rounds* of ``n_workers * batches_per_round`` batches.  ``mode="auto"``
picks threads when the native kernels are available and processes otherwise.
"""

from __future__ import annotations

import logging
import math
import tempfile
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.ml import native
from repro.serve.drift import DriftMonitor, _RingBuffer
from repro.serve.faults import (
    QuarantinedRows,
    WorkerRestart,
    emit_resilient,
    wrap_sinks,
)
from repro.serve.service import (
    Alert,
    BatchResult,
    DetectionService,
    DriftEvent,
    ServiceReport,
    _validate_stream_batch,
)
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.serve.telemetry.context import TraceContext
from repro.serve.telemetry.log import get_logger, log_event
from repro.serve.telemetry.metrics import MetricsEvent, MetricsRegistry
from repro.serve.telemetry.tracing import SpanBuffer, SpanTracer, trace_span
from repro.utils.timing import Timer

_logger = get_logger("parallel")

__all__ = ["ShardedDetectionService"]

_SHARD_MODES = ("round_robin", "greedy")


@dataclass
class _ShardState:
    """Per-shard serving state shipped to/from process workers every round.

    The monitor carries drift windows, references and cooldown; ``rolling``
    is the shard's rolling-threshold window (``None`` = start fresh, which is
    also how a coordinated swap resets it); ``metrics`` is the shard's
    :class:`~repro.serve.telemetry.MetricsRegistry` (``None`` = start fresh),
    shipped back every round so the parent can fold all shards' metrics into
    one global snapshot.  All three pickle cheaply.
    """

    monitor: DriftMonitor | None = None
    rolling: _RingBuffer | None = None
    metrics: MetricsRegistry | None = None
    #: Shard-local batch/sample counters, shipped so a process worker's
    #: rebuilt service resumes exactly where the shard left off — keeping
    #: span ``batch_index`` values identical between thread mode (long-lived
    #: shard services) and process mode (service rebuilt every round).
    n_batches: int = 0
    n_samples: int = 0


#: Per-process model cache: (snapshot_path, model).  A coordinated swap
#: publishes a *new* snapshot path, so comparing paths doubles as the epoch
#: check; only the latest model is retained per worker process.
_WORKER_MODEL: tuple[str, Any] | None = None

#: Per-process shadow-candidate cache, same path-keyed scheme: each shadow
#: trial publishes one candidate snapshot, so only the current trial's model
#: is retained per worker process.
_WORKER_SHADOW: tuple[str, Any] | None = None


def _score_round_in_subprocess(
    snapshot_path: str,
    epoch: int,
    service_kwargs: dict,
    state: _ShardState,
    items: list[tuple[int, np.ndarray]],
    shadow_snapshot_path: str | None = None,
    round_index: int = 0,
    shard: int = 0,
    attempt: int = 0,
    injector: Any = None,
    trace_ctx: TraceContext | None = None,
) -> tuple[
    list[tuple[int, BatchResult, np.ndarray | None]],
    _ShardState,
    list[dict],
]:
    """Worker-process entry point: score one shard's slice of one round.

    Module-level so it pickles.  Loads the snapshot once per (process, path)
    and rebuilds the shard's :class:`DetectionService` around the shipped
    state; returns the results plus the updated state so the next round
    continues where this one left off.  With a pending shadow trial the
    candidate snapshot is loaded the same way and every batch is
    double-scored; the candidate scores ride back with the results so the
    *parent* can merge them in global order and judge the trial.

    Because the shard state only updates on a *returned* result, the whole
    call is idempotent: the supervisor can replay a failed round against the
    unchanged shipped state with no double-counting.  ``round_index`` /
    ``shard`` / ``attempt`` exist for the optional
    :class:`~repro.serve.faults.FaultInjector`, which may kill or hang this
    worker deterministically (first attempt only, so replays succeed).

    With a ``trace_ctx`` (the parent's per-shard fork of the round's
    ``round_submit`` context, shipped alongside the scalar state) the shard's
    spans are recorded into a :class:`SpanBuffer` and returned as the third
    element, so the parent can flush them to the real tracer in shard order.
    The context ships fresh per submission, so a replayed round allocates the
    *same* span ids as the failed attempt — spans are idempotent like the
    results — and replayed spans carry ``"retry": attempt`` so a trace reader
    can tell a recovery from a duplicate.
    """
    global _WORKER_MODEL, _WORKER_SHADOW
    if injector is not None:
        injector.maybe_fail_worker(round_index, shard, attempt)
    if _WORKER_MODEL is None or _WORKER_MODEL[0] != snapshot_path:
        _WORKER_MODEL = (snapshot_path, load_snapshot(snapshot_path))
    shadow_model = None
    if shadow_snapshot_path is None:
        # The trial resolved (or none is running): drop the dead candidate
        # instead of pinning a full model per worker for the stream's rest.
        _WORKER_SHADOW = None
    else:
        if _WORKER_SHADOW is None or _WORKER_SHADOW[0] != shadow_snapshot_path:
            _WORKER_SHADOW = (shadow_snapshot_path, load_snapshot(shadow_snapshot_path))
        shadow_model = _WORKER_SHADOW[1]
    service = DetectionService(
        _WORKER_MODEL[1],
        drift_monitor=state.monitor,
        telemetry=state.metrics,
        **service_kwargs,
    )
    service.epoch_ = epoch
    service.n_batches_ = state.n_batches
    service.n_samples_ = state.n_samples
    if state.rolling is not None:
        service._rolling = state.rolling
    buffer: SpanBuffer | None = None
    if trace_ctx is not None:
        buffer = SpanBuffer()
        service.tracer = buffer
        service.trace_context = trace_ctx
    results = []
    for g, X in items:
        result = service.process_batch(X)
        shadow_scores = None
        if shadow_model is not None and X.shape[0]:
            with trace_span(
                "shadow_score",
                metrics=service.telemetry,
                tracer=buffer,
                rows=int(X.shape[0]),
                batch_index=g,
                context=trace_ctx,
            ):
                shadow_scores = service._score_micro_batched(X, shadow_model)
        results.append((g, result, shadow_scores))
    spans: list[dict] = []
    if buffer is not None:
        spans = buffer.spans
        if attempt:
            for span in spans:
                span["retry"] = attempt
    # The rolling window only exists for threshold="rolling"; shipping the
    # (otherwise never-read) backing array back and forth every round would
    # pickle rolling_window floats per shard for nothing.
    rolling = (
        service._rolling if service_kwargs.get("threshold") == "rolling" else None
    )
    state = _ShardState(
        monitor=service.drift_monitor,
        rolling=rolling,
        metrics=service.telemetry,
        n_batches=service.n_batches_,
        n_samples=service.n_samples_,
    )
    return results, state, spans


class ShardedDetectionService:
    """Serve a stream through ``n_workers`` sharded detection services.

    Parameters
    ----------
    detector:
        Fitted object exposing ``score_samples``; shared across threads or
        snapshotted into worker processes depending on ``mode``.
    n_workers:
        Number of shards/workers (``1`` degenerates to a sequential service
        with merger overhead).
    mode:
        ``"thread"``, ``"process"`` or ``"auto"`` (threads when the native
        kernels are available, processes otherwise).
    shard_mode:
        ``"round_robin"`` (default) assigns batch ``g`` to worker
        ``g % n_workers``; the opt-in ``"greedy"`` assigns each batch to the
        worker with the fewest rows dispatched so far (ties break to the
        lowest index) — better balance for heterogeneous batch sizes, still
        fully deterministic, and the global-order merge is unchanged.
    threshold, rolling_window, rolling_quantile, min_rolling, micro_batch_size:
        Forwarded to every shard's :class:`DetectionService` (see there);
        rolling thresholds are evaluated per shard.
    drift_monitor_factory:
        Zero-argument callable building one fresh
        :class:`~repro.serve.drift.DriftMonitor` per shard.  Drift events are
        merged into global batch order; with a lifecycle they double as the
        shards' swap votes.  A shared mutable monitor instance cannot be
        accepted — shards would race on its windows — hence a factory.
    lifecycle:
        Optional :class:`~repro.serve.lifecycle.LifecycleManager`.  The
        *parent* owns it: merged clean rows feed its window buffer, and when
        the shard vote reaches ``quorum`` the parent refits once, publishes,
        and swaps every worker at the next round boundary (see module
        docstring).
    quorum:
        Fraction of workers (in ``(0, 1]``) whose monitors must have voted
        drift since the last swap before the parent coordinates one.
    sinks:
        Alert sinks fed by the *merger* (not the shards) so events arrive in
        global stream order exactly once.
    batches_per_round:
        Both modes consume the stream in rounds of
        ``n_workers * batches_per_round`` batches, bounding buffered memory
        while keeping every worker busy; coordinated swaps happen only at
        round boundaries.
    max_worker_restarts:
        (Process mode.)  Budget of pool respawns after a worker dies
        (``BrokenProcessPool``/pipe error) or exceeds ``worker_timeout_s``.
        Each recovery replays only the failed shards' slices — per-shard
        state ships per round and updates only on success, so a replay is
        idempotent — and emits a ``worker_restart`` event.  Once the budget
        is spent the service *degrades to in-parent sequential scoring*
        (a final ``worker_restart`` event with ``degraded=True``) instead of
        dying mid-stream.
    worker_timeout_s:
        (Process mode.)  Upper bound in seconds on waiting for one shard's
        round result; a worker exceeding it is treated as hung and its pool
        torn down + respawned under the same restart budget.  ``None``
        (default) waits forever.
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector` shipped to the
        process workers for deterministic chaos testing (see
        ``serve --inject-faults``).  Never set in production.
    telemetry, tracer, metrics_every:
        Parent-side telemetry (see :class:`DetectionService`).  Each shard
        records into its *own* registry (pipeline + stage metrics, exactly
        like a sequential service); the parent records only parent-owned
        work (``round_submit``/``round_merge`` spans, sink emits, worker
        restarts).  ``metrics_snapshot()`` folds parent + shards in shard
        order into one global snapshot whose counters match a sequential
        run on the same stream; ``metrics_every`` emits that folded
        snapshot as a :class:`~repro.serve.telemetry.MetricsEvent` every N
        merged batches.
    """

    def __init__(
        self,
        detector: Any,
        *,
        n_workers: int = 2,
        mode: str = "auto",
        shard_mode: str = "round_robin",
        threshold: float | str = "auto",
        rolling_window: int = 4096,
        rolling_quantile: float = 0.95,
        min_rolling: int = 64,
        micro_batch_size: int = 1024,
        drift_monitor_factory: Callable[[], DriftMonitor] | None = None,
        lifecycle: Any = None,
        quorum: float = 0.5,
        sinks: Sequence[Any] = (),
        batches_per_round: int = 4,
        max_worker_restarts: int = 3,
        worker_timeout_s: float | None = None,
        fault_injector: Any = None,
        telemetry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        trace_context: TraceContext | None = None,
        metrics_every: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if metrics_every is not None and metrics_every < 1:
            raise ValueError("metrics_every must be at least 1 (or None)")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive")
        if mode not in ("auto", "thread", "process"):
            raise ValueError("mode must be 'auto', 'thread' or 'process'")
        if shard_mode not in _SHARD_MODES:
            raise ValueError(f"shard_mode must be one of {_SHARD_MODES}")
        if not 0.0 < quorum <= 1.0:
            raise ValueError("quorum must be in (0, 1]")
        if batches_per_round < 1:
            raise ValueError("batches_per_round must be at least 1")
        if isinstance(drift_monitor_factory, DriftMonitor):
            raise TypeError(
                "pass a factory building one DriftMonitor per shard, not a "
                "monitor instance (shards would race on its windows)"
            )
        if lifecycle is not None and drift_monitor_factory is None:
            raise ValueError(
                "a lifecycle needs drift votes: pass drift_monitor_factory "
                "so each shard can flag drift"
            )
        self.detector = detector
        self.n_workers = n_workers
        self.mode = mode
        self.shard_mode = shard_mode
        self.drift_monitor_factory = drift_monitor_factory
        self.lifecycle = lifecycle
        self.quorum = quorum
        self.sinks = wrap_sinks(sinks)
        self.batches_per_round = batches_per_round
        self.max_worker_restarts = max_worker_restarts
        self.worker_timeout_s = worker_timeout_s
        self.fault_injector = fault_injector
        self.telemetry = MetricsRegistry() if telemetry is None else telemetry
        self.tracer = tracer
        if trace_context is None and tracer is not None:
            trace_context = TraceContext.root()
        self.trace_context = trace_context
        # Liveness/profiling hooks (see DetectionService): the watchdog beats
        # and the profiler samples once per *merged* batch, parent-side.
        self.heartbeat: Any = None
        self.profiler: Any = None
        self.metrics_every = metrics_every
        self._m_worker_restarts = self.telemetry.counter(
            "pipeline.worker_restarts", unit="restarts"
        )
        self._m_sink_disabled = self.telemetry.counter(
            "pipeline.sink_disabled", unit="sinks"
        )
        if lifecycle is not None and getattr(lifecycle, "telemetry", None) is None:
            lifecycle.telemetry = self.telemetry
            if getattr(lifecycle, "tracer", None) is None:
                lifecycle.tracer = tracer
        self._service_kwargs = dict(
            threshold=threshold,
            rolling_window=rolling_window,
            rolling_quantile=rolling_quantile,
            min_rolling=min_rolling,
            micro_batch_size=micro_batch_size,
        )
        # Validate the shared configuration eagerly (same errors, same
        # messages as the sequential service) instead of inside a worker.
        DetectionService(detector, **self._service_kwargs)

        self.timer = Timer()
        self.epoch_ = 0
        self.n_features_: int | None = None
        self.n_batches_ = 0
        self.n_samples_ = 0
        self.n_alerts_ = 0
        self.n_drift_events_ = 0
        self.n_swaps_ = 0
        self.n_quarantined_ = 0
        self.n_worker_restarts_ = 0
        self.n_disabled_sinks_ = 0
        self.degraded_ = False
        self.drift_batches_: list[int] = []
        self._latency_total = 0.0
        self._shard_services: list[DetectionService] | None = None
        self._process_states: list[_ShardState] | None = None
        self._worker_rows = [0] * n_workers  # greedy-assignment load account
        self._drift_votes: set[int] = set()  # shards voting since last swap

    # -- configuration -----------------------------------------------------------
    def resolved_mode(self) -> str:
        """The worker mode actually used (``"auto"`` resolved)."""
        if self.mode != "auto":
            return self.mode
        return "thread" if native.available() else "process"

    @property
    def _votes_needed(self) -> int:
        return max(1, math.ceil(self.quorum * self.n_workers - 1e-9))

    # -- stream plumbing ---------------------------------------------------------
    def _validate_width(self, X: Any) -> np.ndarray:
        """Parent-side feature contract, identical to the sequential service.

        Each shard only sees a subset of batches, so a mid-stream width
        change could otherwise slip past the shard that never receives it;
        validating at dispatch keeps the sequential error behavior.
        """
        X, self.n_features_ = _validate_stream_batch(X, self.n_features_)
        return X

    def _indexed_batches(self, stream: Iterable[Any]) -> Iterator[tuple[int, np.ndarray]]:
        for g, item in enumerate(stream, start=self.n_batches_):
            yield g, self._validate_width(DetectionService._batch_features(item))

    def _take_round(
        self, batches: Iterator[tuple[int, np.ndarray]]
    ) -> list[tuple[int, np.ndarray]]:
        round_size = self.n_workers * self.batches_per_round
        round_items: list[tuple[int, np.ndarray]] = []
        for item in batches:
            round_items.append(item)
            if len(round_items) >= round_size:
                break
        return round_items

    def _assign_round(
        self, round_items: list[tuple[int, np.ndarray]]
    ) -> dict[int, int]:
        """Deterministic global-batch-index -> shard mapping for one round."""
        if self.shard_mode == "round_robin":
            return {g: g % self.n_workers for g, _ in round_items}
        assignment: dict[int, int] = {}
        for g, X in round_items:
            shard = int(np.argmin(self._worker_rows))
            assignment[g] = shard
            self._worker_rows[shard] += int(X.shape[0])
        return assignment

    # -- merging -----------------------------------------------------------------
    def _emit(self, event: Any) -> None:
        if not self.sinks:
            return
        # Root-context placement, exactly like the sequential service's
        # _emit: shard workers are sinkless, so the parent's merge-time emits
        # are the only sink_emit spans in any mode — and they all parent to
        # the trace root.
        with trace_span(
            "sink_emit",
            metrics=self.telemetry,
            tracer=self.tracer,
            context=self.trace_context,
        ):
            disabled = len(emit_resilient(self.sinks, event))
        if disabled:
            self.n_disabled_sinks_ += disabled
            self._m_sink_disabled.inc(disabled)

    def _merge_round(
        self,
        per_batch: dict[int, BatchResult],
        batch_X: dict[int, np.ndarray],
        shard_of: dict[int, int],
        shadow_by_batch: dict[int, np.ndarray] | None = None,
    ) -> Iterator[BatchResult]:
        """Re-serialize shard results into global order; emit, count, vote.

        Per-shard shadow (candidate) scores are folded into the parent's
        trial here, batch by batch in global order, so the agreement verdict
        is a single global one — round-aligned, never per shard.
        """
        for g in sorted(per_batch):
            shard_result = per_batch[g]
            offset = self.n_samples_
            if shard_result.quarantined:
                # The shard service quarantined sink-lessly; the parent owns
                # the sinks, so announce here with the *global* batch index.
                self.n_quarantined_ += len(shard_result.quarantined)
                self._emit(
                    QuarantinedRows(
                        batch_index=g,
                        row_indices=shard_result.quarantined,
                        reason=shard_result.quarantine_reason or "quarantined",
                    )
                )
            alerts = tuple(
                Alert(
                    batch_index=g,
                    sample_index=offset + int(i),
                    score=float(shard_result.scores[i]),
                    threshold=shard_result.threshold,
                )
                for i in np.flatnonzero(shard_result.predictions)
            )
            for alert in alerts:
                self._emit(alert)
            drift = shard_result.drift
            if drift is not None and drift.drifted:
                self.n_drift_events_ += 1
                self.drift_batches_.append(g)
                self._emit(DriftEvent(batch_index=g, report=drift))
                self._drift_votes.add(shard_of[g])
            if self.lifecycle is not None and shard_result.scores.size:
                self.lifecycle.observe_batch(
                    batch_X[g], shard_result.scores, shard_result.threshold, drift
                )
                if shadow_by_batch is not None and g in shadow_by_batch:
                    self.lifecycle.observe_shadow(
                        shard_result.scores,
                        shard_result.threshold,
                        shadow_by_batch[g],
                    )
            self.n_batches_ += 1
            self.n_samples_ += shard_result.n_samples
            self.n_alerts_ += len(alerts)
            self._latency_total += shard_result.latency_s
            if self.heartbeat is not None:
                self.heartbeat.beat()
            if self.profiler is not None:
                self.profiler.sample("batch")
            if self.metrics_every and self.n_batches_ % self.metrics_every == 0:
                self._emit(MetricsEvent(batch_index=g, snapshot=self.metrics_snapshot()))
            yield BatchResult(
                index=g,
                scores=shard_result.scores,
                predictions=shard_result.predictions,
                threshold=shard_result.threshold,
                alerts=alerts,
                drift=drift,
                latency_s=shard_result.latency_s,
                model_epoch=shard_result.model_epoch,
                quarantined=shard_result.quarantined,
                quarantine_reason=shard_result.quarantine_reason,
            )

    # -- coordinated swap --------------------------------------------------------
    def _coordinate_swap(self) -> tuple[Any | None, bool]:
        """At a round boundary: refit/gate/publish once if quorum is reached.

        Returns ``(candidate, rebootstrap)``: the new model every worker must
        swap to (the caller applies it mode-specifically), or ``None``.
        Only a *refit* candidate rebootstraps the shard monitors' feature
        references — it was trained on the post-drift window; a fallback
        *reload* may be stale, so the references are kept and a persistent
        shift keeps voting (see ``DetectionService.reload_detector``).
        Votes reset after every coordination attempt — a rejected candidate
        should not be retried at every subsequent boundary; the shards'
        cooldowns will re-vote if the shift persists.
        """
        if self.lifecycle is None or len(self._drift_votes) < self._votes_needed:
            return None, False
        if getattr(self.lifecycle, "shadow_pending", lambda: False)():
            # A candidate is already under shadow; keep the votes — they are
            # cleared when the trial resolves (see _resolve_shadow), so a
            # pre-swap signal cannot immediately re-trigger a refit after it.
            return None, False
        self._drift_votes.clear()
        candidate, event = self.lifecycle.produce_candidate(self.detector)
        event = self._apply_swap(candidate, event)
        return candidate, event.action == "refit"

    def _apply_swap(self, candidate: Any | None, event: Any) -> Any:
        """Shared parent-side swap bookkeeping for vote and shadow decisions:
        adopt the candidate (if any), bump epoch/counters, record the event."""
        if candidate is not None:
            self.detector = candidate
            self.epoch_ += 1
            self.n_swaps_ += 1
            event = replace(event, swapped=True, epoch=self.epoch_)
        else:
            event = replace(event, epoch=self.epoch_)
        self.lifecycle.record(event)
        return event

    def _resolve_shadow(self) -> tuple[Any | None, bool]:
        """Apply a completed shadow verdict at a round boundary.

        The trial was fed merged batches in global order during
        :meth:`_merge_round`; resolving only between rounds keeps the swap
        round-aligned — within any round every shard scores with one model
        epoch, exactly like a coordinated vote swap.  Returns the candidate
        every worker must swap to on ``shadow_pass`` (rebootstrap: it was
        trained on the post-drift window), or ``None``.
        """
        if self.lifecycle is None:
            return None, False
        resolution = getattr(self.lifecycle, "shadow_resolution", lambda: None)()
        if resolution is None:
            return None, False
        self._drift_votes.clear()
        candidate, event = resolution
        self._apply_swap(candidate, event)
        return candidate, candidate is not None

    def _boundary_swap(self) -> tuple[Any | None, bool]:
        """Round-boundary lifecycle step: shadow verdict first, then votes.

        A resolved trial takes precedence (its candidate was produced by an
        earlier vote quorum); otherwise the accumulated votes may coordinate
        a fresh refit — which, with a shadow evaluator, *starts* a trial
        rather than returning a candidate to swap.
        """
        candidate, rebootstrap = self._resolve_shadow()
        if candidate is not None:
            return candidate, rebootstrap
        return self._coordinate_swap()

    def _shadow_detector(self) -> Any | None:
        """The candidate the next round must double-score, or ``None``."""
        if self.lifecycle is None:
            return None
        return getattr(self.lifecycle, "shadow_candidate", None)

    # -- thread mode -------------------------------------------------------------
    def _make_shard_service(self) -> DetectionService:
        monitor = (
            self.drift_monitor_factory()
            if self.drift_monitor_factory is not None
            else None
        )
        return DetectionService(
            self.detector,
            drift_monitor=monitor,
            # Shards inherit only the parent's *disabled* state; when enabled
            # each shard records into its own fresh registry (folded by
            # metrics_snapshot), never the parent's (threads would race).
            telemetry=None if self.telemetry.enabled else self.telemetry,
            **self._service_kwargs,
        )

    @staticmethod
    def _score_shard(
        service: DetectionService,
        items: list[tuple[int, np.ndarray]],
        shadow_detector: Any | None = None,
    ) -> list[tuple[int, BatchResult, np.ndarray | None]]:
        results = []
        for g, X in items:
            result = service.process_batch(X)
            shadow_scores = None
            if shadow_detector is not None and X.shape[0]:
                with trace_span(
                    "shadow_score",
                    metrics=service.telemetry,
                    tracer=service.tracer,
                    rows=int(X.shape[0]),
                    batch_index=g,
                    context=service.trace_context,
                ):
                    shadow_scores = service._score_micro_batched(
                        X, shadow_detector
                    )
            results.append((g, result, shadow_scores))
        return results

    def _process_threaded(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        if self._shard_services is None:
            self._shard_services = [
                self._make_shard_service() for _ in range(self.n_workers)
            ]
        batches = self._indexed_batches(stream)
        with ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-shard"
        ) as pool:
            while True:
                round_items = self._take_round(batches)
                if not round_items:
                    return
                shard_of = self._assign_round(round_items)
                shards: list[list[tuple[int, np.ndarray]]] = [
                    [] for _ in range(self.n_workers)
                ]
                for g, X in round_items:
                    shards[shard_of[g]].append((g, X))
                shadow_detector = self._shadow_detector()
                per_batch: dict[int, BatchResult] = {}
                shadow_by_batch: dict[int, np.ndarray] = {}
                with trace_span(
                    "round_submit",
                    metrics=self.telemetry,
                    tracer=self.tracer,
                    rows=sum(int(X.shape[0]) for _, X in round_items),
                    context=self.trace_context,
                ) as round_span:
                    # Each shard gets a disjoint fork of the round context
                    # plus a private span buffer: concurrent workers never
                    # share an id counter, and flushing the buffers in shard
                    # order keeps the trace file deterministic.
                    round_ctx = round_span.ctx
                    buffers: dict[int, SpanBuffer] = {}
                    futures = []
                    for s, items in enumerate(shards):
                        if not items:
                            continue
                        service = self._shard_services[s]
                        if round_ctx is not None:
                            buffers[s] = SpanBuffer()
                            service.tracer = buffers[s]
                            service.trace_context = round_ctx.fork(f"s{s}")
                        futures.append(
                            pool.submit(
                                self._score_shard, service, items, shadow_detector
                            )
                        )
                    for future in futures:
                        self._collect(future.result(), per_batch, shadow_by_batch)
                    for s in sorted(buffers):
                        buffers[s].flush_to(self.tracer)
                with trace_span(
                    "round_merge",
                    metrics=self.telemetry,
                    tracer=self.tracer,
                    rows=sum(r.n_samples for r in per_batch.values()),
                    context=self.trace_context,
                ):
                    merged = list(
                        self._merge_round(
                            per_batch, dict(round_items), shard_of, shadow_by_batch
                        )
                    )
                yield from merged
                candidate, rebootstrap = self._boundary_swap()
                if candidate is not None:
                    # Every worker is idle between rounds: swap them all so
                    # the next round scores with one model epoch everywhere.
                    for service in self._shard_services:
                        service.reload_detector(candidate, rebootstrap=rebootstrap)

    # -- process mode ------------------------------------------------------------
    @staticmethod
    def _collect(
        results: list[tuple[int, BatchResult, np.ndarray | None]],
        per_batch: dict[int, BatchResult],
        shadow_by_batch: dict[int, np.ndarray],
    ) -> None:
        for g, result, shadow_scores in results:
            per_batch[g] = result
            if shadow_scores is not None:
                shadow_by_batch[g] = shadow_scores

    def _supervise_round(
        self,
        pool: ProcessPoolExecutor | None,
        snapshot_path: str,
        shadow_path: str | None,
        states: list[_ShardState],
        shards: list[list[tuple[int, np.ndarray]]],
        round_index: int,
        per_batch: dict[int, BatchResult],
        shadow_by_batch: dict[int, np.ndarray],
        round_ctx: TraceContext | None = None,
    ) -> ProcessPoolExecutor | None:
        """Run one round's shard slices under worker supervision.

        Each shard's slice is submitted to the pool; a shard whose future
        raises ``BrokenExecutor``/``OSError`` (dead worker) or exceeds
        ``worker_timeout_s`` (hung worker) is *replayed*: the pool is torn
        down and respawned, and — because ``states[s]`` only advanced for
        shards that returned — resubmitting the identical slice is
        idempotent.  Every recovery burns one unit of the
        ``max_worker_restarts`` budget and emits a ``worker_restart`` event;
        past the budget the service degrades to scoring the remaining slices
        in-parent (sequentially) for the rest of the stream.  Returns the
        (possibly respawned, possibly retired) pool.

        When ``round_ctx`` is set, each shard gets one trace-context fork per
        *round* (``round_ctx.fork(f"s{s}")``); replays pickle the same
        untouched fork, so a replayed slice re-allocates the identical span
        ids (marked ``retry``) instead of minting duplicates.  Only the
        winning attempt's spans come back, and they are flushed to the parent
        tracer in shard order once the round settles.
        """
        pending = {s: items for s, items in enumerate(shards) if items}
        forks: dict[int, TraceContext] = {}
        round_spans: dict[int, list[dict]] = {}
        if round_ctx is not None:
            forks = {s: round_ctx.fork(f"s{s}") for s in pending}
        attempt = 0
        incoming_pool = pool
        try:
            while pending:
                if self.degraded_:
                    # Past the restart budget: no pool, score in-parent.  The
                    # injector is dropped on purpose — degraded mode is the
                    # recovery of last resort and must always make progress.
                    for s, items in sorted(pending.items()):
                        results, states[s], spans = _score_round_in_subprocess(
                            snapshot_path,
                            self.epoch_,
                            self._service_kwargs,
                            states[s],
                            items,
                            shadow_path,
                            round_index,
                            s,
                            attempt,
                            None,
                            forks.get(s),
                        )
                        self._collect(results, per_batch, shadow_by_batch)
                        round_spans[s] = spans
                    pending.clear()
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=self.n_workers)
                # submit() itself can raise once a just-submitted shard's worker
                # dies fast enough to break the pool mid-loop, so submission is
                # supervised too: shards that never made it in are marked failed
                # and replayed with the rest.
                futures: dict[int, Any] = {}
                failed: dict[int, str] = {}
                for s, items in sorted(pending.items()):
                    try:
                        futures[s] = pool.submit(
                            _score_round_in_subprocess,
                            snapshot_path,
                            self.epoch_,
                            self._service_kwargs,
                            states[s],
                            items,
                            shadow_path,
                            round_index,
                            s,
                            attempt,
                            self.fault_injector,
                            forks.get(s),
                        )
                    except (BrokenExecutor, OSError) as exc:
                        failed[s] = type(exc).__name__
                for s, future in futures.items():
                    try:
                        results, states[s], spans = future.result(
                            timeout=self.worker_timeout_s
                        )
                    except (BrokenExecutor, OSError, TimeoutError) as exc:
                        failed[s] = type(exc).__name__
                        continue
                    self._collect(results, per_batch, shadow_by_batch)
                    round_spans[s] = spans
                    del pending[s]
                if failed:
                    # A dead worker poisons the whole pool (BrokenProcessPool on
                    # every later submit) and a hung one never frees its slot:
                    # either way the pool is torn down and respawned fresh.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    reason = ", ".join(
                        f"shard {s}: {err}" for s, err in sorted(failed.items())
                    )
                    if self.n_worker_restarts_ >= self.max_worker_restarts:
                        self.degraded_ = True
                        log_event(
                            logging.ERROR,
                            "worker_degraded",
                            logger_=_logger,
                            round_index=round_index,
                            shards=tuple(sorted(failed)),
                            restarts=self.n_worker_restarts_,
                            reason=reason,
                        )
                        self._emit(
                            WorkerRestart(
                                round_index=round_index,
                                shards=tuple(sorted(failed)),
                                reason=f"{reason}; restart budget exhausted, "
                                "degrading to in-parent sequential scoring",
                                restarts=self.n_worker_restarts_,
                                degraded=True,
                            )
                        )
                    else:
                        self.n_worker_restarts_ += 1
                        self._m_worker_restarts.inc()
                        log_event(
                            logging.WARNING,
                            "worker_restart",
                            logger_=_logger,
                            round_index=round_index,
                            shards=tuple(sorted(failed)),
                            restarts=self.n_worker_restarts_,
                            reason=reason,
                        )
                        self._emit(
                            WorkerRestart(
                                round_index=round_index,
                                shards=tuple(sorted(failed)),
                                reason=reason,
                                restarts=self.n_worker_restarts_,
                            )
                        )
                    attempt += 1
        except BaseException:
            # An unexpected failure (an application error out of
            # future.result(), a KeyboardInterrupt mid-round) would
            # otherwise leak a pool this call respawned: the caller's
            # finally only knows the pool it passed in.  Tear down a
            # locally created pool before the exception propagates.
            if pool is not None and pool is not incoming_pool:
                pool.shutdown(wait=False, cancel_futures=True)
            raise
        if self.tracer is not None:
            # Shard order, not completion order: the span *file* is as
            # deterministic as the span tree.
            for s in sorted(round_spans):
                for span in round_spans[s]:
                    self.tracer.record(span)
        return pool

    def _process_multiprocess(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        batches = self._indexed_batches(stream)
        states = [
            _ShardState(
                monitor=(
                    self.drift_monitor_factory()
                    if self.drift_monitor_factory is not None
                    else None
                )
            )
            for _ in range(self.n_workers)
        ]
        if not self.telemetry.enabled:
            for state in states:
                state.metrics = self.telemetry
        self._process_states = states
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            snapshot_path = str(Path(tmp) / f"model_e{self.epoch_}")
            save_snapshot(self.detector, snapshot_path)
            # One candidate snapshot per shadow trial (tag = trial counter);
            # the workers cache it per path, exactly like the served model.
            shadow_snapshot: tuple[int, str] | None = None
            pool: ProcessPoolExecutor | None = None
            round_index = 0
            try:
                while True:
                    round_items = self._take_round(batches)
                    if not round_items:
                        return
                    shard_of = self._assign_round(round_items)
                    shards: list[list[tuple[int, np.ndarray]]] = [
                        [] for _ in range(self.n_workers)
                    ]
                    for g, X in round_items:
                        shards[shard_of[g]].append((g, X))
                    shadow_path: str | None = None
                    if self._shadow_detector() is not None:
                        tag = getattr(self.lifecycle, "n_shadow_trials_", 0)
                        if shadow_snapshot is None or shadow_snapshot[0] != tag:
                            path = str(Path(tmp) / f"shadow_t{tag}")
                            save_snapshot(self._shadow_detector(), path)
                            shadow_snapshot = (tag, path)
                        shadow_path = shadow_snapshot[1]
                    per_batch: dict[int, BatchResult] = {}
                    shadow_by_batch: dict[int, np.ndarray] = {}
                    with trace_span(
                        "round_submit",
                        metrics=self.telemetry,
                        tracer=self.tracer,
                        rows=sum(int(X.shape[0]) for _, X in round_items),
                        context=self.trace_context,
                    ) as round_span:
                        pool = self._supervise_round(
                            pool,
                            snapshot_path,
                            shadow_path,
                            states,
                            shards,
                            round_index,
                            per_batch,
                            shadow_by_batch,
                            round_span.ctx,
                        )
                    with trace_span(
                        "round_merge",
                        metrics=self.telemetry,
                        tracer=self.tracer,
                        rows=sum(r.n_samples for r in per_batch.values()),
                        context=self.trace_context,
                    ):
                        merged = list(
                            self._merge_round(
                                per_batch, dict(round_items), shard_of, shadow_by_batch
                            )
                        )
                    yield from merged
                    candidate, rebootstrap = self._boundary_swap()
                    if candidate is not None:
                        # Publish the new epoch's snapshot for the workers and
                        # reset every shard's model-scale-derived state, same
                        # as DetectionService.reload_detector does in-process.
                        snapshot_path = str(Path(tmp) / f"model_e{self.epoch_}")
                        save_snapshot(candidate, snapshot_path)
                        for state in states:
                            if state.monitor is not None:
                                state.monitor.reset(
                                    clear_score_reference=True,
                                    rebootstrap=rebootstrap,
                                )
                            state.rolling = None
                    round_index += 1
            finally:
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)

    # -- public API --------------------------------------------------------------
    def process(self, stream: Iterable[Any]) -> Iterator[BatchResult]:
        """Yield merged :class:`BatchResult`\\ s in global stream order.

        Both modes consume the stream lazily and yield round by round
        (bounded buffering); coordinated swaps happen between rounds.
        """
        with self.timer:
            if self.resolved_mode() == "thread":
                yield from self._process_threaded(stream)
            else:
                yield from self._process_multiprocess(stream)

    def run(self, stream: Iterable[Any], *, close_sinks: bool = True) -> ServiceReport:
        """Consume the whole stream and return the merged aggregate report."""
        try:
            for _ in self.process(stream):
                pass
        finally:
            if close_sinks:
                for sink in self.sinks:
                    sink.close()
        return self.report()

    def _registries(self) -> list[MetricsRegistry]:
        """All live registries in deterministic global fold order: the
        parent's first, then each shard's (by shard index)."""
        registries = [self.telemetry]
        if self._shard_services is not None:
            registries.extend(
                service.telemetry for service in self._shard_services
            )
        if self._process_states is not None:
            registries.extend(
                state.metrics
                for state in self._process_states
                if state.metrics is not None
            )
        return registries

    def metrics_snapshot(self) -> dict:
        """Global metrics snapshot: parent + every shard, folded.

        Folding happens on every call (the per-shard registries keep
        accumulating), always in the same global order, so repeated
        snapshots never double-count and counter values are identical
        across sequential, thread and process runs of the same stream.
        """
        return MetricsRegistry.fold(self._registries()).snapshot()

    def report(self) -> ServiceReport:
        """Merged counters so far.

        ``total_time_s`` and the throughput are *wall-clock* over the whole
        fan-out (that is the operator-visible rate — per-batch scoring time
        sums across concurrent workers and would overstate the elapsed
        time); ``mean_batch_latency_s`` and the percentiles come from the
        per-batch latencies measured inside the workers (folded histogram).
        """
        rate_timer = Timer(total=self.timer.total, n_calls=1)
        throughput = rate_timer.throughput(self.n_samples_) if self.n_samples_ else 0.0
        folded = MetricsRegistry.fold(self._registries())
        hist = folded.histogram("pipeline.batch_seconds", unit="seconds")
        return ServiceReport(
            n_batches=self.n_batches_,
            n_samples=self.n_samples_,
            n_alerts=self.n_alerts_,
            n_drift_events=self.n_drift_events_,
            drift_batches=list(self.drift_batches_),
            total_time_s=self.timer.total,
            throughput_samples_per_sec=throughput,
            mean_batch_latency_s=(
                self._latency_total / self.n_batches_ if self.n_batches_ else 0.0
            ),
            batch_latency_p50_s=hist.percentile(0.50),
            batch_latency_p95_s=hist.percentile(0.95),
            batch_latency_p99_s=hist.percentile(0.99),
            n_quarantined=self.n_quarantined_,
            n_worker_restarts=self.n_worker_restarts_,
            n_disabled_sinks=self.n_disabled_sinks_,
        )
