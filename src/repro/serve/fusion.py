"""Score-level fusion of heterogeneous novelty detectors.

Different detector families produce scores on wildly different scales (an
isolation forest emits values near [0.4, 0.8], a kNN detector raw distances,
PCA a squared reconstruction error), so raw averaging is meaningless.
:class:`FusionDetector` standardises every member's scores against its own
training-score distribution and combines the standardised scores with one of
three rules:

* ``"mean"`` — the balanced committee vote;
* ``"max"`` — flag when *any* member is confident (highest recall);
* ``"pcr"`` — conflict-aware weighting in the spirit of the proportional
  conflict redistribution (PCR) rules of Smarandache & Dezert: per sample,
  each member's weight shrinks with its disagreement from the committee
  consensus, and the mass it loses is redistributed proportionally among the
  agreeing members (the renormalisation step).  A single detector that
  mis-fires on a sample is damped instead of dragging the fused score.

The fused model is itself a :class:`~repro.novelty.NoveltyDetector`: it has a
training-quantile default threshold, works with ``predict``, serves through
:class:`~repro.serve.service.DetectionService`, and snapshots/loads like any
single detector.
"""

from __future__ import annotations

import numpy as np

from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted, check_n_features

__all__ = ["FusionDetector"]

_COMBINE_RULES = ("mean", "max", "pcr")


class FusionDetector(NoveltyDetector):
    """Serve an ensemble of detectors as one model via normalized-score fusion.

    Parameters
    ----------
    detectors:
        Member detectors (fitted or not — :meth:`fit` fits every member).
    combine:
        ``"mean"``, ``"max"`` or ``"pcr"`` (see module docstring).
    refit_members:
        When ``False``, :meth:`fit` assumes the members are already fitted
        and only calibrates the per-member score normalisation (useful when
        members come out of a model registry).
    """

    def __init__(
        self,
        detectors: list[NoveltyDetector] | tuple[NoveltyDetector, ...],
        *,
        combine: str = "pcr",
        refit_members: bool = True,
        threshold_quantile: float = 0.95,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        detectors = list(detectors)
        if len(detectors) < 2:
            raise ValueError("fusion requires at least 2 detectors")
        if combine not in _COMBINE_RULES:
            raise ValueError(f"combine must be one of {_COMBINE_RULES}")
        self.detectors = detectors
        self.combine = combine
        self.refit_members = refit_members
        self.loc_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.n_features_: int | None = None
        #: Failures recorded by the last :meth:`score_samples` call, one
        #: plain dict per dropped member (``index``, ``detector``, ``error``)
        #: — plain data so a snapshot round-trips it.  Empty when every
        #: member scored.
        self.member_failed_: tuple[dict, ...] = ()
        #: Per-member effective fusion weight of the last
        #: :meth:`score_samples` batch, aligned with :attr:`detectors`
        #: (``"pcr"``: per-sample conflict weights averaged over the batch;
        #: ``"max"``: each member's share of per-sample wins; ``"mean"``:
        #: uniform over survivors).  A member that failed on the batch holds
        #: ``nan``.  Empty before the first scored batch.
        self.member_weights_: tuple[float, ...] = ()
        #: Mean absolute deviation of standardized member scores from the
        #: committee consensus on the last scored batch — the total
        #: disagreement mass the PCR rule redistributes.  ``nan`` before the
        #: first scored batch.
        self.conflict_mass_: float = float("nan")

    # -- fitting -----------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "FusionDetector":
        X = check_array(X, name="X")
        if self.refit_members:
            for detector in self.detectors:
                detector.fit(X)
        self._calibrate(X)
        return self

    def calibrate(self, X: np.ndarray) -> "FusionDetector":
        """Recalibrate score normalisation (and the default threshold) on ``X``.

        Use after loading pre-fitted members (``refit_members=False``) or when
        the reference traffic has drifted but the members are still valid.
        """
        X = check_array(X, name="X")
        self._calibrate(X)
        return self

    def _calibrate(self, X: np.ndarray) -> None:
        reference = np.column_stack(
            [detector.score_samples(X) for detector in self.detectors]
        )
        self.loc_ = reference.mean(axis=0)
        scale = reference.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        self.n_features_ = X.shape[1]
        self._set_default_threshold(self._fuse((reference - self.loc_) / self.scale_))

    # -- scoring -----------------------------------------------------------------
    def _fuse(self, standardized: np.ndarray) -> np.ndarray:
        if self.combine == "mean":
            return standardized.mean(axis=1)
        if self.combine == "max":
            return standardized.max(axis=1)
        # PCR-style conflict-aware weighting: the conflict of member i on a
        # sample is its absolute deviation from the committee consensus; its
        # weight 1 / (1 + conflict) decays with conflict and the lost mass is
        # proportionally redistributed by the normalisation.
        consensus = standardized.mean(axis=1, keepdims=True)
        conflict = np.abs(standardized - consensus)
        weights = 1.0 / (1.0 + conflict)
        weights /= weights.sum(axis=1, keepdims=True)
        return (weights * standardized).sum(axis=1)

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Fused scores for ``X``, degrading gracefully over failing members.

        A member whose ``score_samples`` raises is dropped *for this call*:
        the surviving members' standardized scores are fused with the
        combination weights renormalized over the survivors (for ``"pcr"``
        the per-sample conflict weights renormalize naturally; for
        ``"mean"``/``"max"`` the rule applies to the surviving columns), in
        the PCR spirit of redistributing a conflicting source's mass instead
        of failing the committee.  Each drop is recorded in
        :attr:`member_failed_`; only when *every* member raises does the
        call fail, carrying the last member error as the cause.
        """
        check_fitted(self, "loc_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="fusion was calibrated")
        self.member_failed_ = ()
        if X.shape[0] == 0:
            return np.empty(0)
        columns: list[np.ndarray] = []
        survivors: list[int] = []
        failures: list[dict] = []
        last_error: Exception | None = None
        for index, detector in enumerate(self.detectors):
            try:
                columns.append(
                    np.asarray(detector.score_samples(X), dtype=np.float64)
                )
            except Exception as exc:  # noqa: BLE001 - degradation is the point
                failures.append(
                    {
                        "index": index,
                        "detector": type(detector).__name__,
                        "error": repr(exc),
                    }
                )
                last_error = exc
                continue
            survivors.append(index)
        self.member_failed_ = tuple(failures)
        if not survivors:
            raise RuntimeError(
                f"all {len(self.detectors)} fusion members failed to score"
            ) from last_error
        raw = np.column_stack(columns)
        keep = np.asarray(survivors, dtype=np.intp)
        standardized = (raw - self.loc_[keep]) / self.scale_[keep]
        self._record_diagnostics(standardized, keep)
        return self._fuse(standardized)

    def _record_diagnostics(
        self, standardized: np.ndarray, survivors: np.ndarray
    ) -> None:
        """Record :attr:`member_weights_` / :attr:`conflict_mass_` for the
        batch just scored (surfaced as gauges by the serving telemetry —
        previously these were computed inside :meth:`_fuse` and dropped)."""
        n_samples, n_survivors = standardized.shape
        consensus = standardized.mean(axis=1, keepdims=True)
        conflict = np.abs(standardized - consensus)
        self.conflict_mass_ = float(conflict.mean()) if standardized.size else 0.0
        if self.combine == "pcr":
            weights = 1.0 / (1.0 + conflict)
            weights /= weights.sum(axis=1, keepdims=True)
            survivor_weights = weights.mean(axis=0)
        elif self.combine == "max":
            wins = np.bincount(
                standardized.argmax(axis=1), minlength=n_survivors
            )
            survivor_weights = wins / max(n_samples, 1)
        else:  # mean: the balanced committee
            survivor_weights = np.full(n_survivors, 1.0 / n_survivors)
        full = np.full(len(self.detectors), np.nan)
        full[survivors] = survivor_weights
        self.member_weights_ = tuple(float(w) for w in full)

    def member_scores(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, n_detectors)`` standardized per-member scores.

        Diagnostic view, deliberately strict: a raising member propagates
        here (the caller asked for *that member's* scores), unlike
        :meth:`score_samples`, which degrades over the survivors.
        """
        check_fitted(self, "loc_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="fusion was calibrated")
        if X.shape[0] == 0:
            return np.empty((0, len(self.detectors)))
        raw = np.column_stack(
            [detector.score_samples(X) for detector in self.detectors]
        )
        return (raw - self.loc_) / self.scale_
