"""CLI for the serving subsystem: ``repro serve ...`` and ``repro registry ...``.

Usage examples::

    # fit a detector on the clean traffic of a synthetic dataset and serve a
    # drifted stream built from the same dataset
    repro serve --dataset wustl_iiot --scale 0.002 --detector iforest \
        --drift-strength 2.0 --threshold rolling

    # shard the stream across 4 workers (alerts re-merge in stream order)
    repro serve --dataset wustl_iiot --detector iforest --workers 4

    # publish the fitted model and serve from the registry afterwards
    repro serve --dataset wustl_iiot --detector knn --registry ./models --publish
    repro serve --dataset wustl_iiot --registry ./models --model knn-wustl_iiot

    # online refit: on drift, refit from the clean recent window, gate,
    # republish and hot-swap (works sharded too: workers vote, the parent
    # swaps everyone at a round boundary once the quorum is reached)
    repro serve --dataset wustl_iiot --detector iforest --threshold rolling \
        --registry ./models --publish --refit full --refit-window 4096
    repro serve --dataset wustl_iiot --detector iforest --threshold rolling \
        --registry ./models --publish --refit full --workers 4 --quorum 0.5

    # shadow evaluation: a gate-passed candidate is double-scored alongside
    # the live model for N batches and only swaps on live-stream agreement
    repro serve --dataset wustl_iiot --detector iforest --threshold rolling \
        --registry ./models --publish --refit full \
        --shadow-rounds 5 --shadow-min-agreement 0.6

    # inspect / pin / prune registry contents, audit the swap lineage
    repro registry list --registry ./models
    repro registry pin knn-wustl_iiot 1 --registry ./models
    repro registry gc --keep 3 --registry ./models
    repro registry history iforest-wustl_iiot --registry ./models

    # chaos-test the fault tolerance with deterministic injected faults
    # (grammar in repro.serve.faults), and scan/quarantine corrupt versions
    repro serve --dataset wustl_iiot --detector iforest --workers 2 \
        --worker-mode process \
        --inject-faults 'worker_crash@every=2;nan_rows@rate=0.05'
    repro registry recover --registry ./models

    # observability: operator logs, per-stage span traces, and an auditable
    # run directory (events.jsonl + run_summary.json + trace.jsonl +
    # report.json/.md); `serve report` re-renders the report after the fact,
    # `repro trace` analyzes the span tree and gates on per-stage budgets
    repro serve --dataset wustl_iiot --detector iforest --log-level info \
        --trace-file ./trace.jsonl --run-dir ./run --baseline BENCH_inference.json
    repro serve report ./run --budget score=50 --budget-metric p95
    repro trace ./run/trace.jsonl --view tree --budget batch=100

    # live introspection + continuous memory profiling: /metrics (Prometheus),
    # /health (heartbeat watchdog + degraded flag), /status (JSON summary)
    repro serve --dataset wustl_iiot --detector iforest \
        --status-port 9178 --health-deadline 30 --profile-mem

(``repro`` is the console script registered in ``pyproject.toml``; the same
commands work as ``python -m repro.experiments.cli ...``.)
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import signal
from pathlib import Path

import numpy as np

from repro.datasets.registry import load_dataset
from repro.datasets.streaming import FlowStream
from repro.novelty import (
    HBOS,
    LODA,
    IsolationForest,
    KNNDetector,
    LocalOutlierFactor,
    MahalanobisDetector,
    OneClassSVM,
    PCAReconstructionDetector,
)
from repro.serve.drift import DriftMonitor
from repro.serve.faults import FaultInjector
from repro.serve.fusion import FusionDetector
from repro.serve.lifecycle import (
    ContinualRefit,
    FullRefit,
    LifecycleManager,
    ShadowEvaluator,
    WindowBuffer,
)
from repro.serve.lifecycle.shadow import describe_agreement
from repro.serve.parallel import ShardedDetectionService
from repro.serve.registry import ModelRegistry
from repro.serve.service import DetectionService, make_registry_reload
from repro.serve.sinks import JsonlSink, read_events
from repro.serve.snapshot import read_manifest, save_snapshot
from repro.serve.telemetry import (
    HeartbeatWatchdog,
    MemoryProfiler,
    SpanTracer,
    StatusServer,
    build_report,
    build_run_summary,
    configure_logging,
    render_run_report,
    write_report_files,
)
from repro.serve.telemetry import traceview
from repro.serve.telemetry.traceview import parse_budget, read_spans

__all__ = ["main", "DETECTOR_FACTORIES"]

#: Detector id -> zero-argument factory with serving-friendly defaults.
DETECTOR_FACTORIES = {
    "iforest": lambda: IsolationForest(n_estimators=100, random_state=0),
    "knn": lambda: KNNDetector(n_neighbors=10, random_state=0),
    "lof": lambda: LocalOutlierFactor(n_neighbors=20, random_state=0),
    "pca": lambda: PCAReconstructionDetector(n_components=0.95),
    "hbos": lambda: HBOS(n_bins=20),
    "loda": lambda: LODA(n_projections=50, random_state=0),
    "mahalanobis": lambda: MahalanobisDetector(),
    "ocsvm": lambda: OneClassSVM(n_epochs=10, random_state=0),
    "fusion": lambda: FusionDetector(
        [
            IsolationForest(n_estimators=100, random_state=0),
            KNNDetector(n_neighbors=10, random_state=0),
            HBOS(n_bins=20),
        ],
        combine="pcr",
    ),
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Online serving for fitted intrusion detectors."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve a detector over a flow stream")
    serve.add_argument("--dataset", default="wustl_iiot", help="synthetic dataset name")
    serve.add_argument("--scale", type=float, default=0.002, help="dataset scale")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--detector", choices=sorted(DETECTOR_FACTORIES), default="iforest",
        help="detector to fit when not loading from a registry",
    )
    serve.add_argument("--batch-size", type=int, default=256, help="stream batch size")
    serve.add_argument(
        "--micro-batch-size", type=int, default=1024,
        help="upper bound on rows per scoring call (bounds peak memory)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="shard the stream across this many workers (1 = sequential); "
        "batches are round-robin assigned and alerts re-merge in stream order",
    )
    serve.add_argument(
        "--worker-mode", choices=["auto", "thread", "process"], default="auto",
        help="worker backend with --workers > 1 (auto: threads when the "
        "native kernels are available, processes otherwise)",
    )
    serve.add_argument(
        "--shard-mode", choices=["round_robin", "greedy"], default="round_robin",
        help="batch-to-worker assignment with --workers > 1: strict "
        "round-robin, or greedy least-loaded (deterministic; better balance "
        "for ragged batch sizes)",
    )
    serve.add_argument(
        "--refit", choices=["off", "full", "continual"], default="off",
        help="online refit on drift: 'full' refits the detector from scratch "
        "on the clean recent window, 'continual' routes the window through "
        "the model's continual update path; candidates must pass a quality "
        "gate, are republished to --registry when given, and hot-swap the "
        "served model (coordinated across --workers at a round boundary)",
    )
    serve.add_argument(
        "--refit-window", type=int, default=4096,
        help="capacity of the clean-window buffer refits are trained on",
    )
    serve.add_argument(
        "--quorum", type=float, default=0.5,
        help="with --workers > 1 and --refit: fraction of workers whose "
        "drift monitors must vote before the parent coordinates a swap",
    )
    serve.add_argument(
        "--shadow-rounds", type=int, default=0,
        help="with --refit: double-score gate-passed candidates alongside "
        "the live model for this many batches and only swap when the two "
        "agree on live traffic (alert overlap + score-rank correlation); "
        "0 disables shadow evaluation (candidates swap right after the gate)",
    )
    serve.add_argument(
        "--shadow-min-agreement", type=float, default=None,
        help="minimum rate-matched alert-decision overlap a shadowed "
        "candidate needs to earn the swap (fraction in (0, 1], default 0.6); "
        "only meaningful together with --shadow-rounds",
    )
    serve.add_argument(
        "--drift-strength", type=float, default=2.0,
        help="covariate drift injected over the stream (0 disables)",
    )
    serve.add_argument(
        "--threshold", default="auto",
        help="'auto' (detector default), 'rolling', or a fixed float",
    )
    serve.add_argument("--rolling-quantile", type=float, default=0.95)
    serve.add_argument(
        "--registry", type=Path, default=None, help="model registry directory"
    )
    serve.add_argument(
        "--model", default=None,
        help="registry model to serve, as NAME, NAME@latest, NAME@pinned or NAME@vN",
    )
    serve.add_argument(
        "--publish", action="store_true",
        help="publish the fitted detector to the registry before serving",
    )
    serve.add_argument(
        "--reload-on-drift", action="store_true",
        help="reload the registry model when the drift monitor fires",
    )
    serve.add_argument(
        "--alerts", type=Path, default=None, help="write alerts/drift events as JSONL"
    )
    serve.add_argument(
        "--max-worker-restarts", type=int, default=3,
        help="with --workers > 1 in process mode: pool respawns allowed "
        "after dead/hung workers before degrading to in-parent scoring",
    )
    serve.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic chaos testing: inject faults described by SPEC "
        "(e.g. 'worker_crash@every=1;sink_raise@every=1;nan_rows@rate=0.05'; "
        "see repro.serve.faults for the grammar); never use in production",
    )
    serve.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="attach a stderr handler to the 'repro.serve' logger at LEVEL "
        "(debug/info/warning/...); degradations the library signals as "
        "UserWarning also appear as structured log records",
    )
    serve.add_argument(
        "--trace-file", type=Path, default=None, metavar="PATH",
        help="append one JSONL span record per instrumented pipeline stage "
        "(quarantine scan, scoring, drift check, refit, gate, ...) to PATH",
    )
    serve.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve a live introspection endpoint on 127.0.0.1:PORT while "
        "the stream runs: /metrics (Prometheus text exposition), /health "
        "(200/503 from the batch heartbeat watchdog and the degraded-mode "
        "flag) and /status (JSON: epoch, serving version, worker restarts, "
        "disabled sinks, open shadow trial); PORT 0 picks a free port",
    )
    serve.add_argument(
        "--health-deadline", type=float, default=30.0, metavar="SECONDS",
        help="with --status-port: /health turns NOT_OK when no batch "
        "completed within this many seconds (default 30)",
    )
    serve.add_argument(
        "--profile-mem", action="store_true",
        help="sample RSS + tracemalloc after every merged batch into the "
        "metrics registry (mem.* gauges, per-stage byte histograms) and a "
        "'memory' section of run_summary.json",
    )
    serve.add_argument(
        "--metrics-every", type=int, default=None, metavar="N",
        help="emit a metrics-snapshot event through the sinks every N scored "
        "batches (periodic MetricsEvent; off by default)",
    )
    serve.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="write auditable run artifacts into DIR: events.jsonl (every "
        "sink event), run_summary.json (config/model/stream hashes + metrics "
        "snapshot) and report.json/report.md (sectioned MET/NOT_MET verdicts); "
        "re-render later with 'repro serve report DIR'",
    )
    serve.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="BENCH_inference.json to judge throughput against in the run "
        "report (only meaningful with --run-dir)",
    )

    serve_sub = serve.add_subparsers(dest="serve_command")
    serve_report = serve_sub.add_parser(
        "report", help="(re)build report.json/report.md from a --run-dir output"
    )
    serve_report.add_argument(
        "run_dir", type=Path,
        help="directory written by 'repro serve --run-dir'",
    )
    serve_report.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="BENCH_inference.json for the throughput-vs-baseline check",
    )
    serve_report.add_argument(
        "--budget", action="append", default=[], metavar="STAGE=MS",
        help="per-stage trace latency budget in ms (repeatable); judged "
        "MET/NOT_MET in the report's Trace section when the run directory "
        "has a trace.jsonl",
    )
    serve_report.add_argument(
        "--budget-metric", choices=traceview.BUDGET_METRICS, default="p95",
        help="trace aggregate the budgets are checked against (default: p95)",
    )

    trace = sub.add_parser(
        "trace",
        help="analyze span-JSONL trace files: tree, per-stage stats, "
        "critical paths, latency budgets",
    )
    traceview.configure_parser(trace)

    registry = sub.add_parser("registry", help="inspect, pin or prune registry contents")
    registry.add_argument(
        "action",
        choices=["list", "show", "pin", "unpin", "gc", "history", "recover"],
    )
    registry.add_argument("name", nargs="?", default=None)
    registry.add_argument("version", nargs="?", default=None)
    registry.add_argument("--registry", type=Path, required=True)
    registry.add_argument(
        "--keep", type=int, default=3,
        help="registry gc: newest versions kept per model (pinned versions "
        "always survive)",
    )
    return parser


def _split_model_selector(selector: str) -> tuple[str, str | None]:
    name, _, version = selector.partition("@")
    return name, (version or None)


def _make_drift_monitor(ref_scores: np.ndarray, ref_X: np.ndarray) -> DriftMonitor:
    """Per-shard drift-monitor factory (module-level so process workers can
    unpickle the ``functools.partial`` built over it)."""
    return DriftMonitor().set_reference(ref_scores, ref_X)


class _Terminated(Exception):
    """Internal marker raised by the SIGTERM handler for a graceful exit."""


def _serve_stream(service, stream) -> int:
    """Run the service; returns 0, or 130/143 on SIGINT/SIGTERM.

    ``service.run``'s own ``finally`` closes the sinks on the way out, so an
    interrupted stream still flushes its JSONL events; the caller prints the
    partial report.  The previous SIGTERM disposition is restored before
    returning.
    """

    main_pid = os.getpid()

    def _on_sigterm(signum, frame):
        # Forked process workers inherit this handler; a supervised pool
        # teardown terminates them with SIGTERM, and raising through their
        # blocked IPC read would only spray tracebacks.  They die quietly.
        if os.getpid() != main_pid:
            os._exit(143)
        raise _Terminated()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - not on the main thread
        pass
    try:
        service.run(stream)
        return 0
    except KeyboardInterrupt:
        return 130
    except _Terminated:
        return 143
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


#: serve args that shape the run's *semantics* — hashed into the run
#: summary's config SHA-256.  Output locations and logging verbosity are
#: excluded: re-running with a different --run-dir is the same experiment.
_CONFIG_EXCLUDED = (
    "command",
    "serve_command",
    "alerts",
    "baseline",
    "health_deadline",
    "log_level",
    "profile_mem",
    "registry",
    "run_dir",
    "status_port",
    "trace_file",
)


def _load_baseline(path: Path | None) -> dict | None:
    if path is None:
        return None
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"--baseline: cannot read {path}: {exc}")


def _model_provenance(
    detector,
    run_dir: Path,
    registry: ModelRegistry | None,
    model_name: str | None,
    serving_version: int | None,
) -> dict:
    """Model facts for ``run_summary.json`` (name, version, artifact hashes).

    A registry-served model already has a manifest vouching for its artifact
    bytes; a locally fitted one is snapshotted into ``<run-dir>/model`` so
    the run directory carries the exact served model *and* its hashes.
    """
    if registry is not None and model_name is not None and serving_version is not None:
        info = registry.resolve(model_name, f"v{serving_version}")
        manifest = info.manifest
        return {
            "source": "registry",
            "name": info.name,
            "version": info.version,
            "class": manifest.get("class"),
            "artifacts": manifest.get("artifacts") or {},
        }
    path = save_snapshot(detector, run_dir / "model", overwrite=True)
    manifest = read_manifest(path)
    return {
        "source": "snapshot",
        "name": type(detector).__name__,
        "version": None,
        "class": manifest.get("class"),
        "artifacts": manifest.get("artifacts") or {},
    }


def _write_run_artifacts(
    args: argparse.Namespace,
    *,
    service,
    report,
    dataset,
    detector,
    registry: ModelRegistry | None,
    model_name: str | None,
    serving_version: int | None,
    memory: dict | None = None,
) -> None:
    """Write ``run_summary.json`` + ``report.json``/``report.md`` into
    ``args.run_dir`` (the sinks — including ``events.jsonl`` — are already
    closed by ``service.run``'s own ``finally``)."""
    run_dir: Path = args.run_dir
    config = {
        key: (str(value) if isinstance(value, Path) else value)
        for key, value in sorted(vars(args).items())
        if key not in _CONFIG_EXCLUDED
    }
    stream_info = {
        "source": "synthetic",
        "dataset": dataset.name,
        "scale": args.scale,
        "seed": args.seed,
        "batch_size": args.batch_size,
        "drift_strength": args.drift_strength,
    }
    model_info = _model_provenance(
        detector, run_dir, registry, model_name, serving_version
    )
    summary_payload = build_run_summary(
        config,
        stream=stream_info,
        model=model_info,
        service_report=report.to_dict(),
        metrics=service.metrics_snapshot(),
    )
    if memory:
        summary_payload["memory"] = memory
    (run_dir / "run_summary.json").write_text(
        json.dumps(summary_payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    events_path = run_dir / "events.jsonl"
    events = read_events(events_path) if events_path.is_file() else []
    # The report only sees the run dir's own trace.jsonl (not an external
    # --trace-file), so the initial render and `serve report` re-renders
    # always judge the same data.
    trace_path = run_dir / "trace.jsonl"
    trace = read_spans(str(trace_path)) if trace_path.is_file() else None
    payload = build_report(
        report.to_dict(),
        metrics=summary_payload["metrics"],
        events=events,
        run_info=summary_payload,
        baseline=_load_baseline(args.baseline),
        trace=trace,
    )
    _, md_path = write_report_files(run_dir, payload)
    print(f"run report: {payload['overall']} -> {md_path}")


def _run_serve_report(args: argparse.Namespace) -> int:
    try:
        budgets = dict(parse_budget(spec) for spec in args.budget)
    except ValueError as exc:
        raise SystemExit(f"--budget: {exc}")
    try:
        report = render_run_report(
            args.run_dir,
            baseline=_load_baseline(args.baseline),
            trace_budgets=budgets or None,
            trace_budget_metric=args.budget_metric,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(f"run report: {report['overall']} -> {Path(args.run_dir) / 'report.md'}")
    for section in report["sections"]:
        print(f"  {section['index']}. {section['title']}: {section['verdict']}")
    if budgets and not any(s["title"] == "Trace" for s in report["sections"]):
        raise SystemExit(
            "--budget given but the run directory has no trace.jsonl to "
            "judge (re-run serve with --run-dir, which traces by default)"
        )
    return 0 if report["overall"] != "NOT_MET" else 1


def _run_serve(args: argparse.Namespace) -> int:
    # Validate the shadow flags before any dataset/fit work: a flag typo must
    # not cost a training run (nor surface as a raw ValueError traceback).
    if args.shadow_rounds:
        if args.shadow_rounds < 0:
            raise SystemExit("--shadow-rounds must be non-negative")
        if args.refit == "off":
            raise SystemExit(
                "--shadow-rounds requires --refit (shadow evaluation judges "
                "refit candidates against live traffic)"
            )
        if args.shadow_min_agreement is not None and not (
            0.0 < args.shadow_min_agreement <= 1.0
        ):
            raise SystemExit(
                "--shadow-min-agreement must be a fraction in (0, 1]"
            )
    elif args.shadow_min_agreement is not None:
        raise SystemExit(
            "--shadow-min-agreement has no effect without --shadow-rounds N "
            "(shadow evaluation is disabled; candidates would swap right "
            "after the quality gate)"
        )
    if args.log_level is not None:
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            raise SystemExit(f"--log-level: {exc}")
    if args.metrics_every is not None and args.metrics_every < 1:
        raise SystemExit("--metrics-every must be at least 1")
    if args.baseline is not None and args.run_dir is None:
        raise SystemExit("--baseline is only used by the --run-dir report")
    if args.status_port is not None and args.status_port < 0:
        raise SystemExit("--status-port must be >= 0 (0 picks a free port)")
    if args.health_deadline <= 0:
        raise SystemExit("--health-deadline must be positive")
    if args.run_dir is not None:
        args.run_dir.mkdir(parents=True, exist_ok=True)
        if args.trace_file is None:
            # Trace into the run dir by default so `serve report` and
            # `repro trace` find the spans next to the other artifacts.
            args.trace_file = args.run_dir / "trace.jsonl"
    tracer = SpanTracer(args.trace_file) if args.trace_file is not None else None
    injector: FaultInjector | None = None
    if args.inject_faults:
        try:
            injector = FaultInjector.from_spec(args.inject_faults, seed=args.seed)
        except ValueError as exc:
            raise SystemExit(f"--inject-faults: {exc}")
        print(f"fault injection armed: {injector.describe()}")
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    normal = dataset.normal_data()
    registry = ModelRegistry(args.registry) if args.registry is not None else None
    if registry is not None:
        for event in registry.recovered_:
            print(
                f"registry recovered: {event.name}/{event.version_dir} "
                f"quarantined ({event.reason})"
            )

    reload_selector: tuple[str, str | None] | None = None
    serving_version: int | None = None
    if args.model is not None:
        if registry is None:
            raise SystemExit("--model requires --registry")
        name, version = _split_model_selector(args.model)
        resolved = registry.resolve(name, version)
        detector = registry.load(name, version)
        reload_selector = (name, version)
        serving_version = resolved.version
        print(f"serving {name}@{version or 'default'} from {registry.root}")
    else:
        detector = DETECTOR_FACTORIES[args.detector]()
        detector.fit(normal)
        print(f"fitted {type(detector).__name__} on {normal.shape[0]} clean flows")
        if registry is not None and args.publish:
            info = registry.publish(
                detector,
                f"{args.detector}-{dataset.name}",
                metadata={"dataset": dataset.name, "scale": args.scale},
            )
            reload_selector = (info.name, None)
            serving_version = info.version
            print(f"published {info.name} v{info.version} to {registry.root}")
            if injector is not None and injector.torn_write:
                # Model a publisher killed mid-write, then the recovery scan
                # a restart would run; the fitted detector in memory keeps
                # serving either way.
                print(f"fault injection: {FaultInjector.tear_version(info.path)}")
                for event in registry.recover(info.name):
                    print(
                        f"registry recovered: {event.name}/{event.version_dir} "
                        f"quarantined ({event.reason})"
                    )
                serving_version = None

    try:
        threshold: float | str = float(args.threshold)
    except ValueError:
        threshold = args.threshold

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    sinks = [JsonlSink(args.alerts)] if args.alerts is not None else []
    if injector is not None:
        sinks = injector.wrap_sinks(sinks)
    if args.run_dir is not None:
        # The audit channel is appended *after* fault wrapping: chaos testing
        # must not be able to disable the record of the chaos.
        sinks.append(JsonlSink(args.run_dir / "events.jsonl"))
    ref_scores = detector.score_samples(normal)

    lifecycle = None
    if args.refit != "off":
        if args.reload_on_drift:
            raise SystemExit(
                "--refit and --reload-on-drift are mutually exclusive "
                "(--refit already falls back to a registry reload)"
            )
        if args.refit == "continual" and not (
            hasattr(detector, "update") or hasattr(detector, "fit_experience")
        ):
            raise SystemExit(
                "--refit continual requires a continual method with an "
                "update()/fit_experience() path; the built-in CLI detectors "
                "are static novelty detectors (use --refit full)"
            )
        if args.refit == "full":
            # A locally fitted detector refits via its factory; a registry
            # model's hyper-parameters survive the snapshot clone instead.
            # Validate the clone path eagerly — failing at the first drift
            # event, mid-stream, would lose the accumulated serving state.
            if args.model is not None and not hasattr(detector, "fit"):
                raise SystemExit(
                    f"--refit full requires a model with fit(); the registry "
                    f"model is a {type(detector).__name__} without one "
                    "(use --refit continual)"
                )
            factory = DETECTOR_FACTORIES[args.detector] if args.model is None else None
            policy: FullRefit | ContinualRefit = FullRefit(factory)
        else:
            policy = ContinualRefit()
        model_name = None
        if registry is not None:
            model_name = (
                reload_selector[0]
                if reload_selector is not None
                else f"{args.detector}-{dataset.name}"
            )
        shadow = None
        if args.shadow_rounds:
            shadow = ShadowEvaluator(
                rounds=args.shadow_rounds,
                **(
                    {"min_agreement": args.shadow_min_agreement}
                    if args.shadow_min_agreement is not None
                    else {}
                ),
            )
        lifecycle = LifecycleManager(
            policy,
            buffer=WindowBuffer(args.refit_window),
            registry=registry,
            model_name=model_name,
            serving_version=serving_version,
            shadow=shadow,
            sinks=sinks,
        )
        republish = "republishing" if registry is not None else "not republishing"
        shadowing = (
            f", shadow={shadow.rounds} rounds "
            f"(min agreement {shadow.min_agreement:.0%})"
            if shadow is not None
            else ""
        )
        print(f"online refit on drift: policy={args.refit}, "
              f"window={args.refit_window} rows, {republish}{shadowing}")

    if args.workers > 1:
        if args.reload_on_drift:
            raise SystemExit(
                "--reload-on-drift requires the sequential service (--workers 1); "
                "use --refit for the coordinated swap across workers"
            )
        service: DetectionService | ShardedDetectionService = ShardedDetectionService(
            detector,
            n_workers=args.workers,
            mode=args.worker_mode,
            shard_mode=args.shard_mode,
            threshold=threshold,
            rolling_quantile=args.rolling_quantile,
            micro_batch_size=args.micro_batch_size,
            drift_monitor_factory=functools.partial(
                _make_drift_monitor, ref_scores, normal
            ),
            lifecycle=lifecycle,
            quorum=args.quorum,
            sinks=sinks,
            max_worker_restarts=args.max_worker_restarts,
            fault_injector=injector,
            tracer=tracer,
            metrics_every=args.metrics_every,
        )
        print(
            f"sharding across {args.workers} {service.resolved_mode()} workers "
            f"({args.shard_mode} batches, global-order merge)"
        )
        if (
            injector is not None
            and injector.targets_workers
            and service.resolved_mode() != "process"
        ):
            print(
                "note: worker crash/hang faults only fire in process mode "
                "(add --worker-mode process)"
            )
    else:
        if injector is not None and injector.targets_workers:
            print("note: worker crash/hang faults need --workers > 1 (ignored)")
        monitor = DriftMonitor()
        monitor.set_reference(ref_scores, normal)

        on_drift = None
        if args.reload_on_drift:
            if registry is None or reload_selector is None:
                raise SystemExit(
                    "--reload-on-drift requires --registry plus either --model or --publish"
                )
            name, version = reload_selector
            on_drift = make_registry_reload(registry, name, version=version)

        service = DetectionService(
            detector,
            threshold=threshold,
            rolling_quantile=args.rolling_quantile,
            micro_batch_size=args.micro_batch_size,
            drift_monitor=monitor,
            sinks=sinks,
            on_drift=on_drift,
            lifecycle=lifecycle,
            tracer=tracer,
            metrics_every=args.metrics_every,
        )
    profiler: MemoryProfiler | None = None
    if args.profile_mem:
        profiler = MemoryProfiler(service.telemetry, tracer=tracer)
        service.profiler = profiler
    status_server: StatusServer | None = None
    if args.status_port is not None:
        watchdog = HeartbeatWatchdog(args.health_deadline)
        service.heartbeat = watchdog

        def _status_payload() -> dict:
            lifecycle_ = getattr(service, "lifecycle", None)
            return {
                "mode": (
                    service.resolved_mode() if args.workers > 1 else "sequential"
                ),
                "workers": args.workers,
                "epoch": int(getattr(service, "epoch_", 0)),
                "serving_version": serving_version,
                "n_batches": int(getattr(service, "n_batches_", 0)),
                "n_samples": int(getattr(service, "n_samples_", 0)),
                "n_alerts": int(getattr(service, "n_alerts_", 0)),
                "worker_restarts": int(getattr(service, "n_worker_restarts_", 0)),
                "disabled_sinks": int(getattr(service, "n_disabled_sinks_", 0)),
                "shadow_trial_open": bool(
                    getattr(lifecycle_, "shadow_pending", False)
                ),
                "profiling_memory": profiler is not None,
            }

        status_server = StatusServer(
            args.status_port,
            snapshot_fn=service.metrics_snapshot,
            status_fn=_status_payload,
            degraded_fn=lambda: bool(getattr(service, "degraded_", False)),
            watchdog=watchdog,
        ).start()
        print(f"status endpoint live at {status_server.url('/status')}")

    stream = FlowStream(
        dataset,
        batch_size=args.batch_size,
        drift_strength=args.drift_strength,
        random_state=args.seed,
    )
    if injector is not None:
        stream = injector.corrupt_stream(stream)
    try:
        interrupted = _serve_stream(service, stream)
    except BaseException:
        # An exception out of the stream must not leak the span-file handle
        # or the tracemalloc hooks: close them before propagating (the
        # tracer's close truncates any torn trailing line, so the partial
        # trace stays readable).  The happy path below closes them after
        # taking the final sample / span count.
        if profiler is not None:
            profiler.close()
        if tracer is not None:
            tracer.close()
        raise
    finally:
        if status_server is not None:
            status_server.close()
    memory: dict | None = None
    if profiler is not None:
        profiler.sample("final")
        memory = profiler.summary()
        profiler.close()
        print(
            f"memory profile: {memory['n_samples']} samples, "
            f"rss max {memory['rss_max_bytes'] / 1e6:.1f} MB"
        )
    if tracer is not None:
        tracer.close()
        print(f"{tracer.n_spans} spans traced to {tracer.path}")
    model_name = reload_selector[0] if reload_selector is not None else None
    if interrupted:
        # service.run's finally already closed the sinks; flush the partial
        # report (and the partial run artifacts) so an operator still sees
        # what was processed, then exit with the conventional signal code —
        # no raw traceback.
        report = service.report()
        print(report.summary())
        if args.run_dir is not None:
            _write_run_artifacts(
                args,
                service=service,
                report=report,
                dataset=dataset,
                detector=detector,
                registry=registry,
                model_name=model_name,
                serving_version=serving_version,
                memory=memory,
            )
        signal_name = "SIGINT" if interrupted == 130 else "SIGTERM"
        print(f"interrupted by {signal_name}; partial report above")
        return interrupted
    report = service.report()
    print(report.summary())
    if lifecycle is not None:
        for event in lifecycle.events:
            outcome = "swapped" if event.swapped else "kept current model"
            version = (
                f", published v{event.published_version}"
                if event.published_version is not None
                else ""
            )
            reason = f" ({event.reason})" if event.reason else ""
            agreement = (
                f" [{event.shadow.describe()}]" if event.shadow is not None else ""
            )
            print(
                f"lifecycle: {event.action} on {event.n_window_rows} clean "
                f"rows -> {outcome} (epoch {event.epoch}{version}){agreement}{reason}"
            )
        if not lifecycle.events:
            print("lifecycle: no drift fired; model unchanged")
    if args.alerts is not None:
        print(f"events written to {args.alerts}")
    if args.run_dir is not None:
        _write_run_artifacts(
            args,
            service=service,
            report=report,
            dataset=dataset,
            detector=detector,
            registry=registry,
            model_name=model_name,
            serving_version=serving_version,
            memory=memory,
        )
    return 0


def _run_registry(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.registry)
    if args.action == "gc":
        if args.version is not None:
            raise SystemExit(
                "registry gc takes no version argument; use --keep N to "
                "choose how many newest versions survive"
            )
        deleted = registry.gc(args.name, keep=args.keep)
        for info in deleted:
            print(f"deleted {info.name} v{info.version}")
        scope = args.name if args.name is not None else "all models"
        print(f"gc kept the newest {args.keep} version(s) of {scope} "
              f"({len(deleted)} deleted)")
        return 0
    if args.action == "list":
        for name in registry.models():
            versions = registry.versions(name)
            pinned = registry.pinned_version(name)
            pin_note = f", pinned v{pinned}" if pinned is not None else ""
            print(f"{name}: v{versions[0]}..v{versions[-1]}{pin_note}")
        return 0
    if args.action == "recover":
        if args.version is not None:
            raise SystemExit(
                "registry recover takes no version argument; it scans every "
                "version directory of the model (or all models)"
            )
        # The constructor's scan already quarantined anything corrupt;
        # report those events (filtered to the requested model, if any).
        events = [
            event
            for event in registry.recovered_
            if args.name is None or event.name == args.name
        ]
        for event in events:
            print(
                f"{event.name}: quarantined {event.version_dir} -> "
                f"{event.quarantined_to} ({event.reason})"
            )
        scope = args.name if args.name is not None else "all models"
        print(f"recovery scan of {scope}: {len(events)} entr(y|ies) quarantined")
        return 0
    if args.name is None:
        raise SystemExit(f"registry {args.action} requires a model name")
    if args.action == "history":
        if args.version is not None:
            raise SystemExit(
                "registry history takes no version argument; the lineage "
                "file spans every version of the model"
            )
        if not registry.versions(args.name) and not registry.history_path(
            args.name
        ).is_file():
            raise SystemExit(
                f"model {args.name!r} has no published versions or recorded "
                f"history in {registry.root}"
            )
        events = registry.history(args.name)
        for index, event in enumerate(events):
            if event.get("type") == "registry_recover":
                print(
                    f"[{index}] registry_recover: quarantined "
                    f"{event.get('version_dir')} ({event.get('reason')})"
                )
                continue
            action = event.get("action", "?")
            outcome = "swapped" if event.get("swapped") else "kept current model"
            version = (
                f", published v{event['published_version']}"
                if event.get("published_version") is not None
                else ""
            )
            shadow = event.get("shadow")
            agreement = (
                f" [{describe_agreement(shadow.get('alert_agreement'), shadow.get('rank_correlation'))}]"
                if shadow
                else ""
            )
            print(
                f"[{index}] {action} -> {outcome} "
                f"(epoch {event.get('epoch', 0)}{version}){agreement}"
            )
        print(f"{len(events)} lifecycle event(s) recorded for {args.name}")
        return 0
    if args.action == "show":
        info = registry.resolve(args.name, args.version)
        manifest = info.manifest
        print(f"{info.name} v{info.version} at {info.path}")
        print(f"class: {manifest['class']}")
        print(f"created: {manifest['created_at']}")
        if manifest.get("metadata"):
            print(f"metadata: {manifest['metadata']}")
        return 0
    if args.action == "pin":
        if args.version is None:
            raise SystemExit("registry pin requires a version")
        info = registry.pin(args.name, args.version)
        print(f"pinned {info.name} to v{info.version}")
        return 0
    registry.unpin(args.name)
    print(f"unpinned {args.name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.command == "serve":
        if getattr(args, "serve_command", None) == "report":
            return _run_serve_report(args)
        return _run_serve(args)
    if args.command == "trace":
        return traceview.run(args)
    return _run_registry(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
