"""Pluggable sinks for the structured events a :class:`DetectionService` emits.

A sink receives every :class:`~repro.serve.service.Alert` and
:class:`~repro.serve.service.DriftEvent` (anything exposing ``to_dict()``).
Sinks must be cheap: they run inside the scoring loop.  Implementations here
cover the three deployment staples — keep events in memory (tests,
notebooks), append them to a JSONL file (log shippers), or hand them to a
callback (paging, metrics counters).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Protocol

__all__ = ["AlertSink", "ListSink", "JsonlSink", "CallbackSink", "read_events"]


def read_events(path: str | Path) -> list[dict]:
    """Load the JSONL event stream written by :class:`JsonlSink`.

    Returns the events as plain dicts in file order.  A truncated *trailing*
    line (process killed mid-append) is silently dropped — the same
    crash-recovery contract as the model-registry history — while a corrupt
    line anywhere else raises ``ValueError``, since that signals real damage
    rather than an interrupted write.
    """
    path = Path(path)
    events: list[dict] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # interrupted final append: recoverable by contract
            raise ValueError(f"corrupt event line {i} in {path}") from exc
    return events


class AlertSink(Protocol):
    """Protocol every sink implements."""

    def emit(self, event: Any) -> None:
        """Receive one event (exposes ``to_dict() -> dict``)."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Flush and release resources; called by ``DetectionService.run``."""
        ...  # pragma: no cover - protocol stub


class ListSink:
    """Collect events in memory (``.events``); ideal for tests and notebooks."""

    def __init__(self) -> None:
        self.events: list[Any] = []

    def emit(self, event: Any) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Append one JSON object per event to a file (opened lazily)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self.n_written = 0

    def emit(self, event: Any) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.n_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink:
    """Forward every event to ``fn`` (metrics counters, pagers, queues)."""

    def __init__(self, fn: Callable[[Any], None]) -> None:
        self.fn = fn

    def emit(self, event: Any) -> None:
        self.fn(event)

    def close(self) -> None:
        pass
