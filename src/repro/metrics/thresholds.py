"""Anomaly-score thresholding rules.

The paper converts PCA reconstruction scores into attack/normal predictions
with the widely used Best-F rule (Su et al., KDD 2019): pick the threshold
that maximises the F1 score on the evaluated batch.  A label-free quantile
rule is also provided for deployments without any labels.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_labels, check_consistent_length

__all__ = ["best_f_threshold", "quantile_threshold"]


def best_f_threshold(
    scores: np.ndarray,
    y_true: np.ndarray,
    *,
    beta: float = 1.0,
    n_candidates: int | None = None,
) -> tuple[float, float]:
    """Select the score threshold that maximises the F-beta score.

    Parameters
    ----------
    scores:
        Anomaly scores (higher means more anomalous).
    y_true:
        Binary ground-truth labels for the same samples.
    beta:
        F-beta parameter (1.0 reproduces the paper's Best-F rule).
    n_candidates:
        Optionally subsample the candidate thresholds (evenly over the sorted
        unique scores) to bound the search cost on very large batches.

    Returns
    -------
    (threshold, best_f):
        The selected threshold and the F-beta value it achieves.  Predictions
        are intended as ``scores > threshold``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    y_true = check_binary_labels(y_true, name="y_true")
    check_consistent_length(scores, y_true)
    if beta <= 0:
        raise ValueError("beta must be positive")

    n_positive = int(y_true.sum())
    if n_positive == 0:
        # No attacks present: predicting nothing positive is optimal.
        return float(scores.max()), 0.0

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = y_true[order].astype(np.float64)

    # Cumulative tp/fp when predicting positive for the top-k scores.
    tps = np.cumsum(sorted_labels)
    fps = np.arange(1, scores.size + 1) - tps
    precision = tps / (tps + fps)
    recall = tps / n_positive
    beta2 = beta**2
    denom = beta2 * precision + recall
    f_scores = np.divide(
        (1 + beta2) * precision * recall, denom, out=np.zeros_like(denom), where=denom > 0
    )

    # Only cut points at the end of ties are valid thresholds.
    if scores.size > 1:
        valid = np.concatenate([np.diff(sorted_scores) != 0.0, [True]])
    else:
        valid = np.array([True])
    candidate_idx = np.flatnonzero(valid)
    if n_candidates is not None and candidate_idx.size > n_candidates:
        picks = np.linspace(0, candidate_idx.size - 1, n_candidates).astype(int)
        candidate_idx = candidate_idx[picks]

    best_pos = candidate_idx[np.argmax(f_scores[candidate_idx])]
    best_f = float(f_scores[best_pos])
    cut_score = sorted_scores[best_pos]
    # Threshold is placed so that `scores > tau` selects exactly the top block.
    below = sorted_scores[sorted_scores < cut_score]
    if below.size:
        tau = float((cut_score + below.max()) / 2.0)
    else:
        tau = float(cut_score - 1e-12 - abs(cut_score) * 1e-12)
    return tau, best_f


def quantile_threshold(scores: np.ndarray, quantile: float = 0.95) -> float:
    """Label-free threshold at the given quantile of the score distribution."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if scores.size == 0:
        raise ValueError("scores must not be empty")
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be strictly between 0 and 1")
    return float(np.quantile(scores, quantile))
