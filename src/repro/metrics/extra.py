"""Additional metrics useful for IDS evaluation beyond those in the paper.

Operational security teams usually care about the false-alarm budget, so a
few score-based operating-point metrics are provided: detection rate at a
fixed false-positive rate and the false-positive rate needed to reach a
target recall, plus the standard MCC / balanced-accuracy summaries.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.classification import confusion_matrix
from repro.metrics.ranking import roc_curve
from repro.utils.validation import check_binary_labels, check_consistent_length

__all__ = [
    "matthews_corrcoef",
    "balanced_accuracy_score",
    "false_positive_rate",
    "detection_rate_at_fpr",
    "fpr_at_recall",
]


def matthews_corrcoef(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Matthews correlation coefficient (0.0 when any marginal is degenerate)."""
    cm = confusion_matrix(y_true, y_pred)
    tn, fp = cm[0]
    fn, tp = cm[1]
    numerator = tp * tn - fp * fn
    denominator = np.sqrt(
        float(tp + fp) * float(tp + fn) * float(tn + fp) * float(tn + fn)
    )
    if denominator == 0.0:
        return 0.0
    return float(numerator / denominator)


def balanced_accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of the true-positive rate and the true-negative rate."""
    cm = confusion_matrix(y_true, y_pred)
    tn, fp = cm[0]
    fn, tp = cm[1]
    tpr = tp / (tp + fn) if (tp + fn) else 0.0
    tnr = tn / (tn + fp) if (tn + fp) else 0.0
    return float((tpr + tnr) / 2.0)


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of normal samples incorrectly flagged as attacks."""
    cm = confusion_matrix(y_true, y_pred)
    tn, fp = cm[0]
    if tn + fp == 0:
        return 0.0
    return float(fp / (tn + fp))


def detection_rate_at_fpr(
    y_true: np.ndarray, scores: np.ndarray, max_fpr: float = 0.01
) -> float:
    """Highest attainable recall while keeping the false-positive rate at or below ``max_fpr``."""
    if not 0.0 <= max_fpr <= 1.0:
        raise ValueError("max_fpr must be in [0, 1]")
    y_true = check_binary_labels(y_true, name="y_true")
    check_consistent_length(y_true, scores)
    fpr, tpr, _ = roc_curve(y_true, np.asarray(scores, dtype=np.float64))
    feasible = fpr <= max_fpr + 1e-12
    if not np.any(feasible):
        return 0.0
    return float(tpr[feasible].max())


def fpr_at_recall(
    y_true: np.ndarray, scores: np.ndarray, min_recall: float = 0.95
) -> float:
    """Smallest false-positive rate that achieves at least ``min_recall`` detection.

    Returns 1.0 when the requested recall is unreachable at any threshold.
    """
    if not 0.0 <= min_recall <= 1.0:
        raise ValueError("min_recall must be in [0, 1]")
    y_true = check_binary_labels(y_true, name="y_true")
    check_consistent_length(y_true, scores)
    fpr, tpr, _ = roc_curve(y_true, np.asarray(scores, dtype=np.float64))
    feasible = tpr >= min_recall - 1e-12
    if not np.any(feasible):
        return 1.0
    return float(fpr[feasible].min())
