"""Threshold-free ranking metrics: precision-recall and ROC curves and their AUCs.

PR-AUC is computed as average precision (step-wise integration of the PR
curve), the convention the paper follows when citing Davis & Goadrich (2006).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_labels, check_consistent_length

__all__ = [
    "precision_recall_curve",
    "average_precision_score",
    "pr_auc_score",
    "roc_curve",
    "roc_auc_score",
]


def _validate_scores(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_binary_labels(y_true, name="y_true")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    check_consistent_length(y_true, scores)
    if not np.all(np.isfinite(scores)):
        raise ValueError("scores contain NaN or infinite values")
    return y_true, scores


def _binary_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative true/false positives at every distinct score threshold (descending)."""
    order = np.argsort(-scores, kind="stable")
    scores_sorted = scores[order]
    y_sorted = y_true[order]
    # Indices where the score changes — thresholds are the distinct score values.
    distinct = np.flatnonzero(np.diff(scores_sorted)) if scores_sorted.size > 1 else np.array([], dtype=int)
    threshold_idx = np.concatenate([distinct, [scores_sorted.size - 1]])
    tps = np.cumsum(y_sorted)[threshold_idx].astype(np.float64)
    fps = (threshold_idx + 1 - tps).astype(np.float64)
    thresholds = scores_sorted[threshold_idx]
    return fps, tps, thresholds


def precision_recall_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns
    -------
    precision, recall, thresholds:
        Arrays where ``precision[i]``/``recall[i]`` correspond to predicting
        positive for ``score >= thresholds[i]``.  A final (1, 0) point is
        appended to the precision/recall arrays following the usual
        convention.
    """
    y_true, scores = _validate_scores(y_true, scores)
    fps, tps, thresholds = _binary_curve(y_true, scores)
    n_positive = tps[-1] if tps.size else 0.0
    denom = tps + fps
    precision = np.divide(tps, denom, out=np.zeros_like(tps), where=denom > 0)
    if n_positive > 0:
        recall = tps / n_positive
    else:
        recall = np.zeros_like(tps)
    precision = np.concatenate([precision, [1.0]])
    recall = np.concatenate([recall, [0.0]])
    return precision, recall, thresholds


def average_precision_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Average precision: ``sum_i (R_i - R_{i-1}) * P_i`` over increasing recall."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    # Drop the appended (precision=1, recall=0) sentinel; the remaining points
    # run from the highest threshold (lowest recall) to the lowest threshold
    # (recall=1), so recall is non-decreasing along the array.
    precision = precision[:-1]
    recall = recall[:-1]
    recall_steps = np.diff(np.concatenate([[0.0], recall]))
    return float(np.sum(recall_steps * precision))


def pr_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Alias for :func:`average_precision_score`, the PR-AUC the paper reports."""
    return average_precision_score(y_true, scores)


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive and true-positive rates at every distinct threshold."""
    y_true, scores = _validate_scores(y_true, scores)
    fps, tps, thresholds = _binary_curve(y_true, scores)
    n_positive = tps[-1] if tps.size else 0.0
    n_negative = fps[-1] if fps.size else 0.0
    tpr = tps / n_positive if n_positive > 0 else np.zeros_like(tps)
    fpr = fps / n_negative if n_negative > 0 else np.zeros_like(fps)
    fpr = np.concatenate([[0.0], fpr])
    tpr = np.concatenate([[0.0], tpr])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via trapezoidal integration."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))
