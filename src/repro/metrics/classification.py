"""Threshold-based binary classification metrics."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_labels, check_consistent_length

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "fbeta_score",
    "classification_report",
]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Binary confusion matrix ``[[tn, fp], [fn, tp]]``."""
    y_true = check_binary_labels(y_true, name="y_true")
    y_pred = check_binary_labels(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = check_binary_labels(y_true, name="y_true")
    y_pred = check_binary_labels(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Precision ``tp / (tp + fp)`` (0.0 when no positive predictions)."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fp = cm[1, 1], cm[0, 1]
    if tp + fp == 0:
        return 0.0
    return float(tp / (tp + fp))


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Recall ``tp / (tp + fn)`` (0.0 when no positive labels)."""
    cm = confusion_matrix(y_true, y_pred)
    tp, fn = cm[1, 1], cm[1, 0]
    if tp + fn == 0:
        return 0.0
    return float(tp / (tp + fn))


def fbeta_score(y_true: np.ndarray, y_pred: np.ndarray, beta: float = 1.0) -> float:
    """F-beta score; ``beta=1`` is the F1 score reported throughout the paper."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    beta2 = beta**2
    return float((1 + beta2) * precision * recall / (beta2 * precision + recall))


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    return fbeta_score(y_true, y_pred, beta=1.0)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """Dictionary of the standard binary metrics for a prediction vector."""
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred),
        "recall": recall_score(y_true, y_pred),
        "f1": f1_score(y_true, y_pred),
    }
