"""Classification and ranking metrics.

Implements everything the paper's evaluation relies on: F1 score for
thresholded predictions, PR-AUC (chosen over ROC-AUC due to class imbalance),
and the Best-F threshold-selection rule used by CND-IDS.
"""

from repro.metrics.classification import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    fbeta_score,
    precision_score,
    recall_score,
)
from repro.metrics.extra import (
    balanced_accuracy_score,
    detection_rate_at_fpr,
    false_positive_rate,
    fpr_at_recall,
    matthews_corrcoef,
)
from repro.metrics.ranking import (
    average_precision_score,
    pr_auc_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)
from repro.metrics.thresholds import best_f_threshold, quantile_threshold

__all__ = [
    "matthews_corrcoef",
    "balanced_accuracy_score",
    "false_positive_rate",
    "detection_rate_at_fpr",
    "fpr_at_recall",
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "fbeta_score",
    "classification_report",
    "precision_recall_curve",
    "average_precision_score",
    "pr_auc_score",
    "roc_curve",
    "roc_auc_score",
    "best_f_threshold",
    "quantile_threshold",
]
