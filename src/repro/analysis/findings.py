"""Finding: one linter diagnostic, with enough identity to survive line drift.

A finding is identified for baseline purposes by ``(rule, path, context,
line_text)`` rather than by line number: grandfathered findings keep matching
after unrelated edits shift the file, but stop matching the moment the
offending line itself changes — at which point the author must re-justify or
fix it.  ``to_dict`` emits the same shape ``repro lint --format json`` writes,
one JSON object per line, so the stream round-trips through
:func:`repro.serve.sinks.read_events` like any other event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Finding", "SEVERITIES"]

#: Recognised severities, most severe first (report verdicts map ``error`` to
#: a major check failure and ``warning`` to a minor one).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Enclosing ``Class.method`` qualname, or ``"<module>"``.
    context: str = "<module>"
    #: The stripped source line the finding points at (baseline identity).
    line_text: str = ""
    #: True when a committed baseline entry grandfathers this finding.
    baselined: bool = field(default=False, compare=False)

    def key(self) -> tuple[str, str, str, str]:
        """Line-drift-tolerant identity used for baseline matching."""
        return (self.rule, self.path, self.context, self.line_text)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "type": "lint_finding",
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "line_text": self.line_text,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            severity=payload["severity"],
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=payload["message"],
            context=payload.get("context", "<module>"),
            line_text=payload.get("line_text", ""),
            baselined=bool(payload.get("baselined", False)),
        )
