"""RL003 — pickle ban: no pickle-family serialization in ``repro.serve``.

Serving snapshots are deliberately pickle-free (versioned npz + JSON
manifests) so artifacts are portable, auditable, and safe to load from a
registry a crashed process left behind.  This rule bans, under
``repro/serve/``:

- importing ``pickle`` / ``cPickle`` / ``_pickle`` / ``dill`` / ``shelve`` /
  ``joblib`` (import or from-import, any alias);
- calling through those modules via any tracked alias;
- ``numpy.load(..., allow_pickle=True)`` — the backdoor version of the same
  mistake.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, ScopedVisitor, dotted_name, in_serve_package

__all__ = ["PickleBanRule"]

_BANNED_MODULES = frozenset(
    {"pickle", "cPickle", "_pickle", "dill", "shelve", "joblib"}
)


class _Visitor(ScopedVisitor):
    def __init__(self, rule: "PickleBanRule", module: ParsedModule) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        #: Local aliases bound to banned modules (``import pickle as pkl``).
        self.banned_aliases: set[str] = set()

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.rule.finding(self.module, node, message, context=self.qualname)
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                self.banned_aliases.add(alias.asname or root)
                self._flag(
                    node,
                    f"`import {alias.name}` in repro.serve — snapshots are "
                    "pickle-free by contract; use the snapshot/manifest API",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in _BANNED_MODULES:
                self._flag(
                    node,
                    f"`from {node.module} import ...` in repro.serve — "
                    "pickle-family serialization is banned here",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[0] in self.banned_aliases:
            self._flag(node, f"call through banned module: `{dotted}`")
        for keyword in node.keywords:
            if (
                keyword.arg == "allow_pickle"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                self._flag(
                    node,
                    "`allow_pickle=True` re-enables pickle under numpy; "
                    "serve artifacts must load with allow_pickle=False",
                )
        self.generic_visit(node)


class PickleBanRule(Rule):
    rule_id = "RL003"
    title = "No pickle/joblib serialization inside repro.serve"
    severity = "error"
    false_negatives = (
        "Dynamic imports (`importlib.import_module('pickle')`) and modules "
        "re-exported under an untracked name are not seen."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        if not in_serve_package(module):
            return ()
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
