"""RL005 — exception hygiene: no silent swallowing, ever; serve paths react.

Fault tolerance in this stack is *explicit*: a worker crash becomes a
``WorkerRestart`` event, a failing sink becomes ``SinkDisabled``, a torn
registry version is quarantined with a ``RegistryRecovery`` record.  A
handler that silently eats an exception deletes that audit trail.  Three
checks, strictest first:

1. bare ``except:`` — banned everywhere (it catches ``KeyboardInterrupt``
   and ``SystemExit``, breaking graceful shutdown);
2. ``except Exception/BaseException`` whose body is only ``pass``/``...`` —
   banned everywhere;
3. under ``repro/serve/``, a broad handler must *do* something: re-raise,
   or make at least one call (emit an event, log, retry, clean up).  A
   handler body with no ``raise`` and no call expression is treated as
   swallowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, ScopedVisitor, in_serve_package

__all__ = ["ExceptionHygieneRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(
        isinstance(c, ast.Name) and c.id in _BROAD for c in candidates
    )


def _body_is_noop(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


def _body_reacts(body: list[ast.stmt]) -> bool:
    """True when the handler re-raises, returns a value, or calls anything."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call)):
                return True
            if isinstance(node, ast.Return) and node.value is not None:
                return True
            if isinstance(node, (ast.Continue, ast.Break)):
                return True
    return False


class _Visitor(ScopedVisitor):
    def __init__(self, rule: "ExceptionHygieneRule", module: ParsedModule) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.in_serve = in_serve_package(module)
        self.findings: list[Finding] = []

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit and "
                    "breaks graceful shutdown; name the exceptions",
                    context=self.qualname,
                )
            )
        elif _is_broad(node):
            if _body_is_noop(node.body):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "broad `except` with a pass-only body silently "
                        "swallows failures; handle, log, or re-raise",
                        context=self.qualname,
                    )
                )
            elif self.in_serve and not _body_reacts(node.body):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "broad `except` in repro.serve neither re-raises nor "
                        "calls anything (emit/log/retry); degradations must "
                        "leave an audit trail",
                        context=self.qualname,
                    )
                )
        self.generic_visit(node)


class ExceptionHygieneRule(Rule):
    rule_id = "RL005"
    title = "No bare/ swallowed excepts; serve handlers re-raise or emit"
    severity = "error"
    false_negatives = (
        "A serve handler that calls something irrelevant (e.g. str()) "
        "counts as reacting; semantic usefulness of the reaction is not "
        "judged."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
