"""RL012 — cross-module determinism taint: serve paths reaching RL001 sites.

RL001 flags a nondeterministic primitive *where it is called*.  That misses
the dangerous pattern: a helper in ``repro/utils`` quietly calls
``time.time()``, and a scoring path in ``repro/serve`` calls the helper —
no single module looks wrong, but the serving contract (bit-identical
sequential/thread/process runs) is broken two modules away.  Using the
pass-1 call graph (:mod:`repro.analysis.project`), this rule:

1. collects **taint seeds** — every RL001 primitive site in a
   non-allowlisted ``repro`` module, *excluding* sites silenced by an
   inline ``# reprolint: disable`` or matched by the committed baseline
   (a grandfathered seed must not cascade new findings);
2. propagates taint backwards over call edges to a fixpoint, carrying the
   seed primitive and location as the witness;
3. flags every function in a ``repro/serve`` module (telemetry excluded,
   matching RL001's allowlist) that has a *direct call edge* to a tainted
   callee, anchored at the call site — the serve-side entry point of the
   nondeterministic chain.  Functions containing a seed themselves are
   RL001's findings, not repeated here.

Documented false negatives: everything the call graph cannot resolve
(calls through variables, containers, ``getattr``, dependency injection)
breaks the chain; constructors are not edges, so taint in ``__init__`` does
not propagate to callers of the class.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, in_repro_package, in_serve_package
from repro.analysis.rules.rl001_determinism import (
    determinism_allowlisted,
    iter_determinism_sites,
)

__all__ = ["DeterminismTaintRule"]


def _function_key_for(project, display: str, qualname: str) -> str | None:
    """Map a (possibly nested) qualname onto a recorded project function."""
    from repro.analysis.project import function_key

    parts = qualname.split(".")
    while parts:
        key = function_key(display, ".".join(parts))
        if key in project.functions:
            return key
        parts.pop()
    return None


class DeterminismTaintRule(Rule):
    rule_id = "RL012"
    title = "Serve paths must not transitively reach nondeterministic calls"
    severity = "error"
    false_negatives = (
        "Unresolvable calls (variables, containers, getattr, injected "
        "callables) break the taint chain, and constructor calls are not "
        "call-graph edges."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        project = context.project
        if project is None:
            from repro.analysis.project import build_project

            project = build_project(context)

        # 1. Taint seeds, minus suppressed/baselined RL001 sites.
        seeds: dict[str, tuple[str, str, int]] = {}
        for module in context.modules:
            if not in_repro_package(module) or determinism_allowlisted(module):
                continue
            for node, qualname, name, _message in iter_determinism_sites(module):
                if module.is_suppressed(node.lineno, "RL001"):
                    continue
                if context.baseline is not None:
                    pseudo = Finding(
                        rule="RL001",
                        severity="error",
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=_message,
                        context=qualname,
                        line_text=module.line_text(node.lineno),
                    )
                    if context.baseline.matches(pseudo):
                        continue
                key = _function_key_for(project, module.display_path, qualname)
                if key is not None:
                    seeds.setdefault(
                        key, (name, module.display_path, node.lineno)
                    )
        if not seeds:
            return ()

        # 2. Fixpoint propagation backwards over call edges.
        tainted: dict[str, tuple[str, str, int]] = dict(seeds)
        changed = True
        while changed:
            changed = False
            for caller, edges in project.call_edges.items():
                if caller in tainted:
                    continue
                for callee in edges:
                    if callee in tainted:
                        tainted[caller] = tainted[callee]
                        changed = True
                        break

        # 3. Flag serve functions with a direct edge into the tainted set.
        modules_by_display = {m.display_path: m for m in context.modules}
        findings: list[Finding] = []
        for caller, edges in sorted(project.call_edges.items()):
            display, _, qualname = caller.partition("::")
            module = modules_by_display.get(display)
            if module is None or not in_serve_package(module):
                continue
            if determinism_allowlisted(module):
                continue
            if caller in seeds:
                continue  # RL001 already owns the direct finding
            for callee, lineno in sorted(edges.items()):
                if callee not in tainted:
                    continue
                primitive, seed_path, seed_line = tainted[callee]
                callee_display, _, callee_qualname = callee.partition("::")
                findings.append(
                    self.finding(
                        module,
                        None,
                        f"`{qualname}` calls `{callee_qualname}` "
                        f"({callee_display}), which transitively reaches "
                        f"nondeterministic `{primitive}` at "
                        f"{seed_path}:{seed_line}; seed it explicitly or "
                        "baseline the seed with a reason",
                        context=qualname,
                        line=lineno,
                    )
                )
        return findings
