"""Rule base class and the AST helpers every rule shares.

A rule is a small object with an id, a severity, and two hooks:
``check_module`` (called once per parsed file) and ``finalize`` (called once
after every file has been seen, for whole-package contracts).  Rules scope
themselves by *path shape* — ``repro/serve/`` and friends — rather than by
import location, so fixture tests can lint an in-memory module under any
pretend path and the CLI behaves identically on a copied tree.

Writing a new rule
------------------

1. Create ``rules/rlNNN_<slug>.py``.  The module docstring *is* the
   contract's specification: say what invariant the rule protects, why the
   serving stack relies on it, and list the documented false negatives.
2. Subclass :class:`Rule`; set ``rule_id`` (``"RLNNN"``), ``title``,
   ``severity`` (``"error"`` or ``"warning"``) and ``false_negatives``.
3. Implement ``check_module`` for per-file checks, or ``finalize`` for
   whole-tree contracts.  ``finalize`` rules may consult
   ``context.project`` — the resolved symbol table / call graph built by
   :mod:`repro.analysis.project` — and ``context.docs`` for README
   cross-checks.  A finalize rule that keys on specific home modules must
   degrade gracefully when only a subtree is scanned (see RL006/RL010:
   skip the check when the producing side is absent, so ``repro lint
   one_file.py`` never emits spurious whole-tree findings).
4. Produce findings via :meth:`Rule.finding` (anchored on a module + node,
   capturing context qualname and line text for baseline identity) or
   :meth:`Rule.doc_finding` (anchored on a markdown file).
5. Register the class in ``rules/__init__.py``'s ``RULE_CLASSES`` and add a
   ``tests/analysis/fixtures/rlNNN_bad.py`` / ``rlNNN_good.py`` twin plus a
   ``CASES`` entry in ``tests/analysis/test_rules_fixtures.py`` with exact
   rule-id + line assertions.  The good twin must stay clean under the
   *full* rule set, not just the new rule.
6. Bump the rule's ``version`` class attribute whenever its semantics
   change: the incremental cache (:mod:`repro.analysis.cache`) keys stored
   findings on the engine + per-rule versions, so a semantics change
   invalidates stale cached findings instead of silently replaying them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "ScopedVisitor",
    "dotted_name",
    "has_consecutive_parts",
    "in_repro_package",
    "in_serve_package",
]


def has_consecutive_parts(module: ParsedModule, *wanted: str) -> bool:
    """True when ``wanted`` appears as consecutive path components."""
    parts = module.parts
    n = len(wanted)
    return any(parts[i : i + n] == wanted for i in range(len(parts) - n + 1))


def in_repro_package(module: ParsedModule) -> bool:
    return "repro" in module.parts


def in_serve_package(module: ParsedModule) -> bool:
    return has_consecutive_parts(module, "repro", "serve")


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing ``Class.method`` qualname."""

    def __init__(self) -> None:
        self._scope: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope) or "<module>"

    def _visit_scope(self, node: ast.AST) -> None:
        self._scope.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._scope.pop()

    visit_ClassDef = _visit_scope
    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope


class Rule:
    """Base class; subclasses set the id/title/severity and the hooks."""

    rule_id: str = "RL000"
    title: str = ""
    severity: str = "error"
    #: One-paragraph statement of what the rule intentionally does NOT catch.
    false_negatives: str = ""
    #: Bumped on any semantics change; part of the incremental-cache
    #: fingerprint so stale cached findings are invalidated, not replayed.
    version: int = 1

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        return ()

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        module: ParsedModule,
        node: ast.AST | None,
        message: str,
        *,
        context: str = "<module>",
        line: int | None = None,
        col: int | None = None,
        severity: str | None = None,
    ) -> Finding:
        lineno = line if line is not None else getattr(node, "lineno", 1)
        column = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            severity=severity if severity is not None else self.severity,
            path=module.display_path,
            line=lineno,
            col=column,
            message=message,
            context=context,
            line_text=module.line_text(lineno),
        )

    def doc_finding(
        self, display_path: str, line: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=display_path,
            line=line,
            col=0,
            message=message,
        )


def collect_bound_names(statements: Sequence[ast.stmt]) -> set[str]:
    """Names bound at module level, descending into Try/If/For/With blocks."""
    bound: set[str] = set()
    for stmt in statements:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bound.update(_target_names(target))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            bound.add(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            bound.add(stmt.target.id)
        elif isinstance(stmt, ast.Try):
            bound.update(collect_bound_names(stmt.body))
            for handler in stmt.handlers:
                bound.update(collect_bound_names(handler.body))
            bound.update(collect_bound_names(stmt.orelse))
            bound.update(collect_bound_names(stmt.finalbody))
        elif isinstance(stmt, ast.If):
            bound.update(collect_bound_names(stmt.body))
            bound.update(collect_bound_names(stmt.orelse))
        elif isinstance(stmt, (ast.For, ast.While)):
            bound.update(collect_bound_names(stmt.body))
            bound.update(collect_bound_names(stmt.orelse))
        elif isinstance(stmt, ast.With):
            bound.update(collect_bound_names(stmt.body))
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()
