"""RL010 — event-schema consistency: producers and consumers cannot drift.

Every component of the serving stack communicates through JSONL event dicts
discriminated by a literal ``"type"`` key: sinks write them, ``report.py``
condenses them into timelines, ``traceview`` and ``load_lint_events`` read
them back.  Nothing but convention keeps a producer's key set and a
consumer's literal reads in sync — until this rule.  Using the whole scanned
tree it builds:

- the **producer universe**: every dict literal containing a constant
  ``"type"`` key (``{"type": "alert", ...}``) plus every constant store
  ``d["type"] = "alert"``.  A type's key set is the union of its literal
  producers' constant keys; a producer with ``**`` unpacking, non-constant
  keys, or subscript-store construction marks the type *dynamic* (type-name
  checks still apply, key-completeness checks are skipped for it);
- the **consumer sites**: literal comparisons ``x.get("type") == "alert"``
  / ``x["type"] == "alert"`` anywhere, plus module-level ``*_TYPES``
  set/frozenset/tuple literals of strings (the membership-test idiom in
  ``telemetry/report.py``).

Checks (all skipped when the scan contains no literal producer at all, so
linting one file never emits spurious whole-tree findings):

1. every consumed type name must be produced somewhere in the scan;
2. inside an ``if x.get("type") == "T":`` block, constant subscript reads
   ``x["k"]`` must be keys some static producer of ``T`` writes;
3. a class with both ``to_dict`` and ``from_dict`` must have every required
   ``payload["k"]`` subscript in ``from_dict`` covered by a constant key
   its ``to_dict`` produces.

Documented false negatives: types flowing through variables
(``{"type": kind}``) are invisible as producers; key reads via ``.get()``
are tolerant by construction and not checked; span-dict key drift between
``tracing.py`` producers and ``traceview`` readers is out of scope (spans
carry no ``"type"`` discriminator).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, ScopedVisitor

__all__ = ["EventSchemaConsistencyRule"]


@dataclass
class _Producers:
    """Everything the scan produces, keyed by literal event type."""

    keys: dict[str, set[str]] = field(default_factory=dict)
    dynamic: set[str] = field(default_factory=set)

    def record_literal(self, type_name: str, dict_node: ast.Dict) -> None:
        bucket = self.keys.setdefault(type_name, set())
        static = True
        for key in dict_node.keys:
            if key is None:  # ** unpacking
                static = False
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                bucket.add(key.value)
            else:
                static = False
        if not static:
            self.dynamic.add(type_name)

    def record_store(self, type_name: str) -> None:
        # ``d["type"] = "T"``: the surrounding construction is not a single
        # literal, so the key set cannot be trusted as complete.
        self.keys.setdefault(type_name, set())
        self.dynamic.add(type_name)


def _type_read(node: ast.expr) -> str | None:
    """Variable name when ``node`` is ``x["type"]`` or ``x.get("type")``."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "type"
        and isinstance(node.value, ast.Name)
    ):
        return node.value.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "type"
    ):
        return node.func.value.id
    return None


def _literal_strings(node: ast.expr) -> list[str] | None:
    if isinstance(node, ast.Call) and node.args:
        name = getattr(node.func, "id", getattr(node.func, "attr", None))
        if name in ("frozenset", "set", "tuple", "list"):
            return _literal_strings(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.append(element.value)
        return values
    return None


class _ProducerScan(ast.NodeVisitor):
    def __init__(self, producers: _Producers) -> None:
        self.producers = producers

    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                self.producers.record_literal(value.value, node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "type"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.producers.record_store(node.value.value)
        self.generic_visit(node)


class _ConsumerScan(ScopedVisitor):
    def __init__(self, module: ParsedModule) -> None:
        super().__init__()
        self.module = module
        #: (type name, node, qualname) for every literal type comparison.
        self.compared: list[tuple[str, ast.AST, str]] = []
        #: (type name, node) from module-level ``*_TYPES`` literals.
        self.type_sets: list[tuple[str, ast.AST]] = []
        #: (type name, key, node, qualname) for guarded subscript reads.
        self.guarded_reads: list[tuple[str, str, ast.AST, str]] = []

    def visit_Compare(self, node: ast.Compare) -> None:
        self._check_compare(node)
        self.generic_visit(node)

    def _check_compare(self, node: ast.Compare) -> str | None:
        """Returns the compared type name for an ``== "T"`` type test."""
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
            return None
        left, right = node.left, node.comparators[0]
        var = _type_read(left)
        const = right if isinstance(right, ast.Constant) else None
        if var is None:
            var = _type_read(right)
            const = left if isinstance(left, ast.Constant) else None
        if var is None or const is None or not isinstance(const.value, str):
            return None
        self.compared.append((const.value, node, self.qualname))
        return const.value

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id.endswith("_TYPES")
                and self.qualname == "<module>"
            ):
                values = _literal_strings(node.value)
                if values is not None:
                    for value in values:
                        self.type_sets.append((value, node))
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        guard: tuple[str, str] | None = None
        if isinstance(node.test, ast.Compare):
            type_name = self._peek_type_test(node.test)
            if type_name is not None:
                var = _type_read(node.test.left) or _type_read(
                    node.test.comparators[0]
                )
                if var is not None:
                    guard = (var, type_name)
        if guard is not None:
            var, type_name = guard
            for child in node.body:
                for sub in ast.walk(child):
                    if (
                        isinstance(sub, ast.Subscript)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == var
                        and isinstance(sub.ctx, ast.Load)
                        and isinstance(sub.slice, ast.Constant)
                        and isinstance(sub.slice.value, str)
                    ):
                        self.guarded_reads.append(
                            (type_name, sub.slice.value, sub, self.qualname)
                        )
        self.generic_visit(node)

    @staticmethod
    def _peek_type_test(node: ast.Compare) -> str | None:
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
            return None
        left, right = node.left, node.comparators[0]
        if _type_read(left) is not None and isinstance(right, ast.Constant):
            return right.value if isinstance(right.value, str) else None
        if _type_read(right) is not None and isinstance(left, ast.Constant):
            return left.value if isinstance(left.value, str) else None
        return None


def _dict_pair_issues(cls: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """Required ``payload["k"]`` reads in from_dict missing from to_dict."""
    to_dict = from_dict = None
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "to_dict":
                to_dict = stmt
            elif stmt.name == "from_dict":
                from_dict = stmt
    if to_dict is None or from_dict is None:
        return []
    produced: set[str] = set()
    static = False
    for node in ast.walk(to_dict):
        if isinstance(node, ast.Dict):
            static = True
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    produced.add(key.value)
                else:
                    static = False
    if not static:
        return []
    payload_names = {arg.arg for arg in from_dict.args.args} - {"cls", "self"}
    issues: list[tuple[str, ast.AST]] = []
    for node in ast.walk(from_dict):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in payload_names
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and node.slice.value not in produced
        ):
            issues.append((node.slice.value, node))
    return issues


class EventSchemaConsistencyRule(Rule):
    rule_id = "RL010"
    title = "Event producers and consumers agree on types and keys"
    severity = "error"
    false_negatives = (
        "Types flowing through variables are invisible as producers, "
        "tolerant `.get()` key reads are never checked, and span-dict key "
        "drift (no `type` discriminator) is out of scope."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        producers = _Producers()
        for module in context.modules:
            _ProducerScan(producers).visit(module.tree)
        if not producers.keys:
            return ()

        findings: list[Finding] = []
        for module in context.modules:
            scan = _ConsumerScan(module)
            scan.visit(module.tree)
            for type_name, node, qualname in scan.compared:
                if type_name not in producers.keys:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f'consumed event type "{type_name}" is produced '
                            "nowhere in the scanned tree; fix the typo or "
                            "add the producer",
                            context=qualname,
                        )
                    )
            for type_name, node in scan.type_sets:
                if type_name not in producers.keys:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f'type-set entry "{type_name}" is produced '
                            "nowhere in the scanned tree; fix the typo or "
                            "add the producer",
                        )
                    )
            for type_name, key, node, qualname in scan.guarded_reads:
                if (
                    type_name in producers.keys
                    and type_name not in producers.dynamic
                    and key not in producers.keys[type_name]
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f'reads ["{key}"] from a "{type_name}" event, '
                            "but no producer of that type writes this key",
                            context=qualname,
                        )
                    )
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    for key, node in _dict_pair_issues(stmt):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f'from_dict requires payload["{key}"] but '
                                f"to_dict of {stmt.name} never writes it; "
                                "the round-trip cannot survive",
                                context=f"{stmt.name}.from_dict",
                            )
                        )
        return findings
