"""RL009 — resource lifecycle: serve-layer resources are released on all paths.

The serving stack holds real OS resources: executors with worker threads or
processes, the ``--status-port`` HTTP server, span-trace file handles, and
the registry's ``flock`` writer lock.  A resource acquired on one path and
leaked on another is exactly the bug class that survives happy-path tests
and kills a long-lived service (PR 9's ``StatusServer`` and PR 3/6's
executor teardown are the motivating audits).  For every module under
``repro/serve``, an *acquisition* — a call to one of

- ``ThreadPoolExecutor`` / ``ProcessPoolExecutor``,
- ``ThreadingHTTPServer`` / ``HTTPServer``,
- ``SpanTracer``,
- builtin ``open``,
- ``fcntl.flock(x, LOCK_EX)`` (lock acquisition form)

must be released on every path.  Accepted disciplines, per acquisition:

- a ``with`` statement (``with ThreadPoolExecutor(...) as pool``,
  ``with open(...) as fh``, ``with closing(obj)``);
- ownership transfer: the object is returned, yielded, or passed to another
  call (whoever receives it owns the release);
- a local binding released by a ``close``/``shutdown``/``server_close``/
  ``stop``/``terminate``/``release`` call *inside a* ``finally`` *block* of
  the same function — a release reachable only on the happy path is flagged
  with its own message;
- an instance attribute (``self.x = acquire()``) on a class that releases
  ``self.x`` in some method (the registered-``close()`` idiom used by
  ``JsonlSink`` and ``SpanTracer`` themselves);
- ``flock(x, LOCK_EX)`` paired with ``flock(x, LOCK_UN)`` in a ``finally``
  block of the same function.

Documented false negatives: aliasing (``y = x``) is not tracked, a release
behind a helper function is not seen, conditional acquisitions are treated
as acquired, and a ``with`` block that leaks the object out of its body is
trusted.  Calls through variables holding the constructor are not seen.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, dotted_name, in_serve_package

__all__ = ["ResourceLifecycleRule"]

#: Constructor names (last dotted component) that acquire a resource.
_ACQUIRERS = frozenset(
    {
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "ThreadingHTTPServer",
        "HTTPServer",
        "SpanTracer",
        "open",
    }
)
#: Method names that count as releasing a resource.
_RELEASERS = frozenset(
    {"close", "shutdown", "server_close", "stop", "terminate", "release"}
)


def _call_name(node: ast.Call) -> str | None:
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return dotted.rsplit(".", 1)[-1]


def _acquisition_call(node: ast.expr) -> ast.Call | None:
    """The acquiring Call under ``node``, looking through ``x if c else y``."""
    if isinstance(node, ast.IfExp):
        return _acquisition_call(node.body) or _acquisition_call(node.orelse)
    if isinstance(node, ast.Call) and _call_name(node) in _ACQUIRERS:
        return node
    return None


def _is_flock(node: ast.Call, mode: str) -> str | None:
    """Locked-object dotted name when ``node`` is ``flock(x, LOCK_<mode>)``."""
    if _call_name(node) != "flock" or len(node.args) < 2:
        return None
    flag = dotted_name(node.args[1])
    if flag is None or not flag.endswith(f"LOCK_{mode}"):
        return None
    return dotted_name(node.args[0])


class _FunctionAuditor(ast.NodeVisitor):
    """Audit one function body: acquisitions vs releases/escapes."""

    def __init__(self) -> None:
        #: local name -> (assign node, constructor name) for tracked locals.
        self.local_acquisitions: dict[str, tuple[ast.AST, str]] = {}
        #: self attr -> (assign node, constructor name).
        self.attr_acquisitions: dict[str, tuple[ast.AST, str]] = {}
        #: flock-EX calls: locked-object dotted name -> call node.
        self.flock_acquisitions: dict[str, ast.Call] = {}
        #: names released anywhere / released inside a finally block.
        self.released: set[str] = set()
        self.released_in_finally: set[str] = set()
        #: flock-UN'd object names inside a finally block.
        self.unlocked_in_finally: set[str] = set()
        #: names that escape the function (returned/yielded/passed along).
        self.escaped: set[str] = set()
        #: names entered via ``with name:`` / rebound by a with-item.
        self.with_managed: set[str] = set()
        self._finally_depth = 0

    # -- acquisition sites ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        call = _acquisition_call(node.value)
        if call is not None:
            for target in node.targets:
                self._record_target(target, node, _call_name(call) or "")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            call = _acquisition_call(node.value)
            if call is not None:
                self._record_target(node.target, node, _call_name(call) or "")
        self.generic_visit(node)

    def _record_target(self, target: ast.expr, node: ast.AST, ctor: str) -> None:
        if isinstance(target, ast.Name):
            self.local_acquisitions[target.id] = (node, ctor)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.attr_acquisitions[target.attr] = (node, ctor)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            expr = item.context_expr
            name = dotted_name(expr)
            if name is not None:
                self.with_managed.add(name)
            if isinstance(expr, ast.Call):
                # ``with closing(x)`` / ``with stack.enter_context(x)``:
                # the argument names become managed too.
                for arg in expr.args:
                    arg_name = dotted_name(arg)
                    if arg_name is not None:
                        self.with_managed.add(arg_name)
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body + node.handlers + node.orelse:  # type: ignore[operator]
            self.visit(child)
        self._finally_depth += 1
        for child in node.finalbody:
            self.visit(child)
        self._finally_depth -= 1

    # -- release / escape sites -------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _RELEASERS:
            owner = dotted_name(func.value)
            if owner is not None:
                self.released.add(owner)
                if self._finally_depth:
                    self.released_in_finally.add(owner)
        locked = _is_flock(node, "EX")
        if locked is not None:
            self.flock_acquisitions.setdefault(locked, node)
        unlocked = _is_flock(node, "UN")
        if unlocked is not None and self._finally_depth:
            self.unlocked_in_finally.add(unlocked)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record_escape(arg)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._record_escape(node.value)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            self._record_escape(node.value)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._record_escape(node.value)
        self.generic_visit(node)

    def _record_escape(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            name = dotted_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
            if name is not None:
                self.escaped.add(name)

    # Nested defs get their own audit; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _class_releases(cls: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names some method of ``cls`` calls a releaser on."""
    released: set[str] = set()
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASERS
            ):
                owner = dotted_name(node.func.value)
                if owner is not None and owner.startswith("self."):
                    released.add(owner.split(".", 2)[1])
    return released


class ResourceLifecycleRule(Rule):
    rule_id = "RL009"
    title = "Serve-layer resources are released on all paths"
    severity = "error"
    false_negatives = (
        "Aliasing is not tracked, releases behind helper functions are not "
        "seen, constructors reached through variables are invisible, and an "
        "object that escapes (returned/yielded/passed along) is trusted to "
        "be released by its new owner."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        if not in_serve_package(module):
            return ()
        findings: list[Finding] = []
        for cls_node, func_node, qualname in _iter_functions(module.tree):
            auditor = _FunctionAuditor()
            for stmt in func_node.body:
                auditor.visit(stmt)
            findings.extend(
                self._audit(module, auditor, cls_node, qualname)
            )
        return findings

    def _audit(
        self,
        module: ParsedModule,
        auditor: _FunctionAuditor,
        cls_node: ast.ClassDef | None,
        qualname: str,
    ) -> Iterable[Finding]:
        for name, (node, ctor) in sorted(auditor.local_acquisitions.items()):
            if name in auditor.with_managed or name in auditor.escaped:
                continue
            if name in auditor.released_in_finally:
                continue
            if name in auditor.released:
                yield self.finding(
                    module,
                    node,
                    f"`{name} = {ctor}(...)` is released only on the happy "
                    "path; move the release into a `finally` block or use "
                    "`with`",
                    context=qualname,
                )
            else:
                yield self.finding(
                    module,
                    node,
                    f"`{name} = {ctor}(...)` is never released in this "
                    "function and does not escape; use `with`, a "
                    "`try/finally` release, or transfer ownership",
                    context=qualname,
                )
        class_released = _class_releases(cls_node) if cls_node is not None else set()
        for attr, (node, ctor) in sorted(auditor.attr_acquisitions.items()):
            if f"self.{attr}" in auditor.with_managed:
                continue
            if attr not in class_released:
                yield self.finding(
                    module,
                    node,
                    f"`self.{attr} = {ctor}(...)` but no method of this "
                    f"class releases `self.{attr}`; add a registered "
                    "`close()`/`stop()` that does",
                    context=qualname,
                )
        for locked, node in sorted(auditor.flock_acquisitions.items()):
            if locked not in auditor.unlocked_in_finally:
                yield self.finding(
                    module,
                    node,
                    f"`flock({locked}, LOCK_EX)` without a matching "
                    f"`flock({locked}, LOCK_UN)` in a `finally` block of "
                    "the same function",
                    context=qualname,
                )


def _iter_functions(
    tree: ast.Module,
) -> Iterable[tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Top-level functions and class methods with their qualnames."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, stmt, stmt.name
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt, sub, f"{stmt.name}.{sub.name}"
