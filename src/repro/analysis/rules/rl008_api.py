"""RL008 — API surface: ``__all__`` is real, complete, and README-true.

Package inits are the public face of the library; a stale ``__all__`` entry
breaks ``from repro.x import *`` and wildcard-driven docs, and an imported
symbol missing from ``__all__`` is an accidental (undocumented, unstable)
export.  For every ``__init__.py``:

1. ``__all__`` must be a literal list/tuple of strings (statically
   auditable);
2. every ``__all__`` entry must be bound in the module (import / def /
   class / assignment, including inside ``try``/``if`` blocks);
3. every *public* name the init re-exports from inside the ``repro``
   package (relative or ``repro.*`` from-imports) must appear in
   ``__all__`` — no accidental API.

Additionally, import statements shown in README code fences
(``from repro.x import name``) are cross-checked against the scanned
modules: a README that demonstrates a symbol which no longer exists is a
finding on the README line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, collect_bound_names

__all__ = ["ApiSurfaceRule"]

_FENCE_RE = re.compile(r"^```")
_IMPORT_RE = re.compile(r"^\s*from\s+(repro[\w.]*)\s+import\s+([\w,\s()]+?)\s*(?:#.*)?$")


def _find_all(module: ParsedModule) -> tuple[ast.stmt | None, list[str] | None]:
    """The ``__all__`` statement and its entries (None when non-literal)."""
    for stmt in module.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            target = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            target = stmt.value
        if target is None:
            continue
        if isinstance(target, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in target.elts
        ):
            return stmt, [e.value for e in target.elts]  # type: ignore[union-attr]
        return stmt, None
    return None, None


def _internal_reexports(module: ParsedModule) -> dict[str, int]:
    """Public names bound by from-imports that stay inside the package."""
    names: dict[str, int] = {}

    def scan(statements: list[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.ImportFrom):
                internal = stmt.level > 0 or (
                    stmt.module is not None
                    and stmt.module.split(".")[0] == "repro"
                )
                if not internal:
                    continue
                for alias in stmt.names:
                    bound = alias.asname or alias.name
                    if bound != "*" and not bound.startswith("_"):
                        names.setdefault(bound, stmt.lineno)
            elif isinstance(stmt, ast.Try):
                scan(stmt.body)
                for handler in stmt.handlers:
                    scan(handler.body)
                scan(stmt.orelse)
                scan(stmt.finalbody)
            elif isinstance(stmt, ast.If):
                scan(stmt.body)
                scan(stmt.orelse)

    scan(module.tree.body)
    return names


class ApiSurfaceRule(Rule):
    rule_id = "RL008"
    title = "__all__ lists exactly the names that exist; README imports resolve"
    severity = "error"
    false_negatives = (
        "Only from-imports inside the repro package count as re-exports "
        "(stdlib/numpy imports in an init are treated as implementation "
        "detail); README checks cover `from repro... import ...` lines "
        "only, not attribute references in prose."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        if not module.display_path.endswith("__init__.py"):
            return ()
        stmt, entries = _find_all(module)
        if stmt is None:
            return ()
        findings: list[Finding] = []
        if entries is None:
            findings.append(
                self.finding(
                    module,
                    stmt,
                    "`__all__` must be a literal list/tuple of strings so "
                    "the public API is statically auditable",
                )
            )
            return findings
        bound = collect_bound_names(module.tree.body)
        for entry in entries:
            if entry not in bound:
                findings.append(
                    self.finding(
                        module,
                        stmt,
                        f"`__all__` lists '{entry}' but no such name is "
                        "bound in this module",
                    )
                )
        declared = set(entries)
        for name, lineno in sorted(_internal_reexports(module).items()):
            if name not in declared:
                findings.append(
                    self.finding(
                        module,
                        None,
                        f"'{name}' is re-exported from inside the package "
                        "but missing from `__all__` — either export it "
                        "deliberately or import it underscored",
                        line=lineno,
                    )
                )
        return findings

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for display, text in context.docs:
            in_fence = False
            for lineno, line in enumerate(text.splitlines(), start=1):
                if _FENCE_RE.match(line.strip()):
                    in_fence = not in_fence
                    continue
                if not in_fence:
                    continue
                match = _IMPORT_RE.match(line)
                if match is None:
                    continue
                dotted, names_blob = match.groups()
                module = context.module_by_dotted(dotted)
                if module is None:
                    continue  # module not part of this scan
                bound = collect_bound_names(module.tree.body)
                for segment in names_blob.strip("()").split(","):
                    tokens = segment.split()
                    if not tokens:
                        continue
                    name = tokens[0]
                    if name not in bound:
                        findings.append(
                            self.doc_finding(
                                display,
                                lineno,
                                f"README imports `{name}` from `{dotted}`, "
                                "but that module does not bind it",
                            )
                        )
        return findings
