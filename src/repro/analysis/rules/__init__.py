"""The reprolint rule registry.

Each rule encodes one contract the serving stack actually relies on; the
rule module's docstring is the contract's specification, including its
documented false negatives.  ``default_rules()`` returns fresh instances in
rule-id order — rules are stateless between runs by construction.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.rl001_determinism import DeterminismRule
from repro.analysis.rules.rl002_snapshot import SnapshotCompletenessRule
from repro.analysis.rules.rl003_pickle import PickleBanRule
from repro.analysis.rules.rl004_events import SinkEventSchemaRule
from repro.analysis.rules.rl005_exceptions import ExceptionHygieneRule
from repro.analysis.rules.rl006_trace import TraceCoverageRule
from repro.analysis.rules.rl007_shared_state import SharedStateRule
from repro.analysis.rules.rl008_api import ApiSurfaceRule
from repro.analysis.rules.rl009_resources import ResourceLifecycleRule
from repro.analysis.rules.rl010_schema import EventSchemaConsistencyRule
from repro.analysis.rules.rl011_clidocs import CliDocsSyncRule
from repro.analysis.rules.rl012_taint import DeterminismTaintRule

__all__ = [
    "ApiSurfaceRule",
    "CliDocsSyncRule",
    "DeterminismRule",
    "DeterminismTaintRule",
    "EventSchemaConsistencyRule",
    "ExceptionHygieneRule",
    "PickleBanRule",
    "ResourceLifecycleRule",
    "Rule",
    "RULE_CLASSES",
    "SharedStateRule",
    "SinkEventSchemaRule",
    "SnapshotCompletenessRule",
    "TraceCoverageRule",
    "default_rules",
    "rules_by_id",
]

RULE_CLASSES: tuple[type[Rule], ...] = (
    DeterminismRule,
    SnapshotCompletenessRule,
    PickleBanRule,
    SinkEventSchemaRule,
    ExceptionHygieneRule,
    TraceCoverageRule,
    SharedStateRule,
    ApiSurfaceRule,
    ResourceLifecycleRule,
    EventSchemaConsistencyRule,
    CliDocsSyncRule,
    DeterminismTaintRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    return [cls() for cls in RULE_CLASSES]


def rules_by_id(ids) -> list[Rule]:
    """Instances for the requested rule ids (case-insensitive).

    Raises ``ValueError`` on an unknown id so CLI typos fail loudly.
    """
    wanted = {str(i).upper() for i in ids}
    known = {cls.rule_id: cls for cls in RULE_CLASSES}
    unknown = sorted(wanted - set(known))
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [known[rule_id]() for rule_id in sorted(wanted)]
