"""RL007 — shared-state discipline: pool-submitted code must not mutate self.

``ShardedDetectionService`` keeps results bit-identical across thread and
process modes by construction: everything submitted to a worker pool is a
pure function of its arguments (a staticmethod or module-level function),
and all shared-state mutation happens in parent-only round-boundary code
(merge, swap coordination, supervision).  This rule pins the submit side of
that contract inside any ``parallel.py`` under ``repro/serve/``:

- for every ``<pool>.submit(target, ...)`` call, the ``target`` is resolved
  within the module (``self._method`` / ``Class._method`` -> the method
  def, a bare name -> the module-level function def);
- a resolved target whose body assigns to ``self.<attr>`` (or declares
  ``global``) is flagged: worker code would be mutating state the parent
  and sibling workers share in thread mode.

Documented false-negative contract: only *direct* submit targets are
analyzed — callees of the target (e.g. the shard-local service methods it
calls) are not traced, aliased callables (``fn = self._work; pool.submit
(fn)``) are not resolved, and mutations through method calls rather than
attribute stores are invisible.  The rule is a tripwire for the obvious
regression, not an escape analysis.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, in_serve_package

__all__ = ["SharedStateRule"]


def _function_index(
    tree: ast.Module,
) -> dict[str, tuple[ast.FunctionDef, bool]]:
    """Callable name -> (def node, is_class_level).

    Class-level targets run in *thread* pools here (shared module globals
    and a shared ``self``), module-level targets in *process* pools (copied
    globals) — which is why the two get different mutation checks.
    """
    index: dict[str, tuple[ast.FunctionDef, bool]] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            index.setdefault(node.name, (node, False))
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    index.setdefault(stmt.name, (stmt, True))
    return index


def _submit_targets(tree: ast.Module) -> list[tuple[str, int]]:
    targets: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            target = node.args[0]
            if isinstance(target, ast.Name):
                targets.append((target.id, node.lineno))
            elif isinstance(target, ast.Attribute):
                targets.append((target.attr, node.lineno))
    return targets


def _shared_mutations(
    func: ast.FunctionDef, *, class_level: bool
) -> list[tuple[str, int]]:
    mutations: list[tuple[str, int]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    mutations.append((f"self.{target.attr}", target.lineno))
        elif isinstance(node, ast.Global) and class_level:
            # Module-level submit targets run in worker *processes* with
            # copied globals, so `global` there is process-local caching
            # (the _WORKER_MODEL idiom); in a thread-submitted method the
            # same statement would be a shared-state race.
            mutations.append((f"global {', '.join(node.names)}", node.lineno))
    return mutations


class SharedStateRule(Rule):
    rule_id = "RL007"
    title = "Pool-submitted callables never mutate parent-shared state"
    severity = "error"
    false_negatives = (
        "Only direct submit targets resolvable by name within parallel.py "
        "are analyzed; callee chains, aliased callables, and mutation via "
        "method calls are not traced."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        if not (
            in_serve_package(module)
            and module.display_path.endswith("parallel.py")
        ):
            return ()
        index = _function_index(module.tree)
        findings: list[Finding] = []
        checked: set[str] = set()
        for name, submit_line in _submit_targets(module.tree):
            entry = index.get(name)
            if entry is None or name in checked:
                continue
            checked.add(name)
            func, class_level = entry
            for description, lineno in _shared_mutations(func, class_level=class_level):
                findings.append(
                    self.finding(
                        module,
                        None,
                        f"`{name}` is submitted to a worker pool (line "
                        f"{submit_line}) but mutates shared state "
                        f"(`{description}`); move the mutation to the "
                        "parent's round-boundary code",
                        context=name,
                        line=lineno,
                    )
                )
        return findings
