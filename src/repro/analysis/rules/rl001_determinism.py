"""RL001 — determinism: no unseeded global RNG, no wall-clock in repro code.

The serving stack's headline contract is that sequential, thread and process
runs are bit-identical and every experiment replays from one integer seed.
One ``np.random.shuffle`` against the global state, or one ``time.time()``
feeding a score/threshold, silently breaks that.  This rule flags, anywhere
under the ``repro`` package:

- calls through NumPy's *global* RNG state (``np.random.seed/rand/shuffle``
  and friends) — seeded generators from ``np.random.default_rng(seed)`` /
  ``check_random_state`` are the sanctioned path and are not flagged;
- ``np.random.default_rng()`` / ``np.random.RandomState()`` with no
  arguments (an unseeded generator);
- stdlib ``random`` module-level calls (``random.random``, ``random.seed``,
  ``from random import shuffle`` …);
- wall-clock reads: ``time.time``/``time.time_ns``, ``datetime.now``/
  ``utcnow``/``today``, ``date.today``.  Monotonic timers
  (``perf_counter``/``monotonic``) are measurement, not decision input, and
  stay legal — the heartbeat watchdog behind ``serve --status-port``
  (:class:`repro.serve.telemetry.statusd.HeartbeatWatchdog`) is the
  canonical sanctioned use: ``time.monotonic`` measures seconds-since-beat
  for ``/health`` liveness, never feeds a score or threshold.

Allowlisted modules: ``repro/serve/telemetry/`` (timestamps, spans and the
heartbeat clock are the product there) and ``repro/utils/timing.py`` (the
timing helper itself).  Deliberate exceptions elsewhere belong in the
committed baseline with a reason, or behind an inline
``# reprolint: disable=RL001``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    Rule,
    ScopedVisitor,
    dotted_name,
    has_consecutive_parts,
    in_repro_package,
)

__all__ = ["DeterminismRule", "determinism_allowlisted", "iter_determinism_sites"]

#: numpy.random module-level functions that hit the shared global state.
_NP_GLOBAL_FNS = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "ranf", "sample", "random_integers", "choice", "shuffle",
        "permutation", "bytes", "uniform", "normal", "standard_normal",
        "beta", "binomial", "exponential", "gamma", "poisson", "laplace",
        "lognormal", "multinomial", "multivariate_normal", "get_state",
        "set_state",
    }
)
#: stdlib random module-level functions (all share one hidden Random()).
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random", "seed", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "normalvariate",
        "betavariate", "expovariate", "getrandbits", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate",
    }
)
#: Canonical dotted names that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
#: Modules whose import aliases we track for canonicalisation.
_TRACKED_ROOTS = ("numpy", "random", "time", "datetime")


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted prefix, for the modules we care about.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import random
    as nr`` maps ``nr -> numpy.random``; ``from datetime import datetime``
    maps ``datetime -> datetime.datetime``; ``from time import time`` maps
    ``time -> time.time``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root in _TRACKED_ROOTS:
                for alias in node.names:
                    if alias.name != "*":
                        aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
    return aliases


class _Visitor(ScopedVisitor):
    """Collects every nondeterministic-primitive call site in one module.

    Sites are ``(node, qualname, canonical_name, message)`` tuples; RL001
    turns them into findings directly, while RL012 uses them as taint seeds
    for call-graph propagation.
    """

    def __init__(self, module: ParsedModule) -> None:
        super().__init__()
        self.module = module
        self.aliases = _collect_aliases(module.tree)
        self.sites: list[tuple[ast.Call, str, str, str]] = []

    def _canonical(self, node: ast.expr) -> str | None:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head not in self.aliases:
            return None
        canonical = self.aliases[head]
        return f"{canonical}.{rest}" if rest else canonical

    def visit_Call(self, node: ast.Call) -> None:
        name = self._canonical(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        message: str | None = None
        if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not node.args and not node.keywords:
                short = name.rsplit(".", 1)[-1]
                message = (
                    f"unseeded `{short}()` — pass an explicit seed or route "
                    "through `repro.utils.random.check_random_state`"
                )
        elif name.startswith("numpy.random.") and name.rsplit(".", 1)[-1] in _NP_GLOBAL_FNS:
            message = (
                f"`{name}` uses NumPy's global RNG state; use a seeded "
                "`Generator` (check_random_state) instead"
            )
        elif name.startswith("random.") and name.rsplit(".", 1)[-1] in _STDLIB_RANDOM_FNS:
            message = (
                f"`{name}` uses the stdlib global RNG; use a seeded "
                "`numpy.random.Generator` instead"
            )
        elif name in _WALL_CLOCK:
            message = (
                f"wall-clock read `{name}` in repro code; decision paths "
                "must be replayable (monotonic timers are fine for timing)"
            )
        if message is not None:
            self.sites.append((node, self.qualname, name, message))


def iter_determinism_sites(
    module: ParsedModule,
) -> list[tuple[ast.Call, str, str, str]]:
    """Every RL001-primitive call site in ``module``.

    Returns ``(call_node, enclosing_qualname, canonical_name, message)``
    tuples regardless of allowlisting — callers apply their own scoping.
    """
    visitor = _Visitor(module)
    visitor.visit(module.tree)
    return visitor.sites


def determinism_allowlisted(module: ParsedModule) -> bool:
    """True for modules where wall-clock/RNG primitives are sanctioned."""
    return has_consecutive_parts(module, "serve", "telemetry") or (
        module.display_path.endswith("utils/timing.py")
    )


class DeterminismRule(Rule):
    rule_id = "RL001"
    title = "No unseeded global RNG or wall-clock reads in repro code"
    severity = "error"
    false_negatives = (
        "Only direct calls through tracked import aliases are seen; an RNG "
        "module smuggled through a variable or a wall-clock read behind a "
        "helper function is not flagged."
    )

    def check_module(
        self, module: ParsedModule, context: LintContext
    ) -> Iterable[Finding]:
        if not in_repro_package(module) or determinism_allowlisted(module):
            return ()
        return [
            self.finding(module, node, message, context=qualname)
            for node, qualname, _name, message in iter_determinism_sites(module)
        ]
