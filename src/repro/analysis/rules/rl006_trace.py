"""RL006 — trace coverage: every declared pipeline stage has a trace_span.

PR 7's observability contract is that every pipeline stage runs under a
``trace_span("<stage>", ...)`` so span traces and the per-stage latency
table in run reports are complete.  This rule pins that contract with an
explicit registry: each declared stage maps to the module that owns it, and

1. when that home module is part of the scan, some scanned serve module
   must contain a ``trace_span`` call whose first argument is that literal
   stage name (missing instrumentation);
2. every ``trace_span`` literal first argument must be a declared stage
   (typo / undeclared-stage catch — keeping the registry the single source
   of truth);
3. a ``trace_span`` call whose first argument is *not* a string literal is
   flagged: stage names must be statically auditable.

Keying each stage on its home module means linting a subtree (say one file)
never produces spurious "missing stage" findings for code that was not
scanned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, ScopedVisitor, in_serve_package

__all__ = ["TraceCoverageRule", "PIPELINE_STAGES"]

#: stage name -> path suffix of the module that owns the stage.
PIPELINE_STAGES: dict[str, str] = {
    "batch": "repro/serve/service.py",
    "quarantine_scan": "repro/serve/service.py",
    "score": "repro/serve/service.py",
    "threshold_update": "repro/serve/service.py",
    "drift_check": "repro/serve/service.py",
    "sink_emit": "repro/serve/service.py",
    "shadow_score": "repro/serve/service.py",
    "round_submit": "repro/serve/parallel.py",
    "round_merge": "repro/serve/parallel.py",
    "refit": "repro/serve/lifecycle/manager.py",
    "gate": "repro/serve/lifecycle/manager.py",
    "registry_publish": "repro/serve/lifecycle/manager.py",
    "heartbeat": "repro/serve/telemetry/statusd.py",
    "status_render": "repro/serve/telemetry/statusd.py",
    "mem_sample": "repro/serve/telemetry/profiling.py",
}


class _Visitor(ScopedVisitor):
    def __init__(self, rule: "TraceCoverageRule", module: ParsedModule) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        self.literal_stages: dict[str, int] = {}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name == "trace_span":
            arg = node.args[0] if node.args else None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                stage = arg.value
                self.literal_stages.setdefault(stage, node.lineno)
                if stage not in PIPELINE_STAGES:
                    self.findings.append(
                        self.rule.finding(
                            self.module,
                            node,
                            f"trace_span stage '{stage}' is not in the "
                            "declared pipeline-stage registry "
                            "(repro.analysis.rules.rl006_trace."
                            "PIPELINE_STAGES); fix the typo or declare it",
                            context=self.qualname,
                        )
                    )
            else:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "trace_span stage name must be a string literal so "
                        "coverage is statically auditable",
                        context=self.qualname,
                    )
                )
        self.generic_visit(node)


class TraceCoverageRule(Rule):
    rule_id = "RL006"
    title = "Every declared pipeline stage runs under trace_span"
    severity = "error"
    false_negatives = (
        "A span literal satisfies coverage from any scanned serve module, "
        "not necessarily the stage's home module; whether the span actually "
        "wraps the stage's work is not checked."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        serve_modules = [m for m in context.modules if in_serve_package(m)]
        if not serve_modules:
            return ()
        seen_stages: set[str] = set()
        findings: list[Finding] = []
        for module in serve_modules:
            visitor = _Visitor(self, module)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
            seen_stages.update(visitor.literal_stages)
        for stage, home_suffix in PIPELINE_STAGES.items():
            home = next(
                (m for m in serve_modules if m.display_path.endswith(home_suffix)),
                None,
            )
            if home is None:
                continue  # stage's home module not part of this scan
            if stage not in seen_stages:
                findings.append(
                    self.finding(
                        home,
                        None,
                        f"declared pipeline stage '{stage}' has no "
                        "trace_span call anywhere in the scanned serve "
                        "modules; instrument it or retire the stage",
                        line=1,
                    )
                )
        return findings
