"""RL011 — CLI↔docs sync: documented flags must exist, help text included.

The CLIs (``repro serve``/``registry``/``trace``/``lint`` and the
experiments entry point) are documented twice outside their parsers: README
fenced code blocks show invocations, and ``--help`` epilog/help strings
cross-reference other flags.  Both rot silently when a flag is renamed.
This rule collects the **registered flag universe** — every constant
option string passed to an ``add_argument(...)`` call anywhere in the
scanned tree — then checks:

1. every ``--flag`` token on a ``repro``-invoking line inside a README
   fenced code block resolves to a registered flag (``--help`` is builtin);
2. every ``--flag`` token inside an ``epilog=``/``description=``/``help=``
   string of an argparse call resolves to a registered flag.

Both checks degrade gracefully on subtree scans (the RL006 pattern): a doc
line is only checked when the *home module* of the subcommand it invokes —
``repro lint`` → ``repro/analysis/cli.py``, ``repro serve``/``registry``/
``trace`` → ``repro/serve/cli.py``, anything else (and ``-m repro.x.y``
invocations, mapped from the dotted path) → ``repro/experiments/cli.py`` —
is part of the scan, and help-string checks only run in modules that
register flags themselves.  README lines outside fenced blocks, and fenced
lines that are not ``repro`` invocations (e.g. ``python benchmarks/...``
one-offs), are ignored on purpose: prose may mention hypothetical flags,
and non-``repro`` tools have their own docs.

Documented false negatives: flags built dynamically (``add_argument(name)``)
are invisible; positional argument names are not checked; a doc line that
wraps an invocation across lines is only checked line by line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, ScopedVisitor

__all__ = ["CliDocsSyncRule"]

_FLAG_RE = re.compile(r"(?<![\w-])(--[a-zA-Z][a-zA-Z0-9-]*)")
_REPRO_CMD_RE = re.compile(r"(?:^|\s)repro\s+([a-z][a-z-]*)")
_REPRO_MODULE_RE = re.compile(r"-m\s+(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)")
_BUILTIN_FLAGS = frozenset({"--help"})
_DOC_KWARGS = frozenset({"epilog", "description", "help"})
#: subcommand -> path suffix of the module whose parser owns it.
_SUBCOMMAND_HOMES = {
    "lint": "repro/analysis/cli.py",
    "serve": "repro/serve/cli.py",
    "registry": "repro/serve/cli.py",
    "trace": "repro/serve/cli.py",
}
_DEFAULT_HOME = "repro/experiments/cli.py"


def _registered_flags(modules: Iterable[ParsedModule]) -> set[str]:
    flags: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                for arg in node.args:
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.startswith("-")
                    ):
                        flags.add(arg.value)
    return flags


def _invocation_home(line: str) -> str | None:
    """Path suffix of the module owning the invocation on ``line``, if any."""
    module_match = _REPRO_MODULE_RE.search(line)
    if module_match is not None:
        dotted = module_match.group(1)
        if dotted == "repro":
            return _DEFAULT_HOME
        return dotted.replace(".", "/") + ".py"
    cmd_match = _REPRO_CMD_RE.search(line)
    if cmd_match is not None:
        return _SUBCOMMAND_HOMES.get(cmd_match.group(1), _DEFAULT_HOME)
    return None


def _fenced_repro_lines(text: str) -> Iterable[tuple[int, str, str]]:
    """(lineno, line, home suffix) for repro invocations inside ``` fences."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            home = _invocation_home(line)
            if home is not None:
                yield lineno, line, home


class _HelpStringScan(ScopedVisitor):
    """Collect flag tokens from epilog/description/help string literals."""

    def __init__(self) -> None:
        super().__init__()
        #: (flag token, node, qualname)
        self.mentions: list[tuple[str, ast.AST, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg in _DOC_KWARGS:
                for text, anchor in _string_parts(keyword.value):
                    for match in _FLAG_RE.finditer(text):
                        self.mentions.append(
                            (match.group(1), anchor, self.qualname)
                        )
        self.generic_visit(node)


def _string_parts(node: ast.expr) -> list[tuple[str, ast.AST]]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node)]
    if isinstance(node, ast.JoinedStr):
        parts: list[tuple[str, ast.AST]] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append((value.value, value))
        return parts
    return []


class CliDocsSyncRule(Rule):
    rule_id = "RL011"
    title = "README and --help flag references resolve to registered flags"
    severity = "error"
    false_negatives = (
        "Dynamically built option strings are invisible, positionals are "
        "not checked, and multi-line invocations in docs are matched line "
        "by line."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        flags = _registered_flags(context.modules)
        if not flags:
            return ()
        known = flags | _BUILTIN_FLAGS
        scanned = [m.display_path for m in context.modules]
        findings: list[Finding] = []
        for display, text in context.docs:
            for lineno, line, home in _fenced_repro_lines(text):
                if not any(path.endswith(home) for path in scanned):
                    continue  # the invoked CLI's home module is not in scan
                for match in _FLAG_RE.finditer(line):
                    flag = match.group(1)
                    if flag not in known:
                        findings.append(
                            self.doc_finding(
                                display,
                                lineno,
                                f"documented flag `{flag}` is not registered "
                                "by any scanned CLI; fix the doc or register "
                                "the flag",
                            )
                        )
        for module in context.modules:
            if not _registered_flags([module]):
                continue  # not a parser module; its strings are prose
            scan = _HelpStringScan()
            scan.visit(module.tree)
            for flag, node, qualname in scan.mentions:
                if flag not in known:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"help text references `{flag}`, which is not "
                            "registered by any scanned CLI",
                            context=qualname,
                        )
                    )
        return findings
