"""RL004 — sink-event schema: everything emitted has a literal-keyed to_dict.

Every event that reaches a sink ends up as one JSON object in
``events.jsonl`` and is later routed by its ``"type"`` key (the timeline
and report builders dispatch on it).  This rule finds the classes that flow
into sinks — constructor calls appearing directly in ``self._emit(...)`` /
``<sink>.emit(...)`` / ``emit_resilient(sinks, ...)``, constructors assigned
to a local that is then emitted inside the same function, plus a declared
set of event classes that are emitted indirectly (``SinkDisabled``,
``RegistryRecovery``) — and requires each to define ``to_dict`` returning a
dict whose keys are statically known string literals including ``"type"``.

A ``to_dict`` that *delegates* (``payload = self.report.to_dict()``) is
trusted to inherit the delegate's keys; the delegate carries the ``"type"``
key (documented false negative).

Note: the issue text calls the discriminator ``"event"``; the shipped
stack's actual schema key — asserted by the report/timeline code and the
golden report test — is ``"type"``, so that is what this rule enforces.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, in_serve_package

__all__ = ["SinkEventSchemaRule"]

#: The discriminator key every emitted event must carry.
EVENT_TYPE_KEY = "type"
#: Event classes emitted through dataflow the visitor cannot trace (returned
#: from another function, passed in as a parameter).
DECLARED_EVENT_CLASSES = frozenset(
    {"SinkDisabled", "RegistryRecovery", "LifecycleEvent"}
)


def _constructor_name(node: ast.expr) -> str | None:
    """Class name when ``node`` is ``SomeClass(...)`` (dotted allowed)."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if isinstance(name, str) and name[:1].isupper():
            return name
    return None


def _collect_emitted(tree: ast.Module) -> dict[str, int]:
    """Event class names -> line of first emit site, per module."""
    emitted: dict[str, int] = {}

    for func in [n for n in ast.walk(tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]:
        local_ctors: dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                # Accept a constructor anywhere in the assigned value, which
                # covers collections built from genexps:
                #   alerts = tuple(Alert(...) for i in hits)
                ctor = next(
                    (
                        name
                        for sub in ast.walk(node.value)
                        if (name := _constructor_name(sub)) is not None
                    ),
                    None,
                )
                if ctor is not None:
                    local_ctors[target.id] = ctor
        # Propagate through for-loops over a tracked collection:
        #   for alert in alerts: self._emit(alert)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and isinstance(node.iter, ast.Name)
                and node.iter.id in local_ctors
            ):
                local_ctors.setdefault(node.target.id, local_ctors[node.iter.id])
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            func_node = node.func
            event_arg: ast.expr | None = None
            if isinstance(func_node, ast.Attribute) and func_node.attr in ("_emit", "emit"):
                event_arg = node.args[0] if node.args else None
            elif isinstance(func_node, ast.Name) and func_node.id == "emit_resilient":
                event_arg = node.args[1] if len(node.args) > 1 else None
            if event_arg is None:
                continue
            ctor = _constructor_name(event_arg)
            if ctor is None and isinstance(event_arg, ast.Name):
                ctor = local_ctors.get(event_arg.id)
            if ctor is not None:
                emitted.setdefault(ctor, node.lineno)
    return emitted


def _to_dict_keys(method: ast.FunctionDef) -> tuple[set[str] | None, bool, bool]:
    """(keys, delegated, static) for a ``to_dict`` body.

    ``keys`` is the union of statically-known string keys across return
    paths; ``delegated`` is True when some return path starts from another
    object's ``to_dict()``; ``static`` is False when any return value is not
    statically resolvable (at which point ``keys`` is meaningless).
    """
    #: variable -> (keys, delegated) accumulated from assignments.
    var_state: dict[str, tuple[set[str], bool]] = {}
    keys: set[str] = set()
    delegated = False
    static = True

    def literal_keys(node: ast.expr) -> set[str] | None:
        if isinstance(node, ast.Dict):
            out: set[str] = set()
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    out.add(key.value)
                elif key is None:  # ``**other`` merge: unknown keys, keep known
                    continue
                else:
                    return None
            return out
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict"
            and not node.args
        ):
            out = set()
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                out.add(keyword.arg)
            return out
        return None

    def is_to_dict_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "to_dict"
        )

    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                lit = literal_keys(node.value)
                if lit is not None:
                    var_state[target.id] = (lit, False)
                elif is_to_dict_call(node.value):
                    var_state[target.id] = (set(), True)
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in var_state
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                var_state[target.value.id][0].add(target.slice.value)
        elif isinstance(node, ast.Return) and node.value is not None:
            lit = literal_keys(node.value)
            if lit is not None:
                keys |= lit
            elif is_to_dict_call(node.value):
                delegated = True
            elif isinstance(node.value, ast.Name) and node.value.id in var_state:
                var_keys, var_delegated = var_state[node.value.id]
                keys |= var_keys
                delegated = delegated or var_delegated
            else:
                static = False
    return keys, delegated, static


class SinkEventSchemaRule(Rule):
    rule_id = "RL004"
    title = "Emitted events define to_dict with literal keys including 'type'"
    severity = "error"
    false_negatives = (
        "Events emitted through containers or attributes (never a bare local "
        "assigned from a constructor in the emitting function) are only "
        "covered if listed in DECLARED_EVENT_CLASSES; a delegated to_dict is "
        "trusted to carry the 'type' key."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        serve_modules = [m for m in context.modules if in_serve_package(m)]
        emitted: dict[str, tuple[ParsedModule, int]] = {}
        classes: dict[str, tuple[ParsedModule, ast.ClassDef]] = {}
        for module in serve_modules:
            for name, lineno in _collect_emitted(module.tree).items():
                emitted.setdefault(name, (module, lineno))
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (module, node))
        for name in sorted(DECLARED_EVENT_CLASSES):
            if name in classes:
                module, node = classes[name]
                emitted.setdefault(name, (module, node.lineno))

        findings: list[Finding] = []
        for name in sorted(emitted):
            if name not in classes:
                continue  # constructed from an import we did not scan
            module, node = classes[name]
            to_dict = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "to_dict"
                ),
                None,
            )
            if to_dict is None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"event `{name}` is emitted through sinks but defines "
                        "no `to_dict`; JSONL sinks require it",
                        context=name,
                    )
                )
                continue
            keys, delegated, static = _to_dict_keys(to_dict)
            if not static:
                findings.append(
                    self.finding(
                        module,
                        to_dict,
                        f"`{name}.to_dict` does not return a statically "
                        "literal-keyed dict; the event schema must be "
                        "auditable from source",
                        context=f"{name}.to_dict",
                    )
                )
            elif EVENT_TYPE_KEY not in keys and not delegated:
                findings.append(
                    self.finding(
                        module,
                        to_dict,
                        f"`{name}.to_dict` is missing the literal "
                        f"'{EVENT_TYPE_KEY}' discriminator key the timeline "
                        "and report builders route on",
                        context=f"{name}.to_dict",
                    )
                )
        return findings
