"""RL002 — snapshot completeness: transient attrs must be honest.

``repro.serve.snapshot`` persists a fitted estimator's entire ``__dict__``
*except* the names a class declares in ``_snapshot_transient_`` (unioned
across the MRO — see ``snapshot._transient_attrs``).  Transients round-trip
as ``None``, so the contract is two-sided:

1. every declared transient must actually be assigned somewhere in the
   class (or a base) — a stale name silently stops excluding anything;
2. a scoring entry point (``score_samples`` / ``decision_function`` /
   ``predict`` / ``predict_proba`` / ``transform``) must not read a
   transient attribute it never (re)assigns in the same method — after a
   restore that attribute is ``None``.  The lazy-rebuild idiom
   (``if self._forest_ is None: self._forest_ = ...``) passes because the
   method contains a store.

The declaration itself must be a literal tuple/list of string constants so
it stays statically checkable.

Class hierarchies are resolved by simple base-class name across every
scanned module (heuristic: externally-defined bases are invisible).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

__all__ = ["SnapshotCompletenessRule"]

#: The class attribute ``repro.serve.snapshot._transient_attrs`` reads.
TRANSIENT_ATTR = "_snapshot_transient_"
#: Methods that make a class snapshot-relevant even without transients.
_SAVE_METHODS = frozenset({"save", "_snapshot_state"})
#: Serving-time entry points that must work from persisted state alone.
_SCORING_METHODS = frozenset(
    {"score_samples", "decision_function", "predict", "predict_proba", "transform"}
)


@dataclass
class _ClassInfo:
    module: ParsedModule
    node: ast.ClassDef
    bases: list[str]
    #: Declared transient names -> declaration line.
    transients: dict[str, int]
    #: The declaration node when it is not a literal str tuple/list.
    bad_declaration: ast.stmt | None
    has_save: bool
    #: method name -> self attributes stored / loaded (name -> first line).
    stores: dict[str, dict[str, int]] = field(default_factory=dict)
    loads: dict[str, dict[str, int]] = field(default_factory=dict)


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _analyze_method(info: _ClassInfo, method: ast.FunctionDef) -> None:
    stores: dict[str, int] = {}
    loads: dict[str, int] = {}
    for node in ast.walk(method):
        name = _self_attr(node)
        if name is None:
            continue
        if isinstance(node.ctx, (ast.Store, ast.Del)):  # type: ignore[attr-defined]
            stores.setdefault(name, node.lineno)
        else:
            loads.setdefault(name, node.lineno)
    info.stores[method.name] = stores
    info.loads[method.name] = loads


def _analyze_class(module: ParsedModule, node: ast.ClassDef) -> _ClassInfo:
    transients: dict[str, int] = {}
    bad_declaration: ast.stmt | None = None
    has_save = False
    bases = [b.attr if isinstance(b, ast.Attribute) else getattr(b, "id", "") for b in node.bases]
    info = _ClassInfo(
        module=module,
        node=node,
        bases=[b for b in bases if b],
        transients=transients,
        bad_declaration=None,
        has_save=False,
    )
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == TRANSIENT_ATTR for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == TRANSIENT_ATTR
        ):
            value = stmt.value
        if value is not None:
            if isinstance(value, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                for element in value.elts:
                    transients[element.value] = element.lineno  # type: ignore[union-attr]
            else:
                bad_declaration = stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in _SAVE_METHODS:
                has_save = True
            if isinstance(stmt, ast.FunctionDef):
                _analyze_method(info, stmt)
    info.bad_declaration = bad_declaration
    info.has_save = has_save
    return info


class SnapshotCompletenessRule(Rule):
    rule_id = "RL002"
    title = "Snapshot transients are assigned, and never read raw when scoring"
    severity = "error"
    false_negatives = (
        "Transient reads inside private helpers called from a scoring method "
        "are not traced, and stores are matched by membership (a load before "
        "the store in the same method passes). Bases defined outside the "
        "scanned tree are invisible."
    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        index: dict[str, list[_ClassInfo]] = {}
        for module in context.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    index.setdefault(node.name, []).append(
                        _analyze_class(module, node)
                    )

        def inherited_transients(info: _ClassInfo, seen: set[int]) -> set[str]:
            names = set(info.transients)
            seen.add(id(info))
            for base in info.bases:
                for base_info in index.get(base, ()):
                    if id(base_info) not in seen:
                        names |= inherited_transients(base_info, seen)
            return names

        def stored_anywhere(info: _ClassInfo, name: str, seen: set[int]) -> bool:
            seen.add(id(info))
            if any(name in stores for stores in info.stores.values()):
                return True
            return any(
                stored_anywhere(base_info, name, seen)
                for base in info.bases
                for base_info in index.get(base, ())
                if id(base_info) not in seen
            )

        findings: list[Finding] = []
        for infos in index.values():
            for info in infos:
                if not info.transients and not info.has_save and info.bad_declaration is None:
                    continue
                cls = info.node.name
                if info.bad_declaration is not None:
                    findings.append(
                        self.finding(
                            info.module,
                            info.bad_declaration,
                            f"`{cls}.{TRANSIENT_ATTR}` must be a literal "
                            "tuple/list of attribute-name strings so the "
                            "snapshot contract stays statically checkable",
                            context=cls,
                        )
                    )
                for name, decl_line in info.transients.items():
                    if not stored_anywhere(info, name, set()):
                        findings.append(
                            self.finding(
                                info.module,
                                None,
                                f"transient `{name}` declared on `{cls}` is "
                                "never assigned in the class or its scanned "
                                "bases — stale declaration?",
                                context=cls,
                                line=decl_line,
                            )
                        )
                transients = inherited_transients(info, set())
                for method in sorted(info.loads):
                    if method not in _SCORING_METHODS:
                        continue
                    loads = info.loads[method]
                    stores = info.stores.get(method, {})
                    for name in sorted(transients):
                        if name in loads and name not in stores:
                            findings.append(
                                self.finding(
                                    info.module,
                                    None,
                                    f"`{cls}.{method}` reads transient "
                                    f"`{name}`, which is None after a "
                                    "snapshot restore; rebuild it in the "
                                    "method or drop it from "
                                    f"`{TRANSIENT_ATTR}`",
                                    context=f"{cls}.{method}",
                                    line=loads[name],
                                )
                            )
        return findings
