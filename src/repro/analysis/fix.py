"""Safe autofixes for ``repro lint --fix`` (with ``--dry-run`` diffs).

Only mechanically safe rewrites are automated — every fix either restates
what the linter already proved or adds scaffolding a human must fill in:

* **RL008 ``__all__`` repair** — entries flagged as unbound are removed,
  re-exports flagged as missing are added, and the literal block is
  regenerated in place (sorted when the original list was sorted, double
  quotes, one-entry-per-line once it outgrows a single line);
* **suppression scaffolding** (``--fix-suppress RLnnn``) — appends an
  inline ``# reprolint: disable=RLnnn`` to each line carrying a *new*
  finding of that rule, merging into an existing disable comment when one
  is present.  This is deliberately opt-in per rule id: blanket
  suppression is how linters die;
* **stale baseline pruning** — baseline entries that no longer match any
  current finding are dropped (the finding was fixed; keeping the entry
  would grandfather a future regression at the same spot).

Fixes are planned as :class:`FixEdit` values (full before/after file
contents), so ``--dry-run`` can render unified diffs without touching the
tree and ``apply_fixes`` is a plain write loop.  Planning from a lint
result and re-linting after application is idempotent by construction:
once a fix lands, the finding that produced it is gone.
"""

from __future__ import annotations

import ast
import difflib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import FORMAT_VERSION, Baseline
from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding

__all__ = ["FixEdit", "apply_fixes", "plan_fixes", "render_diff"]

_MISSING_EXPORT_RE = re.compile(r"^'([^']+)' is re-exported from inside")
_UNBOUND_ENTRY_RE = re.compile(r"^`__all__` lists '([^']+)' but no such name")
_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")
_MAX_SINGLE_LINE = 79


@dataclass(frozen=True)
class FixEdit:
    """One whole-file rewrite, plus a human-readable note per change."""

    path: Path
    display: str
    before: str
    after: str
    notes: tuple[str, ...]


def _rewrite_all_block(source: str, add: set[str], remove: set[str]) -> str | None:
    """Regenerate the ``__all__`` literal with ``add``/``remove`` applied."""
    tree = ast.parse(source)
    stmt = None
    for candidate in tree.body:
        if isinstance(candidate, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in candidate.targets
        ):
            stmt = candidate
            break
        if (
            isinstance(candidate, ast.AnnAssign)
            and isinstance(candidate.target, ast.Name)
            and candidate.target.id == "__all__"
        ):
            stmt = candidate
            break
    if stmt is None or stmt.value is None:
        return None
    value = stmt.value
    if not isinstance(value, (ast.List, ast.Tuple)) or not all(
        isinstance(e, ast.Constant) and isinstance(e.value, str)
        for e in value.elts
    ):
        return None  # non-literal __all__ needs a human
    entries = [e.value for e in value.elts]
    new_entries = [e for e in entries if e not in remove]
    new_entries.extend(sorted(a for a in add if a not in new_entries))
    if entries == sorted(entries):
        new_entries = sorted(new_entries)
    single = "__all__ = [" + ", ".join(f'"{e}"' for e in new_entries) + "]"
    if len(single) <= _MAX_SINGLE_LINE:
        block = [single]
    else:
        block = ["__all__ = ["]
        block.extend(f'    "{e}",' for e in new_entries)
        block.append("]")
    lines = source.splitlines()
    end = stmt.end_lineno if stmt.end_lineno is not None else stmt.lineno
    lines[stmt.lineno - 1 : end] = block
    return "\n".join(lines) + ("\n" if source.endswith("\n") else "")


def _add_suppression(line: str, rule_id: str) -> str:
    match = _DISABLE_RE.search(line)
    if match is None:
        return f"{line.rstrip()}  # reprolint: disable={rule_id}"
    spec = match.group(1)
    if spec is None:
        return line  # bare disable already covers every rule
    rules = [part.strip() for part in spec.split(",") if part.strip()]
    if rule_id.upper() in {r.upper() for r in rules}:
        return line
    rules.append(rule_id)
    start, end = match.span()
    return line[:start] + f"# reprolint: disable={','.join(rules)}" + line[end:]


def _module_for(result: LintResult, display: str):
    for module in result.context.modules:
        if module.display_path == display:
            return module
    return None


def plan_fixes(
    result: LintResult,
    *,
    suppress: Sequence[str] = (),
    baseline: Baseline | None = None,
    baseline_path: str | Path | None = None,
) -> list[FixEdit]:
    """Plan every applicable fix for ``result``; nothing is written here."""
    edits: list[FixEdit] = []
    suppress_ids = {s.upper() for s in suppress}

    by_path: dict[str, list[Finding]] = {}
    for finding in result.findings:
        if not finding.baselined:
            by_path.setdefault(finding.path, []).append(finding)

    for display in sorted(by_path):
        module = _module_for(result, display)
        if module is None:
            continue  # doc finding (README) — never auto-edited
        source = module.path.read_text(encoding="utf-8")
        notes: list[str] = []

        add: set[str] = set()
        remove: set[str] = set()
        for finding in by_path[display]:
            if finding.rule != "RL008":
                continue
            missing = _MISSING_EXPORT_RE.match(finding.message)
            if missing is not None:
                add.add(missing.group(1))
            unbound = _UNBOUND_ENTRY_RE.match(finding.message)
            if unbound is not None:
                remove.add(unbound.group(1))
        after = source
        if add or remove:
            rewritten = _rewrite_all_block(after, add, remove)
            if rewritten is not None and rewritten != after:
                after = rewritten
                for name in sorted(add):
                    notes.append(f"RL008: added '{name}' to __all__")
                for name in sorted(remove):
                    notes.append(f"RL008: removed unbound '{name}' from __all__")

        if suppress_ids:
            lines = after.splitlines()
            for finding in sorted(
                by_path[display], key=lambda f: f.line, reverse=True
            ):
                if finding.rule.upper() not in suppress_ids:
                    continue
                if not 1 <= finding.line <= len(lines):
                    continue
                patched = _add_suppression(lines[finding.line - 1], finding.rule)
                if patched != lines[finding.line - 1]:
                    lines[finding.line - 1] = patched
                    notes.append(
                        f"{finding.rule}: suppression scaffold at "
                        f"{display}:{finding.line} — justify or fix, do not ship"
                    )
            candidate = "\n".join(lines) + ("\n" if after.endswith("\n") else "")
            after = candidate

        if after != source:
            edits.append(
                FixEdit(
                    path=module.path,
                    display=display,
                    before=source,
                    after=after,
                    notes=tuple(notes),
                )
            )

    if baseline is not None and baseline_path is not None:
        stale = [
            entry
            for entry in baseline.entries
            if not any(entry.matches(f) for f in result.findings)
        ]
        if stale:
            keep = [e for e in baseline.entries if e not in stale]
            before = Path(baseline_path).read_text(encoding="utf-8")
            after = (
                json.dumps(
                    {
                        "format_version": FORMAT_VERSION,
                        "findings": [e.to_dict() for e in keep],
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            if after != before:
                edits.append(
                    FixEdit(
                        path=Path(baseline_path),
                        display=str(baseline_path),
                        before=before,
                        after=after,
                        notes=tuple(
                            f"baseline: pruned stale entry {e.rule} at {e.path} "
                            f"({e.context})"
                            for e in stale
                        ),
                    )
                )
    return edits


def render_diff(edits: Iterable[FixEdit]) -> str:
    """Unified diffs for ``--fix --dry-run`` — what *would* change."""
    chunks: list[str] = []
    for edit in edits:
        diff = difflib.unified_diff(
            edit.before.splitlines(keepends=True),
            edit.after.splitlines(keepends=True),
            fromfile=f"a/{edit.display}",
            tofile=f"b/{edit.display}",
        )
        chunks.append("".join(diff))
    return "".join(chunks)


def apply_fixes(edits: Iterable[FixEdit]) -> int:
    """Write every planned edit; returns the number of files changed."""
    n = 0
    for edit in edits:
        edit.path.write_text(edit.after, encoding="utf-8")
        n += 1
    return n
