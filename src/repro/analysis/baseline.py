"""Committed baseline: grandfathered findings, each with a written reason.

The baseline is a small JSON file (``.reprolint-baseline.json`` at the repo
root) listing findings that are *deliberate* — e.g. the unseeded generator
behind ``check_random_state(None)``, which is that function's documented
contract.  Matching is line-drift tolerant: an entry matches on
``(rule, path, context, line_text)``, so unrelated edits above the finding
keep it grandfathered while any change to the offending line itself (or
moving it to another function) un-baselines it and fails the build until
re-justified.

Baselined findings are still reported (marked ``baselined``) in every output
format; they just do not affect the exit code.  ``repro lint
--write-baseline`` regenerates the file from the current findings, with a
placeholder reason the author must replace — the tier-1 gate caps how many
entries may exist, so the baseline can only ever be a short, documented
list, not a dumping ground.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME", "write_baseline"]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"
FORMAT_VERSION = 1
_PLACEHOLDER_REASON = "TODO: justify this grandfathered finding or fix it"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    line_text: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule or self.context != finding.context:
            return False
        if self.line_text != finding.line_text:
            return False
        # Suffix-tolerant path compare: the baseline stores repo-root
        # relative paths, but the CLI may be invoked from a subdirectory.
        return finding.path == self.path or finding.path.endswith(
            "/" + self.path
        ) or self.path.endswith("/" + finding.path)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "line_text": self.line_text,
            "reason": self.reason,
        }


class Baseline:
    """A set of grandfathered findings loaded from the committed file."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return any(entry.matches(finding) for entry in self.entries)

    def undocumented(self) -> list[BaselineEntry]:
        """Entries whose reason is missing or still the placeholder."""
        return [
            entry
            for entry in self.entries
            if not entry.reason.strip() or entry.reason == _PLACEHOLDER_REASON
        ]

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline format_version in {path}: "
                f"{payload.get('format_version')!r}"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                context=item.get("context", "<module>"),
                line_text=item.get("line_text", ""),
                reason=item.get("reason", ""),
            )
            for item in payload.get("findings", [])
        ]
        return cls(entries)


def write_baseline(
    path: str | Path, findings: Iterable[Finding], *, keep: Baseline | None = None
) -> Baseline:
    """Write ``findings`` as the new baseline, preserving existing reasons.

    Entries already present in ``keep`` contribute their written reason;
    genuinely new entries get the placeholder reason, which
    :meth:`Baseline.undocumented` (and the tier-1 gate) will complain about
    until a human replaces it.
    """
    entries: list[BaselineEntry] = []
    seen: set[tuple] = set()
    for finding in findings:
        key = finding.key()
        if key in seen:
            continue
        seen.add(key)
        reason = _PLACEHOLDER_REASON
        if keep is not None:
            for entry in keep.entries:
                if entry.matches(finding):
                    reason = entry.reason
                    break
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                context=finding.context,
                line_text=finding.line_text,
                reason=reason,
            )
        )
    entries.sort(key=lambda e: (e.path, e.rule, e.context, e.line_text))
    payload = {
        "format_version": FORMAT_VERSION,
        "findings": [entry.to_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return Baseline(entries)
