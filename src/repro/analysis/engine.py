"""reprolint engine: collect sources, parse once, run every rule, finalize.

The engine owns everything rule-agnostic:

- file collection (``.py`` files under the given paths, deduplicated,
  deterministic order);
- one ``ast.parse`` per file shared by all rules;
- inline suppressions — a trailing ``# reprolint: disable=RL001`` (or a bare
  ``# reprolint: disable`` for all rules) drops findings anchored on that
  line;
- baseline application — committed grandfathered findings are *marked*
  (``Finding.baselined``), never hidden, so every output format can show
  them;
- cross-module state: rules see each module via :meth:`Rule.check_module`
  and then get one :meth:`Rule.finalize` call with the full
  :class:`LintContext`, which is how whole-package contracts (trace-stage
  coverage, snapshot transients inherited across modules) are checked.

Rules never read files themselves; fixtures exercise them by building a
:class:`ParsedModule` from source with :func:`parse_module` under any
pretend path, which is also how the test suite lints "known-bad" snippets
as if they lived in ``src/repro/serve``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = [
    "LintContext",
    "LintResult",
    "ParsedModule",
    "lint_parsed",
    "parse_module",
    "run_lint",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass
class ParsedModule:
    """One parsed source file plus the path facts rules scope on."""

    path: Path
    #: Path as reported in findings (posix, relative to the lint cwd when
    #: possible) — also what baseline entries match against.
    display_path: str
    tree: ast.Module
    lines: list[str]
    #: line number -> suppressed rule ids (``None`` means all rules).
    suppressions: dict[int, frozenset | None]

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.display_path).parts

    @property
    def dotted(self) -> str | None:
        """Dotted module name, anchored at the last ``repro`` path part."""
        parts = list(self.parts)
        if "repro" not in parts:
            return None
        parts = parts[len(parts) - 1 - parts[::-1].index("repro") :]
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        elif parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule_id in rules


def _scan_suppressions(lines: Sequence[str]) -> dict[int, frozenset | None]:
    suppressions: dict[int, frozenset | None] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                part.strip().upper() for part in spec.split(",") if part.strip()
            )
    return suppressions


def parse_module(
    source: str, display_path: str, *, path: Path | None = None
) -> ParsedModule:
    """Parse ``source`` as if it lived at ``display_path`` (posix-style)."""
    tree = ast.parse(source, filename=display_path)
    lines = source.splitlines()
    return ParsedModule(
        path=path if path is not None else Path(display_path),
        display_path=Path(display_path).as_posix(),
        tree=tree,
        lines=lines,
        suppressions=_scan_suppressions(lines),
    )


@dataclass
class LintContext:
    """Everything a rule may consult across modules."""

    modules: list[ParsedModule] = field(default_factory=list)
    #: Non-Python documents to cross-check, e.g. README.md: (display, text).
    docs: list[tuple[str, str]] = field(default_factory=list)
    #: Files that failed to parse: (display_path, error message).
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    def module_by_suffix(self, suffix: str) -> ParsedModule | None:
        for module in self.modules:
            if module.display_path.endswith(suffix):
                return module
        return None

    def module_by_dotted(self, dotted: str) -> ParsedModule | None:
        for module in self.modules:
            if module.dotted == dotted:
                return module
        return None


@dataclass
class LintResult:
    """Sorted findings plus the context they were produced from."""

    findings: list[Finding]
    context: LintContext

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence | None = None,
    docs: Sequence[str | Path] = (),
    baseline=None,
) -> LintResult:
    """Run ``rules`` (default: the full registry) over ``paths``.

    ``docs`` are auxiliary non-Python files (README) offered to rules that
    cross-check prose against code.  ``baseline`` is a
    :class:`repro.analysis.baseline.Baseline`; matched findings are marked,
    not removed.
    """
    context = LintContext()
    for path in _collect_files(paths):
        display = _display_path(path)
        source = path.read_text(encoding="utf-8")
        try:
            context.modules.append(parse_module(source, display, path=path))
        except SyntaxError as exc:
            context.parse_errors.append((display, str(exc)))
    for doc in docs:
        doc_path = Path(doc)
        if doc_path.is_file():
            context.docs.append(
                (_display_path(doc_path), doc_path.read_text(encoding="utf-8"))
            )
    return lint_parsed(context, rules=rules, baseline=baseline)


def lint_parsed(
    context: LintContext,
    *,
    rules: Sequence | None = None,
    baseline=None,
) -> LintResult:
    """Run ``rules`` over an already-built :class:`LintContext`.

    This is the back half of :func:`run_lint`; fixture tests use it to lint
    in-memory modules (built with :func:`parse_module` under a pretend path)
    through the identical suppression/baseline pipeline.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()

    findings: list[Finding] = []
    for display, message in context.parse_errors:
        findings.append(
            Finding(
                rule="RL000",
                severity="error",
                path=display,
                line=1,
                col=0,
                message=f"file does not parse: {message}",
            )
        )
    for rule in rules:
        for module in context.modules:
            findings.extend(rule.check_module(module, context))
        findings.extend(rule.finalize(context))

    kept = []
    for finding in findings:
        module = next(
            (m for m in context.modules if m.display_path == finding.path), None
        )
        if module is not None and module.is_suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    if baseline is not None:
        kept = [
            finding.as_baselined() if baseline.matches(finding) else finding
            for finding in kept
        ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return LintResult(findings=kept, context=context)
