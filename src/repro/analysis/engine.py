"""reprolint engine: collect sources, parse once, run every rule, finalize.

The engine owns everything rule-agnostic:

- file collection (``.py`` files under the given paths, deduplicated,
  deterministic order);
- one ``ast.parse`` per file shared by all rules;
- inline suppressions — a trailing ``# reprolint: disable=RL001`` (or a bare
  ``# reprolint: disable`` for all rules) drops findings anchored on that
  line;
- baseline application — committed grandfathered findings are *marked*
  (``Finding.baselined``), never hidden, so every output format can show
  them;
- cross-module state: rules see each module via :meth:`Rule.check_module`
  and then get one :meth:`Rule.finalize` call with the full
  :class:`LintContext`, which is how whole-package contracts (trace-stage
  coverage, snapshot transients inherited across modules) are checked.

Rules never read files themselves; fixtures exercise them by building a
:class:`ParsedModule` from source with :func:`parse_module` under any
pretend path, which is also how the test suite lints "known-bad" snippets
as if they lived in ``src/repro/serve``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = [
    "LintContext",
    "LintResult",
    "ParsedModule",
    "lint_parsed",
    "parse_module",
    "run_lint",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass
class ParsedModule:
    """One parsed source file plus the path facts rules scope on."""

    path: Path
    #: Path as reported in findings (posix, relative to the lint cwd when
    #: possible) — also what baseline entries match against.
    display_path: str
    tree: ast.Module
    lines: list[str]
    #: line number -> suppressed rule ids (``None`` means all rules).
    suppressions: dict[int, frozenset | None]

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.display_path).parts

    @property
    def dotted(self) -> str | None:
        """Dotted module name, anchored at the last ``repro`` path part."""
        parts = list(self.parts)
        if "repro" not in parts:
            return None
        parts = parts[len(parts) - 1 - parts[::-1].index("repro") :]
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        elif parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule_id in rules


def _scan_suppressions(lines: Sequence[str]) -> dict[int, frozenset | None]:
    suppressions: dict[int, frozenset | None] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                part.strip().upper() for part in spec.split(",") if part.strip()
            )
    return suppressions


def parse_module(
    source: str, display_path: str, *, path: Path | None = None
) -> ParsedModule:
    """Parse ``source`` as if it lived at ``display_path`` (posix-style)."""
    tree = ast.parse(source, filename=display_path)
    lines = source.splitlines()
    return ParsedModule(
        path=path if path is not None else Path(display_path),
        display_path=Path(display_path).as_posix(),
        tree=tree,
        lines=lines,
        suppressions=_scan_suppressions(lines),
    )


@dataclass
class LintContext:
    """Everything a rule may consult across modules."""

    modules: list[ParsedModule] = field(default_factory=list)
    #: Non-Python documents to cross-check, e.g. README.md: (display, text).
    docs: list[tuple[str, str]] = field(default_factory=list)
    #: Files that failed to parse: (display_path, error message).
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: The active Baseline (if any) — cross-module rules consult it to avoid
    #: cascading findings off grandfathered seeds (see RL012).
    baseline: object | None = None
    #: Whole-tree symbol table / call graph (repro.analysis.project),
    #: built once per lint run before rules execute.
    project: object | None = None
    #: Module count override for cache-reconstructed results, where the
    #: original sources are no longer parsed.
    n_files_hint: int | None = None

    @property
    def n_files(self) -> int:
        if self.n_files_hint is not None:
            return self.n_files_hint
        return len(self.modules)

    def module_by_suffix(self, suffix: str) -> ParsedModule | None:
        for module in self.modules:
            if module.display_path.endswith(suffix):
                return module
        return None

    def module_by_dotted(self, dotted: str) -> ParsedModule | None:
        for module in self.modules:
            if module.dotted == dotted:
                return module
        return None


@dataclass
class LintResult:
    """Sorted findings plus the context they were produced from."""

    findings: list[Finding]
    context: LintContext
    #: Per-module ``check_module`` findings (post-suppression, pre-baseline),
    #: keyed by display path — what the incremental cache stores and reuses.
    module_findings: dict[str, list[Finding]] = field(default_factory=dict)
    #: Findings not attributable to one module's ``check_module`` pass:
    #: parse errors plus everything produced by ``finalize`` hooks.
    cross_findings: list[Finding] = field(default_factory=list)

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence | None = None,
    docs: Sequence[str | Path] = (),
    baseline=None,
    cache=None,
    run_finalize: bool = True,
) -> LintResult:
    """Run ``rules`` (default: the full registry) over ``paths``.

    ``docs`` are auxiliary non-Python files (README) offered to rules that
    cross-check prose against code.  ``baseline`` is a
    :class:`repro.analysis.baseline.Baseline`; matched findings are marked,
    not removed.  ``cache`` is a :class:`repro.analysis.cache.LintCache`;
    when given, unchanged modules reuse their stored per-module findings
    (cross-module ``finalize`` passes always re-run) and a fully unchanged
    tree skips parsing entirely.  ``run_finalize=False`` skips every
    cross-module ``finalize`` pass — for diff-scoped runs (``--changed``),
    where whole-tree contracts would see only a slice of their evidence
    and misfire; a full run still checks them.
    """
    file_entries: list[tuple[Path, str, str]] = []
    for path in _collect_files(paths):
        display = _display_path(path)
        file_entries.append((path, display, path.read_text(encoding="utf-8")))
    doc_entries: list[tuple[str, str]] = []
    for doc in docs:
        doc_path = Path(doc)
        if doc_path.is_file():
            doc_entries.append(
                (_display_path(doc_path), doc_path.read_text(encoding="utf-8"))
            )

    reuse = dirty = None
    if cache is not None:
        plan = cache.plan(file_entries, doc_entries, rules)
        if plan.full_hit:
            return cache.cached_result(baseline)
        reuse, dirty = plan.reuse, plan.dirty

    context = LintContext()
    for path, display, source in file_entries:
        try:
            context.modules.append(parse_module(source, display, path=path))
        except SyntaxError as exc:
            context.parse_errors.append((display, str(exc)))
    context.docs = doc_entries
    result = lint_parsed(
        context,
        rules=rules,
        baseline=baseline,
        reuse=reuse,
        dirty=dirty,
        run_finalize=run_finalize,
    )
    if cache is not None:
        cache.store(file_entries, doc_entries, rules, result)
        cache.save()
    return result


def lint_parsed(
    context: LintContext,
    *,
    rules: Sequence | None = None,
    baseline=None,
    reuse=None,
    dirty=None,
    run_finalize: bool = True,
) -> LintResult:
    """Run ``rules`` over an already-built :class:`LintContext`.

    This is the back half of :func:`run_lint`; fixture tests use it to lint
    in-memory modules (built with :func:`parse_module` under a pretend path)
    through the identical suppression/baseline pipeline.

    ``reuse`` maps display paths to cached per-module findings; modules in
    ``reuse`` and not in ``dirty`` skip their ``check_module`` passes and
    adopt the cached findings instead.  ``finalize`` hooks always run — the
    cross-module contracts are exactly what incremental reuse must not
    shortcut.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()

    if context.baseline is None:
        context.baseline = baseline
    if context.project is None:
        from repro.analysis.project import build_project

        context.project = build_project(context)

    def _suppressed(finding: Finding) -> bool:
        module = next(
            (m for m in context.modules if m.display_path == finding.path), None
        )
        return module is not None and module.is_suppressed(
            finding.line, finding.rule
        )

    cross_findings: list[Finding] = []
    for display, message in context.parse_errors:
        cross_findings.append(
            Finding(
                rule="RL000",
                severity="error",
                path=display,
                line=1,
                col=0,
                message=f"file does not parse: {message}",
            )
        )

    module_findings: dict[str, list[Finding]] = {
        module.display_path: [] for module in context.modules
    }
    reused: set[str] = set()
    if reuse is not None:
        dirty = set() if dirty is None else set(dirty)
        for module in context.modules:
            display = module.display_path
            if display in reuse and display not in dirty:
                module_findings[display] = list(reuse[display])
                reused.add(display)

    for rule in rules:
        for module in context.modules:
            if module.display_path in reused:
                continue
            for finding in rule.check_module(module, context):
                if not _suppressed(finding):
                    module_findings[module.display_path].append(finding)
        if run_finalize:
            for finding in rule.finalize(context):
                if not _suppressed(finding):
                    cross_findings.append(finding)

    kept: list[Finding] = list(cross_findings)
    for bucket in module_findings.values():
        kept.extend(bucket)
    if baseline is not None:
        kept = [
            finding.as_baselined() if baseline.matches(finding) else finding
            for finding in kept
        ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return LintResult(
        findings=kept,
        context=context,
        module_findings=module_findings,
        cross_findings=cross_findings,
    )
