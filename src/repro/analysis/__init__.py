"""reprolint: AST-based machine-checks for the serving stack's contracts.

The serving layer's correctness rests on conventions — bit-identical
sequential/thread/process runs, pickle-free seeded snapshots, every
degradation an auditable sink event, every pipeline stage traced — that no
type checker sees.  This package encodes each convention as a small
stdlib-``ast`` rule (``RL001``–``RL012``, see :mod:`repro.analysis.rules`),
runs them through one shared parse (:func:`run_lint`), grandfathers
deliberate exceptions through a committed baseline
(:mod:`repro.analysis.baseline`), and reports in three formats — compiler
text, ``read_events``-compatible JSONL, and sectioned MET/NOT_MET verdicts
(:mod:`repro.analysis.report`).  Since v2 the engine is two-pass: pass 1
builds a whole-tree symbol table and call graph
(:mod:`repro.analysis.project`) that cross-module rules and the
incremental cache (:mod:`repro.analysis.cache`) consume; safe autofixes
live in :mod:`repro.analysis.fix`.  ``repro lint`` is the CLI; the tier-1
test ``tests/analysis/test_lint_src_clean.py`` is the gate that keeps
``src/`` clean forever.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry, write_baseline
from repro.analysis.cache import CachePlan, LintCache
from repro.analysis.engine import (
    LintContext,
    LintResult,
    ParsedModule,
    lint_parsed,
    parse_module,
    run_lint,
)
from repro.analysis.findings import Finding
from repro.analysis.fix import FixEdit, apply_fixes, plan_fixes, render_diff
from repro.analysis.project import ProjectGraph, build_project, function_key
from repro.analysis.report import (
    build_lint_report,
    load_lint_events,
    render_lint_markdown,
    render_text,
    to_event_dicts,
    write_lint_report_files,
)
from repro.analysis.rules import RULE_CLASSES, Rule, default_rules, rules_by_id

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CachePlan",
    "Finding",
    "FixEdit",
    "LintCache",
    "LintContext",
    "LintResult",
    "ParsedModule",
    "ProjectGraph",
    "RULE_CLASSES",
    "Rule",
    "apply_fixes",
    "build_lint_report",
    "build_project",
    "default_rules",
    "function_key",
    "lint_parsed",
    "load_lint_events",
    "parse_module",
    "plan_fixes",
    "render_diff",
    "render_lint_markdown",
    "render_text",
    "rules_by_id",
    "run_lint",
    "to_event_dicts",
    "write_baseline",
    "write_lint_report_files",
]
