"""``repro lint``: run the reprolint rule set from the command line.

Usage::

    repro lint                          # lint src/ (plus README.md) from cwd
    repro lint src/repro benchmarks     # explicit paths
    repro lint --format json --output lint.jsonl src/repro
    repro lint --format report src/repro
    repro lint --rules RL001,RL005 src/repro
    repro lint --write-baseline src/repro
    repro lint --changed                # only git-modified files (pre-commit)
    repro lint --fix --dry-run          # preview safe autofixes as a diff
    repro lint --fix                    # apply them
    repro lint --list-rules

Exit codes: ``0`` — no new findings (baselined ones are reported but do not
fail), ``1`` — at least one new finding, ``2`` — usage error (bad path,
unknown rule, unreadable baseline).  The baseline defaults to
``.reprolint-baseline.json`` in the current directory when present; pass
``--no-baseline`` to see everything fail again.

Full-tree runs keep an incremental cache (``.reprolint-cache.json``) so an
unchanged tree re-lints from stored findings; ``--rules`` subsets and
``--changed`` runs bypass it, and ``--no-cache`` disables it outright.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, write_baseline
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.engine import run_lint
from repro.analysis.fix import apply_fixes, plan_fixes, render_diff
from repro.analysis.report import (
    build_lint_report,
    render_lint_markdown,
    render_text,
    to_event_dicts,
    write_lint_report_files,
)
from repro.analysis.rules import RULE_CLASSES, rules_by_id

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically check the serving stack's contracts (reprolint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: ./src, falling back to .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "report"),
        default="text",
        help="text diagnostics, JSONL events, or a MET/NOT_MET report",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write output here instead of stdout (a directory for --format "
        "report, which writes lint_report.json + lint_report.md)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings "
        "(existing reasons are preserved; new entries get a placeholder)",
    )
    parser.add_argument(
        "--docs",
        type=Path,
        nargs="*",
        default=None,
        help="markdown files to cross-check (default: ./README.md when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files git reports as modified or untracked "
        "(falls back to a full run outside a git checkout)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe autofixes: repair __all__ blocks (RL008), prune "
        "stale baseline entries, and scaffold suppressions (--fix-suppress)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the would-be changes as a unified diff "
        "without writing anything",
    )
    parser.add_argument(
        "--fix-suppress",
        action="append",
        default=None,
        metavar="RLNNN",
        help="with --fix: append an inline suppression scaffold to each "
        "line with a new finding of this rule id (repeatable)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=Path(DEFAULT_CACHE_PATH),
        metavar="PATH",
        help=f"incremental cache file (default: ./{DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the incremental cache",
    )
    return parser


def _changed_files(paths: list[str]) -> list[str] | None:
    """Git-modified + untracked ``.py`` files under ``paths``; None = no git."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    roots = [Path(p).resolve() for p in paths]
    changed: list[str] = []
    seen: set[Path] = set()
    for rel in (diff + untracked).splitlines():
        if not rel.endswith(".py"):
            continue
        candidate = (Path(top) / rel).resolve()
        if not candidate.is_file() or candidate in seen:
            continue  # deleted files show in the diff but cannot be linted
        if any(
            root == candidate or root in candidate.parents for root in roots
        ):
            seen.add(candidate)
            changed.append(str(candidate))
    return sorted(changed)


def _list_rules() -> str:
    lines = ["rule    severity  title"]
    for cls in RULE_CLASSES:
        lines.append(f"{cls.rule_id}   {cls.severity:<8}  {cls.title}")
    return "\n".join(lines)


def _default_paths() -> list[str]:
    src = Path("src")
    return [str(src)] if src.is_dir() else ["."]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Tolerate being handed the full ``repro``-level argv (["lint", ...]).
    if argv and argv[0] == "lint":
        argv = argv[1:]
    args = _parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        rules = (
            rules_by_id(part for part in args.rules.split(",") if part.strip())
            if args.rules
            else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline = None
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None and Path(DEFAULT_BASELINE_NAME).is_file():
            baseline_path = Path(DEFAULT_BASELINE_NAME)
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    docs = args.docs
    if docs is None:
        readme = Path("README.md")
        docs = [readme] if readme.is_file() else []

    if args.dry_run and not args.fix:
        print("error: --dry-run requires --fix", file=sys.stderr)
        return 2
    if args.fix_suppress and not args.fix:
        print("error: --fix-suppress requires --fix", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    run_finalize = True
    if args.changed:
        changed = _changed_files(paths)
        if changed is None:
            print("note: not a git checkout; linting everything", file=sys.stderr)
        elif not changed:
            print("no changed Python files under the given paths; nothing to lint")
            return 0
        else:
            paths = changed
            # A diff slice lacks the evidence whole-tree contracts need
            # (producers, parser homes, call graphs live elsewhere), so
            # cross-module finalize rules are deferred to the full run.
            run_finalize = False
            print(
                f"linting {len(changed)} changed file(s); cross-module "
                "rules deferred to the next full run",
                file=sys.stderr,
            )

    cache = None
    if not args.no_cache and rules is None and not args.changed:
        # --rules subsets and --changed slices see a partial tree; caching
        # either would poison full-tree runs, so both bypass the cache.
        cache = LintCache(args.cache)

    try:
        result = run_lint(
            paths,
            rules=rules,
            docs=docs,
            baseline=baseline,
            cache=cache,
            run_finalize=run_finalize,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix:
        edits = plan_fixes(
            result,
            suppress=args.fix_suppress or (),
            baseline=baseline,
            baseline_path=baseline_path,
        )
        if args.dry_run:
            diff = render_diff(edits)
            print(diff if diff else "nothing to fix")
            return result.exit_code
        if not edits:
            print("nothing to fix")
            return result.exit_code
        apply_fixes(edits)
        for edit in edits:
            for note in edit.notes:
                print(note)
        print(f"fixed {len(edits)} file(s); re-linting")
        reloaded = baseline
        if baseline_path is not None and not args.no_baseline:
            try:
                reloaded = Baseline.load(baseline_path)
            except (OSError, ValueError, KeyError):
                reloaded = None
        result = run_lint(
            paths, rules=rules, docs=docs, baseline=reloaded, cache=cache
        )

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else Path(DEFAULT_BASELINE_NAME)
        written = write_baseline(target, result.findings, keep=baseline)
        print(f"wrote {len(written)} baseline entr(y/ies) to {target}")
        undocumented = written.undocumented()
        if undocumented:
            print(
                f"note: {len(undocumented)} entr(y/ies) carry the placeholder "
                "reason; document them before committing"
            )
        return 0

    if args.format == "text":
        text = render_text(result)
        if args.output is not None:
            args.output.write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
    elif args.format == "json":
        payload = "\n".join(
            json.dumps(event, sort_keys=True) for event in to_event_dicts(result)
        )
        if args.output is not None:
            args.output.write_text(payload + "\n", encoding="utf-8")
        else:
            print(payload)
    else:  # report
        generated_at = datetime.now(timezone.utc).isoformat(  # reprolint: disable=RL001
            timespec="seconds"
        )
        report = build_lint_report(result, generated_at=generated_at)
        if args.output is not None:
            json_path, md_path = write_lint_report_files(args.output, report)
            print(f"wrote {json_path} and {md_path}")
        else:
            print(render_lint_markdown(report))

    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
