"""Incremental lint cache: skip re-analysis of files that did not change.

The cache stores, per scanned file, the SHA-256 of its source, the display
paths it imports (from the pass-1 project graph), and the per-module
findings its last ``check_module`` pass produced (post-suppression,
pre-baseline).  On the next run:

* a file whose hash matches — and whose transitive imports all match — has
  its stored findings **reused** without re-running ``check_module``;
* a changed, added, or removed file dirties itself *and every transitive
  dependent* (reverse import closure over the stored dependency edges), so
  cross-module inheritance effects (e.g. RL002 transients declared on a
  base class in another module) are never served stale;
* when nothing changed at all — sources, docs, rule set, rule versions —
  the whole run is reconstructed from the cache without parsing a single
  file (``finalize`` output is stored as ``cross`` findings);
* otherwise ``finalize`` hooks always re-run: cross-module contracts are
  exactly what incremental reuse must not shortcut.

The cache is keyed by a **fingerprint** of the engine's cache-format
version plus every rule's ``rule_id:version`` pair; bumping a rule's
``version`` class attribute (required whenever its semantics change)
invalidates every stored entry at once.  A missing, unreadable, or
mismatched cache file degrades to a full run — the cache can always be
deleted safely, and ``--rules`` subset runs bypass it entirely (the CLI
never wires a cache up for them, and :meth:`LintCache.store` refuses to
persist subset results as a second line of defence).

The baseline is deliberately **not** part of the cached state: stored
findings are pre-baseline, and :meth:`cached_result` re-applies the
baseline passed to the current run, so editing ``.reprolint-baseline.json``
takes effect immediately even on a full cache hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import LintContext, LintResult
from repro.analysis.findings import Finding

__all__ = ["CachePlan", "DEFAULT_CACHE_PATH", "LintCache"]

DEFAULT_CACHE_PATH = ".reprolint-cache.json"

#: Bump when the cached payload layout (not a rule) changes semantics.
_ENGINE_CACHE_VERSION = 1
_FORMAT_VERSION = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fingerprint(rules: Sequence | None) -> str:
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    parts = [f"engine:{_ENGINE_CACHE_VERSION}"]
    parts.extend(
        sorted(f"{r.rule_id}:{getattr(r, 'version', 1)}" for r in rules)
    )
    return "|".join(parts)


@dataclass(frozen=True)
class CachePlan:
    """What :func:`repro.analysis.engine.run_lint` may skip this run."""

    #: Nothing changed — reconstruct the whole result via ``cached_result``.
    full_hit: bool
    #: display path -> stored per-module findings, for unchanged files.
    reuse: dict[str, list[Finding]] | None
    #: display paths whose ``check_module`` pass must re-run regardless.
    dirty: set[str] | None


class LintCache:
    """On-disk cache behind ``repro lint`` (``--no-cache`` to opt out)."""

    def __init__(self, path: str | Path = DEFAULT_CACHE_PATH) -> None:
        self.path = Path(path)
        self._data = self._load()
        self._pending: dict | None = None
        #: Filled by :meth:`plan`; surfaced in ``--verbose`` output.
        self.last_plan: CachePlan | None = None

    # -- persistence ----------------------------------------------------

    def _load(self) -> dict:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != _FORMAT_VERSION
        ):
            return {}
        return payload

    def save(self) -> None:
        """Atomically persist the state prepared by :meth:`store`."""
        if self._pending is None:
            return
        payload = json.dumps(self._pending, indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent or Path(".")), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self._data = self._pending
        self._pending = None

    # -- planning -------------------------------------------------------

    def plan(
        self,
        file_entries: Sequence[tuple[Path, str, str]],
        doc_entries: Sequence[tuple[str, str]],
        rules: Sequence | None,
    ) -> CachePlan:
        """Decide what the current run can reuse from the stored state."""
        miss = CachePlan(full_hit=False, reuse=None, dirty=None)
        if rules is not None or self._data.get("fingerprint") != _fingerprint(
            None
        ):
            self.last_plan = miss
            return miss
        cached_files: dict = self._data.get("files", {})
        cached_docs: dict = self._data.get("docs", {})

        current = {display: _sha256(source) for _, display, source in file_entries}
        changed = {
            display
            for display, digest in current.items()
            if cached_files.get(display, {}).get("sha256") != digest
        }
        removed = set(cached_files) - set(current)
        docs_now = {display: _sha256(text) for display, text in doc_entries}
        docs_changed = docs_now != cached_docs

        if not changed and not removed and not docs_changed:
            self.last_plan = CachePlan(full_hit=True, reuse=None, dirty=None)
            return self.last_plan

        # Reverse import closure over the *stored* dependency edges: a
        # changed module dirties everything that (transitively) imports it.
        reverse: dict[str, set[str]] = {}
        for display, entry in cached_files.items():
            for dep in entry.get("deps", ()):
                reverse.setdefault(dep, set()).add(display)
        dirty = set(changed) | removed
        frontier = list(dirty)
        while frontier:
            for importer in reverse.get(frontier.pop(), ()):
                if importer not in dirty:
                    dirty.add(importer)
                    frontier.append(importer)
        dirty &= set(current)

        reuse: dict[str, list[Finding]] = {}
        for display in current:
            if display in dirty or display not in cached_files:
                continue
            reuse[display] = [
                Finding.from_dict(payload)
                for payload in cached_files[display].get("findings", ())
            ]
        self.last_plan = CachePlan(full_hit=False, reuse=reuse, dirty=dirty)
        return self.last_plan

    def cached_result(self, baseline=None) -> LintResult:
        """Reconstruct the last run's result without parsing anything.

        The baseline is re-applied fresh — stored findings are pre-baseline
        — so baseline edits take effect even on a full hit.
        """
        module_findings: dict[str, list[Finding]] = {}
        for display, entry in sorted(self._data.get("files", {}).items()):
            module_findings[display] = [
                Finding.from_dict(payload)
                for payload in entry.get("findings", ())
            ]
        cross_findings = [
            Finding.from_dict(payload)
            for payload in self._data.get("cross", ())
        ]
        kept: list[Finding] = list(cross_findings)
        for bucket in module_findings.values():
            kept.extend(bucket)
        if baseline is not None:
            kept = [
                finding.as_baselined()
                if baseline.matches(finding)
                else finding
                for finding in kept
            ]
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
        context = LintContext(
            baseline=baseline,
            n_files_hint=int(self._data.get("n_files", len(module_findings))),
        )
        return LintResult(
            findings=kept,
            context=context,
            module_findings=module_findings,
            cross_findings=cross_findings,
        )

    # -- storing --------------------------------------------------------

    def store(
        self,
        file_entries: Sequence[tuple[Path, str, str]],
        doc_entries: Sequence[tuple[str, str]],
        rules: Sequence | None,
        result: LintResult,
    ) -> None:
        """Prepare the post-run state; :meth:`save` persists it."""
        if rules is not None:
            # A --rules subset would store partial findings under the full
            # fingerprint's shape; refuse rather than poison later runs.
            self._pending = None
            return
        deps_by_display: dict[str, set[str]] = {}
        project = result.context.project
        if project is not None:
            deps_by_display = getattr(project, "module_deps", {}) or {}
        files: dict[str, dict] = {}
        for _, display, source in file_entries:
            files[display] = {
                "sha256": _sha256(source),
                "deps": sorted(deps_by_display.get(display, ())),
                "findings": [
                    f.to_dict()
                    for f in result.module_findings.get(display, ())
                ],
            }
        self._pending = {
            "format_version": _FORMAT_VERSION,
            "fingerprint": _fingerprint(None),
            "files": files,
            "docs": {
                display: _sha256(text) for display, text in doc_entries
            },
            "cross": [f.to_dict() for f in result.cross_findings],
            "n_files": len(file_entries),
        }
