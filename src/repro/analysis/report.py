"""reprolint output: text, JSONL events, and MET/NOT_MET verdict reports.

Three renderings of one :class:`~repro.analysis.engine.LintResult`:

- :func:`render_text` — compiler-style ``path:line:col`` lines plus a
  summary, for interactive use;
- :func:`to_event_dicts` / :func:`load_lint_events` — one JSON object per
  finding plus a trailing ``lint_summary`` object, the same JSONL shape the
  serving sinks write, so the stream round-trips through
  :func:`repro.serve.sinks.read_events` and downstream tooling can treat
  lint findings as just another event log;
- :func:`build_lint_report` / :func:`render_lint_markdown` — a sectioned
  MET/NOT_MET report, one section per rule, with the same check/verdict
  grammar as :mod:`repro.serve.telemetry.report` (``error`` findings are
  *major* check failures, ``warning`` findings *minor*, and verdicts roll
  up identically: NOT_MET on any major failure, PARTIALLY_MET on
  minor-only, MET otherwise).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_CLASSES

__all__ = [
    "build_lint_report",
    "load_lint_events",
    "render_lint_markdown",
    "render_text",
    "to_event_dicts",
    "write_lint_report_files",
]

FORMAT_VERSION = 1
_MAX_EVIDENCE_FINDINGS = 5


def _summary_counts(result: LintResult) -> dict:
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "n_findings": len(result.findings),
        "n_new": len(result.new),
        "n_baselined": len(result.baselined),
        "n_files": result.context.n_files,
        "by_rule": dict(sorted(by_rule.items())),
    }


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------


def render_text(result: LintResult) -> str:
    lines = []
    for finding in result.findings:
        suffix = "  [baselined]" if finding.baselined else ""
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}{suffix}"
        )
    counts = _summary_counts(result)
    lines.append(
        f"{counts['n_findings']} finding(s) "
        f"({counts['n_new']} new, {counts['n_baselined']} baselined) "
        f"across {counts['n_files']} file(s)"
    )
    if counts["by_rule"]:
        lines.append(
            "by rule: "
            + ", ".join(f"{rule}={n}" for rule, n in counts["by_rule"].items())
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSONL events (read back with repro.serve.sinks.read_events)
# ---------------------------------------------------------------------------


def to_event_dicts(result: LintResult) -> list[dict]:
    """Findings as JSONL-ready dicts, closed by one ``lint_summary`` event."""
    events = [finding.to_dict() for finding in result.findings]
    summary = {"type": "lint_summary", "format_version": FORMAT_VERSION}
    summary.update(_summary_counts(result))
    summary["exit_code"] = result.exit_code
    events.append(summary)
    return events


def load_lint_events(path: str | Path) -> tuple[list[Finding], dict]:
    """Round-trip a ``--format json`` file back into findings + summary.

    Delegates line handling to :func:`repro.serve.sinks.read_events`, so the
    crash-recovery contract (drop a truncated trailing line, raise on
    mid-file corruption) is exactly the event-log one.
    """
    from repro.serve.sinks import read_events

    findings: list[Finding] = []
    summary: dict = {}
    for event in read_events(path):
        if event.get("type") == "lint_finding":
            findings.append(Finding.from_dict(event))
        elif event.get("type") == "lint_summary":
            summary = event
    return findings, summary


# ---------------------------------------------------------------------------
# MET/NOT_MET report (same check grammar as repro.serve.telemetry.report)
# ---------------------------------------------------------------------------


def _check(
    check_id: str,
    title: str,
    met: bool,
    *,
    severity: str = "major",
    evidence: Mapping[str, Any] | None = None,
) -> dict:
    # Same shape and verdict grammar as repro.serve.telemetry.report._check,
    # so lint reports and serving run reports read identically.
    return {
        "id": check_id,
        "title": title,
        "verdict": "MET" if met else "NOT_MET",
        "severity": severity,
        "evidence": dict(evidence or {}),
    }


def _section_verdict(checks: Sequence[Mapping[str, Any]]) -> str:
    failed = [c for c in checks if c["verdict"] != "MET"]
    if any(c["severity"] == "major" for c in failed):
        return "NOT_MET"
    if failed:
        return "PARTIALLY_MET"
    return "MET"


def build_lint_report(
    result: LintResult, *, generated_at: str | None = None, title: str = "reprolint report"
) -> dict:
    """Build the report payload (pure: result in, dict out).

    One section per registered rule; a rule's check fails when it produced
    *new* (non-baselined) findings, with severity mapped from the findings
    (``error`` -> major, ``warning``-only -> minor).  Baselined findings are
    listed as evidence but never fail a check.
    """
    sections = []
    for index, rule_cls in enumerate(RULE_CLASSES, start=1):
        rule_id = rule_cls.rule_id
        mine = [f for f in result.findings if f.rule == rule_id]
        new = [f for f in mine if not f.baselined]
        severity = (
            "major"
            if any(f.severity == "error" for f in new) or not new
            else "minor"
        )
        evidence: dict[str, Any] = {
            "n_new": len(new),
            "n_baselined": len(mine) - len(new),
        }
        if new:
            evidence["findings"] = [
                f"{f.location()} {f.message}" for f in new[:_MAX_EVIDENCE_FINDINGS]
            ]
            if len(new) > _MAX_EVIDENCE_FINDINGS:
                evidence["truncated"] = len(new) - _MAX_EVIDENCE_FINDINGS
        checks = [
            _check(
                rule_id,
                rule_cls.title,
                not new,
                severity=severity,
                evidence=evidence,
            )
        ]
        sections.append(
            {
                "index": index,
                "title": f"{rule_id} — {rule_cls.title}",
                "verdict": _section_verdict(checks),
                "checks": checks,
                "data": {},
            }
        )
    all_checks = [c for section in sections for c in section["checks"]]
    report = {
        "format_version": FORMAT_VERSION,
        "title": title,
        "overall": _section_verdict(all_checks),
        "summary": _summary_counts(result),
        "sections": sections,
    }
    if generated_at is not None:
        report["generated_at"] = generated_at
    return report


def render_lint_markdown(report: Mapping[str, Any]) -> str:
    """Render the report payload as markdown (telemetry report style)."""
    summary = report.get("summary", {})
    lines = [
        f"# {report.get('title', 'reprolint report')}",
        "",
        f"- Overall: **{report.get('overall', 'NOT_MET')}**",
        f"- Findings: {summary.get('n_findings', 0)}"
        f" ({summary.get('n_new', 0)} new,"
        f" {summary.get('n_baselined', 0)} baselined)"
        f" across {summary.get('n_files', 0)} files",
    ]
    if report.get("generated_at"):
        lines.append(f"- Generated at: `{report['generated_at']}`")
    lines.append("")
    lines.append("## Rules")
    for section in report.get("sections", []):
        lines.append("")
        lines.append(
            f"### {section.get('index', '?')}. {section.get('title', '?')}"
            f" — **{section.get('verdict', 'NOT_MET')}**"
        )
        lines.append("")
        for check in section.get("checks", []):
            lines.append(
                f"- `{check['id']}` **{check['verdict']}**"
                f" ({check['severity']}) — {check['title']}"
            )
            evidence = check.get("evidence", {})
            for item in evidence.get("findings", []):
                lines.append(f"  - {item}")
            if evidence.get("truncated"):
                lines.append(f"  - … {evidence['truncated']} more")
            if evidence.get("n_baselined"):
                lines.append(
                    f"  - ({evidence['n_baselined']} baselined finding(s) "
                    "grandfathered)"
                )
    lines.append("")
    return "\n".join(lines)


def write_lint_report_files(
    out_dir: str | Path, report: Mapping[str, Any]
) -> tuple[Path, Path]:
    """Write ``lint_report.json`` + ``lint_report.md``; return the paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "lint_report.json"
    md_path = out_dir / "lint_report.md"
    json_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    md_path.write_text(render_lint_markdown(report), encoding="utf-8")
    return json_path, md_path
