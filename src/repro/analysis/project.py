"""Pass 1 of the two-pass linter: whole-tree symbol table and call graph.

Per-module rules see one file at a time; the cross-module family
(RL009–RL012) needs to know *who defines what* and *who calls whom* across
the scanned tree.  :func:`build_project` walks every parsed module once and
produces a :class:`ProjectGraph`:

- per module: defined classes (with their method names and the set of
  ``self.<attr>`` names each class writes), top-level functions, the
  ``__all__`` export list, and the import alias table with relative imports
  resolved against the module's dotted name;
- a module dependency graph (``module_deps``) over the scanned files only —
  the incremental cache uses its *reverse* edges to invalidate dependents
  transitively when a module changes;
- a call graph keyed by ``"<display_path>::<qualname>"``: direct calls to
  same-module functions, ``self.method()`` calls within a class, and calls
  through ``import``/``from … import`` aliases resolved to functions of
  other scanned modules, each edge annotated with the first call-site line.

Resolution is deliberately static and conservative: calls through variables,
containers, ``getattr``, or methods on objects of unknown type produce no
edge (the consuming rules document this as a false negative).  Everything is
keyed on display paths and dotted names derived from path shape, so fixture
modules parsed under pretend paths participate exactly like files on disk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import LintContext, ParsedModule
from repro.analysis.rules.base import dotted_name

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_project",
    "function_key",
]


def function_key(display_path: str, qualname: str) -> str:
    """The call-graph node id for ``qualname`` defined in ``display_path``."""
    return f"{display_path}::{qualname}"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str  # display path
    qualname: str  # "func" or "Class.method"
    lineno: int


@dataclass
class ModuleInfo:
    """Symbols one module defines plus its resolved imports."""

    display_path: str
    dotted: str | None
    #: class name -> method names defined on the class body.
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: class name -> ``self.<attr>`` names the class writes anywhere.
    attr_writes: dict[str, set[str]] = field(default_factory=dict)
    #: qualnames of every function/method ("func", "Class.method").
    functions: set[str] = field(default_factory=set)
    #: local name -> canonical dotted target ("repro.serve.sinks",
    #: "repro.serve.sinks.read_events", "numpy", ...).
    imports: dict[str, str] = field(default_factory=dict)
    #: ``__all__`` entries when statically resolvable, else None.
    all_exports: list[str] | None = None


@dataclass
class ProjectGraph:
    """The resolved whole-tree view rules and the cache consume."""

    #: display path -> ModuleInfo.
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: dotted module name -> display path (scanned modules only).
    by_dotted: dict[str, str] = field(default_factory=dict)
    #: function key -> FunctionInfo.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller function key -> {callee function key: first call-site line}.
    call_edges: dict[str, dict[str, int]] = field(default_factory=dict)
    #: display path -> display paths of scanned modules it imports.
    module_deps: dict[str, set[str]] = field(default_factory=dict)

    def dependents(self, displays: set[str]) -> set[str]:
        """Transitive closure of modules importing anything in ``displays``."""
        reverse: dict[str, set[str]] = {}
        for importer, deps in self.module_deps.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(importer)
        closed = set(displays)
        frontier = list(displays)
        while frontier:
            for importer in reverse.get(frontier.pop(), ()):
                if importer not in closed:
                    closed.add(importer)
                    frontier.append(importer)
        return closed

    def callers_of(self, callee_key: str) -> dict[str, int]:
        """Caller key -> call-site line for every edge into ``callee_key``."""
        found: dict[str, int] = {}
        for caller, edges in self.call_edges.items():
            if callee_key in edges:
                found[caller] = edges[callee_key]
        return found


def _resolve_relative(module: ParsedModule, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a relative ``from … import``, if knowable."""
    dotted = module.dotted
    if dotted is None:
        return None
    package = dotted.rsplit(".", 1)[0] if "." in dotted else dotted
    if module.display_path.endswith("__init__.py"):
        package = dotted
    parts = package.split(".")
    hops = node.level - 1
    if hops > len(parts):
        return None
    base = parts[: len(parts) - hops]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _collect_imports(module: ParsedModule) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                target = node.module
            else:
                target = _resolve_relative(module, node)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{target}.{alias.name}"
    return imports


def _collect_all_exports(module: ParsedModule) -> list[str] | None:
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = stmt.value
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    return [e.value for e in value.elts]
                return None
    return None


class _DefCollector(ast.NodeVisitor):
    """Record classes, methods, functions, and per-class self-attr writes."""

    def __init__(self, info: ModuleInfo, display: str) -> None:
        self.info = info
        self.display = display
        self.functions: dict[str, FunctionInfo] = {}
        self._class: list[str] = []
        self._func: list[str] = []

    def _qualname(self, name: str) -> str:
        if self._class:
            return f"{self._class[-1]}.{name}"
        return name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class and not self._func:
            self.info.classes[node.name] = set()
            self.info.attr_writes.setdefault(node.name, set())
            self._class.append(node.name)
            self.generic_visit(node)
            self._class.pop()

    def _visit_func(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        if self._class and not self._func:
            self.info.classes[self._class[-1]].add(name)
        if not self._func:
            qualname = self._qualname(name)
            self.info.functions.add(qualname)
            key = function_key(self.display, qualname)
            self.functions[key] = FunctionInfo(
                module=self.display, qualname=qualname, lineno=node.lineno  # type: ignore[attr-defined]
            )
        self._func.append(name)
        self.generic_visit(node)
        self._func.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_attr_write(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_attr_write([node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_attr_write([node.target])
        self.generic_visit(node)

    def _record_attr_write(self, targets: list[ast.expr]) -> None:
        if not self._class:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.info.attr_writes[self._class[-1]].add(target.attr)


class _CallCollector(ast.NodeVisitor):
    """Resolve call expressions into call-graph edges for one module."""

    def __init__(self, graph: ProjectGraph, module: ParsedModule) -> None:
        self.graph = graph
        self.module = module
        self.info = graph.modules[module.display_path]
        self._class: list[str] = []
        self._func: list[str] = []

    @property
    def _caller_key(self) -> str | None:
        if not self._func:
            return None
        qualname = self._func[0]
        if self._class:
            qualname = f"{self._class[-1]}.{self._func[0]}"
        return function_key(self.module.display_path, qualname)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class.append(node.name)
        self.generic_visit(node)
        self._class.pop()

    def _visit_func(self, node: ast.AST) -> None:
        self._func.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._func.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._caller_key
        if caller is not None:
            callee = self._resolve(node.func)
            if callee is not None and callee in self.graph.functions:
                self.graph.call_edges.setdefault(caller, {}).setdefault(
                    callee, node.lineno
                )
        self.generic_visit(node)

    def _resolve(self, func: ast.expr) -> str | None:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        display = self.module.display_path
        # self.method() within the enclosing class.
        if head == "self" and self._class and rest and "." not in rest:
            cls = self._class[-1]
            if rest in self.info.classes.get(cls, ()):
                return function_key(display, f"{cls}.{rest}")
            return None
        # Same-module function or Class.method.
        if not rest and dotted in self.info.functions:
            return function_key(display, dotted)
        if rest and "." not in rest and f"{head}.{rest}" in self.info.functions:
            return function_key(display, f"{head}.{rest}")
        # Through an import alias.
        if head in self.info.imports:
            target = self.info.imports[head]
            full = f"{target}.{rest}" if rest else target
            return self._resolve_dotted(full)
        return None

    def _resolve_dotted(self, full: str) -> str | None:
        """Map an absolute dotted callable to a scanned function key."""
        parts = full.split(".")
        # Longest scanned-module prefix wins; the remainder is the qualname.
        for split in range(len(parts) - 1, 0, -1):
            module_dotted = ".".join(parts[:split])
            display = self.graph.by_dotted.get(module_dotted)
            if display is None:
                continue
            qualname = ".".join(parts[split:])
            if qualname in self.graph.modules[display].functions:
                return function_key(display, qualname)
            return None
        return None


def build_project(context: LintContext) -> ProjectGraph:
    """Build the :class:`ProjectGraph` for every module in ``context``."""
    graph = ProjectGraph()
    for module in context.modules:
        info = ModuleInfo(
            display_path=module.display_path,
            dotted=module.dotted,
            imports=_collect_imports(module),
            all_exports=_collect_all_exports(module),
        )
        collector = _DefCollector(info, module.display_path)
        collector.visit(module.tree)
        graph.functions.update(collector.functions)
        graph.modules[module.display_path] = info
        if module.dotted is not None:
            graph.by_dotted.setdefault(module.dotted, module.display_path)
    for display, info in graph.modules.items():
        deps: set[str] = set()
        for target in info.imports.values():
            parts = target.split(".")
            for split in range(len(parts), 0, -1):
                dep = graph.by_dotted.get(".".join(parts[:split]))
                if dep is not None and dep != display:
                    deps.add(dep)
                    break
        graph.module_deps[display] = deps
    for module in context.modules:
        _CallCollector(graph, module).visit(module.tree)
    return graph
