"""Unsupervised continual-learning (UCL) baselines: ADCN and LwF.

The paper compares CND-IDS against two SOTA UCL algorithms:

* **ADCN** (Ashfahani & Pratama, 2023) — an autonomous deep clustering
  network: an autoencoder whose latent space is partitioned into an evolving
  set of clusters; new clusters are spawned when incoming data is far from
  every existing cluster.  Classification assigns a sample to the nearest
  cluster and returns that cluster's label.
* **LwF** — an autoencoder + K-Means classifier regularised with a Learning
  without Forgetting (Li & Hoiem, 2018) distillation term: when training on a
  new experience the model is additionally penalised for deviating from the
  frozen previous model's outputs.

Both methods need a small amount of *labeled* normal and attack data to map
clusters to classes (exactly as noted in the paper, Sec. IV-A); they treat
normal and attack data symmetrically, which is the structural weakness
CND-IDS exploits.
"""

from __future__ import annotations

import numpy as np

from repro.continual.base import ContinualMethod
from repro.ml.distances import pairwise_euclidean, pairwise_topk
from repro.ml.kmeans import KMeans
from repro.ml.scalers import StandardScaler
from repro.nn.data import batch_iterator
from repro.nn.losses import MSELoss
from repro.nn.models import Autoencoder
from repro.nn.optim import Adam
from repro.utils.random import check_random_state
from repro.utils.validation import check_array

__all__ = ["ADCN", "LwF"]


class _LatentClusterBaseline(ContinualMethod):
    """Shared machinery: an autoencoder feature space plus labeled latent clusters."""

    supports_scores = False
    requires_labels = True

    def __init__(
        self,
        input_dim: int,
        *,
        latent_dim: int | None = None,
        hidden_dims: tuple[int, ...] = (256,),
        n_clusters: int = 8,
        epochs: int = 10,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        random_state: int | None = 0,
    ) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if latent_dim is None:
            # Same default embedding width as CND-IDS so the comparison is fair.
            latent_dim = max(64, input_dim)
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.hidden_dims = tuple(hidden_dims)
        self.n_clusters = n_clusters
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._rng = check_random_state(random_state)

        self.autoencoder = Autoencoder(
            input_dim,
            latent_dim=latent_dim,
            hidden_dims=hidden_dims,
            random_state=random_state,
        )
        self.scaler = StandardScaler()
        self._scaler_fitted = False
        self.cluster_centers_: np.ndarray | None = None
        self.cluster_labels_: np.ndarray | None = None
        self.experience_count = 0
        self._mse = MSELoss()

    # -- scaling / encoding -----------------------------------------------------
    def _prepare(self, X: np.ndarray, *, fit_scaler: bool) -> np.ndarray:
        X = check_array(X, name="X")
        if fit_scaler and not self._scaler_fitted:
            self.scaler.fit(X)
            self._scaler_fitted = True
        return self.scaler.transform(X)

    def _encode(self, X_scaled: np.ndarray) -> np.ndarray:
        self.autoencoder.eval()
        return self.autoencoder.encode(X_scaled)

    # -- cluster labelling ----------------------------------------------------------
    def _label_clusters(
        self, calibration_X: np.ndarray | None, calibration_y: np.ndarray | None
    ) -> None:
        """Assign a binary label to every cluster by majority vote of the calibration set."""
        if self.cluster_centers_ is None:
            return
        n_clusters = self.cluster_centers_.shape[0]
        labels = np.zeros(n_clusters, dtype=np.int64)
        if calibration_X is not None and calibration_y is not None and calibration_X.shape[0]:
            X_scaled = self.scaler.transform(np.asarray(calibration_X, dtype=np.float64))
            latent = self._encode(X_scaled)
            assignment = pairwise_topk(latent, self.cluster_centers_, 1)[0][:, 0]
            y = np.asarray(calibration_y)
            for cluster in range(n_clusters):
                members = y[assignment == cluster]
                if members.size:
                    labels[cluster] = int(round(members.mean()))
                else:
                    labels[cluster] = int(round(y.mean()))
        self.cluster_labels_ = labels

    # -- prediction ----------------------------------------------------------------
    def predict(self, X: np.ndarray, y_true: np.ndarray | None = None) -> np.ndarray:
        if self.cluster_centers_ is None or self.cluster_labels_ is None:
            raise RuntimeError(f"{self.name} has not been fitted on any experience yet")
        X_scaled = self._prepare(X, fit_scaler=False)
        latent = self._encode(X_scaled)
        assignment = pairwise_topk(latent, self.cluster_centers_, 1)[0][:, 0]
        return self.cluster_labels_[assignment]


class ADCN(_LatentClusterBaseline):
    """Autonomous Deep Clustering Network baseline.

    Per experience the autoencoder is refined with a plain reconstruction
    loss, the training data is encoded, and the latent cluster set *evolves*:
    points far from every existing cluster spawn new clusters (K-Means over
    the unexplained points), close points update the matched cluster centres.
    No explicit anti-forgetting regularisation is applied, so earlier clusters
    gradually go stale as the latent space drifts — the behaviour the paper's
    BwdTrans/FwdTrans numbers reflect.
    """

    def __init__(
        self,
        input_dim: int,
        *,
        novelty_factor: float = 2.0,
        max_clusters: int = 64,
        **kwargs: object,
    ) -> None:
        super().__init__(input_dim, **kwargs)
        if novelty_factor <= 0:
            raise ValueError("novelty_factor must be positive")
        self.novelty_factor = novelty_factor
        self.max_clusters = max_clusters

    def _train_autoencoder(self, X_scaled: np.ndarray) -> None:
        optimizer = Adam(self.autoencoder.parameters(), lr=self.learning_rate)
        self.autoencoder.train()
        for _ in range(self.epochs):
            for (batch,) in batch_iterator(
                X_scaled, batch_size=self.batch_size, random_state=self._rng
            ):
                reconstruction = self.autoencoder(batch)
                _, grad = self._mse(reconstruction, batch)
                self.autoencoder.zero_grad()
                self.autoencoder.backward(grad)
                optimizer.step()
        self.autoencoder.eval()

    def _evolve_clusters(self, latent: np.ndarray) -> None:
        if self.cluster_centers_ is None:
            n_clusters = min(self.n_clusters, latent.shape[0])
            kmeans = KMeans(n_clusters=n_clusters, random_state=self._rng).fit(latent)
            self.cluster_centers_ = kmeans.cluster_centers_
            return
        distances = pairwise_euclidean(latent, self.cluster_centers_)
        nearest = distances.min(axis=1)
        assignment = distances.argmin(axis=1)
        scale = np.median(nearest) + 1e-12
        explained = nearest <= self.novelty_factor * scale

        # Update matched centres with the mean of their newly assigned points.
        for cluster in np.unique(assignment[explained]):
            members = latent[explained & (assignment == cluster)]
            if members.shape[0]:
                self.cluster_centers_[cluster] = (
                    0.5 * self.cluster_centers_[cluster] + 0.5 * members.mean(axis=0)
                )

        unexplained = latent[~explained]
        room = self.max_clusters - self.cluster_centers_.shape[0]
        if unexplained.shape[0] >= 2 and room > 0:
            n_new = int(min(room, max(1, self.n_clusters // 2), unexplained.shape[0]))
            kmeans = KMeans(n_clusters=n_new, random_state=self._rng).fit(unexplained)
            self.cluster_centers_ = np.vstack(
                [self.cluster_centers_, kmeans.cluster_centers_]
            )

    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        X_scaled = self._prepare(X_train, fit_scaler=True)
        self._train_autoencoder(X_scaled)
        latent = self._encode(X_scaled)
        self._evolve_clusters(latent)
        self._label_clusters(calibration_X, calibration_y)
        self.experience_count += 1


class LwF(_LatentClusterBaseline):
    """Autoencoder + K-Means with Learning-without-Forgetting distillation.

    From the second experience on, the training loss adds a distillation term
    ``lambda_lwf * MSE(model(x), old_model(x))`` against a frozen copy of the
    previous-experience model.  Clusters are re-fitted on the current
    experience's latent representation and labeled with the calibration set.
    """

    def __init__(
        self,
        input_dim: int,
        *,
        lambda_lwf: float = 1.0,
        **kwargs: object,
    ) -> None:
        super().__init__(input_dim, **kwargs)
        if lambda_lwf < 0:
            raise ValueError("lambda_lwf must be non-negative")
        self.lambda_lwf = lambda_lwf
        self._previous_model: Autoencoder | None = None

    def _train_autoencoder(self, X_scaled: np.ndarray) -> None:
        optimizer = Adam(self.autoencoder.parameters(), lr=self.learning_rate)
        self.autoencoder.train()
        for _ in range(self.epochs):
            for (batch,) in batch_iterator(
                X_scaled, batch_size=self.batch_size, random_state=self._rng
            ):
                reconstruction = self.autoencoder(batch)
                _, grad = self._mse(reconstruction, batch)
                if self._previous_model is not None and self.lambda_lwf > 0:
                    old_output = self._previous_model(batch)
                    _, distill_grad = self._mse(reconstruction, old_output)
                    grad = grad + self.lambda_lwf * distill_grad
                self.autoencoder.zero_grad()
                self.autoencoder.backward(grad)
                optimizer.step()
        self.autoencoder.eval()

    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        X_scaled = self._prepare(X_train, fit_scaler=True)
        self._train_autoencoder(X_scaled)
        latent = self._encode(X_scaled)
        n_clusters = min(self.n_clusters, latent.shape[0])
        kmeans = KMeans(n_clusters=n_clusters, random_state=self._rng).fit(latent)
        self.cluster_centers_ = kmeans.cluster_centers_
        self._label_clusters(calibration_X, calibration_y)
        self._previous_model = self.autoencoder.clone()
        self._previous_model.eval()
        self.experience_count += 1
