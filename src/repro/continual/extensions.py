"""Additional continual-learning strategies beyond the paper's two baselines.

The related work the paper cites (Kumar et al., Amalapuram et al.) relies on
memory-replay continual learning; and any CL study needs the cumulative
(retrain-on-everything) reference point.  Both are provided here as
extensions so the comparison benches can position CND-IDS against them:

* :class:`ExperienceReplay` — an autoencoder + K-Means classifier that keeps a
  bounded reservoir of past samples and mixes them into every new experience's
  training batch (the classic replay recipe, label-free for training but, like
  ADCN / LwF, needing a small labeled calibration set to name its clusters).
* :class:`CumulativeRetraining` — retrains from scratch on the union of all
  experiences seen so far.  Not a practical deployment (unbounded memory) but
  the standard upper-bound reference for forgetting.
"""

from __future__ import annotations

import numpy as np

from repro.continual.baselines import _LatentClusterBaseline
from repro.ml.kmeans import KMeans
from repro.nn.data import batch_iterator
from repro.nn.optim import Adam

__all__ = ["ExperienceReplay", "CumulativeRetraining"]


class ExperienceReplay(_LatentClusterBaseline):
    """Reservoir-replay autoencoder + K-Means continual baseline.

    Parameters
    ----------
    memory_size:
        Maximum number of past samples kept in the replay reservoir.
    replay_fraction:
        Fraction of each training set (in samples) drawn from the reservoir
        and appended to the current experience's data.
    """

    def __init__(
        self,
        input_dim: int,
        *,
        memory_size: int = 1000,
        replay_fraction: float = 0.5,
        **kwargs: object,
    ) -> None:
        super().__init__(input_dim, **kwargs)
        if memory_size < 1:
            raise ValueError("memory_size must be positive")
        if not 0.0 <= replay_fraction <= 1.0:
            raise ValueError("replay_fraction must be in [0, 1]")
        self.memory_size = memory_size
        self.replay_fraction = replay_fraction
        self._memory: np.ndarray | None = None
        self._n_seen = 0

    # -- reservoir maintenance -------------------------------------------------
    def _update_memory(self, X_scaled: np.ndarray) -> None:
        """Reservoir sampling so every seen sample has equal retention probability."""
        for row in X_scaled:
            self._n_seen += 1
            if self._memory is None:
                self._memory = row[None, :].copy()
            elif self._memory.shape[0] < self.memory_size:
                self._memory = np.vstack([self._memory, row])
            else:
                slot = int(self._rng.integers(self._n_seen))
                if slot < self.memory_size:
                    self._memory[slot] = row

    def _train_autoencoder(self, X_scaled: np.ndarray) -> None:
        optimizer = Adam(self.autoencoder.parameters(), lr=self.learning_rate)
        self.autoencoder.train()
        for _ in range(self.epochs):
            for (batch,) in batch_iterator(
                X_scaled, batch_size=self.batch_size, random_state=self._rng
            ):
                reconstruction = self.autoencoder(batch)
                _, grad = self._mse(reconstruction, batch)
                self.autoencoder.zero_grad()
                self.autoencoder.backward(grad)
                optimizer.step()
        self.autoencoder.eval()

    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        X_scaled = self._prepare(X_train, fit_scaler=True)

        train_data = X_scaled
        if self._memory is not None and self.replay_fraction > 0.0:
            n_replay = min(
                self._memory.shape[0], int(self.replay_fraction * X_scaled.shape[0])
            )
            if n_replay > 0:
                replay_idx = self._rng.choice(self._memory.shape[0], n_replay, replace=False)
                train_data = np.vstack([X_scaled, self._memory[replay_idx]])

        self._train_autoencoder(train_data)
        latent = self._encode(train_data)
        n_clusters = min(self.n_clusters, latent.shape[0])
        kmeans = KMeans(n_clusters=n_clusters, random_state=self._rng).fit(latent)
        self.cluster_centers_ = kmeans.cluster_centers_
        self._label_clusters(calibration_X, calibration_y)

        self._update_memory(X_scaled)
        self.experience_count += 1


class CumulativeRetraining(_LatentClusterBaseline):
    """Retrain from scratch on all data seen so far (forgetting upper bound).

    Stores every training sample it has seen; at each experience the
    autoencoder is re-initialised and trained on the union, and the cluster
    classifier is refitted.  The calibration sets of all past experiences are
    also accumulated.
    """

    def __init__(self, input_dim: int, **kwargs: object) -> None:
        super().__init__(input_dim, **kwargs)
        self._all_data: list[np.ndarray] = []
        self._all_calibration_X: list[np.ndarray] = []
        self._all_calibration_y: list[np.ndarray] = []

    def _train_autoencoder(self, X_scaled: np.ndarray) -> None:
        # Fresh model every time: cumulative retraining has no forgetting by design.
        self.autoencoder = type(self.autoencoder)(
            self.input_dim,
            latent_dim=self.latent_dim,
            hidden_dims=self.hidden_dims,
            random_state=self.random_state,
        )
        optimizer = Adam(self.autoencoder.parameters(), lr=self.learning_rate)
        self.autoencoder.train()
        for _ in range(self.epochs):
            for (batch,) in batch_iterator(
                X_scaled, batch_size=self.batch_size, random_state=self._rng
            ):
                reconstruction = self.autoencoder(batch)
                _, grad = self._mse(reconstruction, batch)
                self.autoencoder.zero_grad()
                self.autoencoder.backward(grad)
                optimizer.step()
        self.autoencoder.eval()

    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        X_scaled = self._prepare(X_train, fit_scaler=True)
        self._all_data.append(X_scaled)
        if calibration_X is not None and calibration_y is not None:
            self._all_calibration_X.append(np.asarray(calibration_X, dtype=np.float64))
            self._all_calibration_y.append(np.asarray(calibration_y))

        union = np.vstack(self._all_data)
        self._train_autoencoder(union)
        latent = self._encode(union)
        n_clusters = min(self.n_clusters, latent.shape[0])
        kmeans = KMeans(n_clusters=n_clusters, random_state=self._rng).fit(latent)
        self.cluster_centers_ = kmeans.cluster_centers_

        if self._all_calibration_X:
            self._label_clusters(
                np.vstack(self._all_calibration_X), np.concatenate(self._all_calibration_y)
            )
        else:
            self._label_clusters(None, None)
        self.experience_count += 1
