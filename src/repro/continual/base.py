"""Common interface for continual intrusion-detection methods.

A continual method sees the stream one experience at a time: :meth:`setup` is
called once with the clean normal data ``N_c`` (which the paper's framework
makes available to every method), then :meth:`fit_experience` is called per
experience with the *unlabeled* training split, and :meth:`predict` /
:meth:`score_samples` are used to evaluate on any test split.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["ContinualMethod"]


class ContinualMethod:
    """Base class for CND-IDS and the UCL baselines."""

    #: Whether :meth:`score_samples` is meaningful (ADCN / LwF classify via
    #: nearest labeled cluster and expose no anomaly score — paper Sec. IV-B).
    supports_scores: bool = True

    #: Whether the method consumes the small labeled calibration subset.
    requires_labels: bool = False

    def setup(self, clean_normal: np.ndarray) -> None:
        """Receive the clean normal reference set before the stream starts."""

    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        """Update the model with the unlabeled training data of one experience."""
        raise NotImplementedError

    def predict(self, X: np.ndarray, y_true: np.ndarray | None = None) -> np.ndarray:
        """Binary predictions (1 = attack) for a test batch.

        ``y_true`` is passed by the evaluation protocol so that methods using
        Best-F thresholding (CND-IDS and the static novelty detectors, as in
        the paper) can pick their threshold on the evaluated batch; methods
        that do not need it simply ignore the argument.
        """
        raise NotImplementedError

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores (higher = more anomalous); optional."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose anomaly scores"
        )

    def update(self, X: np.ndarray) -> None:
        """Online update entry point used by the serving lifecycle layer.

        :class:`repro.serve.lifecycle.ContinualRefit` calls this with the
        clean recent window of a drifting stream; the default treats the
        window as one unlabeled experience.  Methods with a cheaper
        incremental path than :meth:`fit_experience` can override it.
        """
        self.fit_experience(np.asarray(X, dtype=np.float64))

    @property
    def name(self) -> str:
        """Human-readable method name used in experiment reports."""
        return type(self).__name__

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path, *, metadata: dict | None = None) -> Path:
        """Checkpoint the full method state (model, scaler, pools) to ``path``.

        The checkpoint is a pickle-free snapshot (see
        :mod:`repro.serve.snapshot`); a loaded method scores identically and
        can continue training with :meth:`fit_experience`.
        """
        from repro.serve.snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path: str | Path) -> "ContinualMethod":
        """Load a checkpoint previously written by :meth:`save`."""
        from repro.serve.snapshot import load_snapshot

        return load_snapshot(path, expected_class=cls)
