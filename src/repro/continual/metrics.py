"""Continual-learning metrics derived from the result matrix ``R_ij``.

``R_ij`` is the score (F1 unless stated otherwise) on the test set of
experience ``j`` after training on experience ``i``.  Following the paper
(and Diaz-Rodriguez et al., 2018):

* ``AVG      = sum_{i=j} R_ij / m``                — seen attacks,
* ``FwdTrans = sum_{j>i} R_ij / (m(m-1)/2)``       — zero-day attacks,
* ``BwdTrans = sum_i (R_mi - R_ii) / (m(m-1)/2)``  — forgetting (last row vs. diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ResultMatrix", "continual_metrics"]


@dataclass
class ResultMatrix:
    """Square matrix of per-(training, testing) experience scores."""

    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2 or self.values.shape[0] != self.values.shape[1]:
            raise ValueError(f"result matrix must be square, got shape {self.values.shape}")

    @classmethod
    def empty(cls, n_experiences: int) -> "ResultMatrix":
        """All-NaN matrix to be filled in as the stream is processed."""
        if n_experiences < 1:
            raise ValueError("n_experiences must be at least 1")
        return cls(np.full((n_experiences, n_experiences), np.nan))

    # -- element access -----------------------------------------------------
    @property
    def n_experiences(self) -> int:
        return int(self.values.shape[0])

    def __getitem__(self, key: tuple[int, int]) -> float:
        return float(self.values[key])

    def __setitem__(self, key: tuple[int, int], value: float) -> None:
        self.values[key] = float(value)

    # -- metrics ---------------------------------------------------------------
    def average(self) -> float:
        """AVG: mean score on the current experience at every training step."""
        return float(np.nanmean(np.diag(self.values)))

    def forward_transfer(self) -> float:
        """FwdTrans: mean score on future (unseen) experiences."""
        m = self.n_experiences
        if m < 2:
            return 0.0
        upper = self.values[np.triu_indices(m, k=1)]
        denominator = m * (m - 1) / 2
        return float(np.nansum(upper) / denominator)

    def backward_transfer(self) -> float:
        """BwdTrans: change on past experiences after training on the final one."""
        m = self.n_experiences
        if m < 2:
            return 0.0
        final_row = self.values[m - 1, : m - 1]
        diagonal = np.diag(self.values)[: m - 1]
        denominator = m * (m - 1) / 2
        return float(np.nansum(final_row - diagonal) / denominator)

    def summary(self) -> dict[str, float]:
        """All three continual-learning metrics as a dictionary."""
        return {
            "avg": self.average(),
            "fwd_transfer": self.forward_transfer(),
            "bwd_transfer": self.backward_transfer(),
        }


def continual_metrics(matrix: np.ndarray | ResultMatrix) -> dict[str, float]:
    """Compute AVG / FwdTrans / BwdTrans for a result matrix given as an array."""
    if not isinstance(matrix, ResultMatrix):
        matrix = ResultMatrix(np.asarray(matrix))
    return matrix.summary()
