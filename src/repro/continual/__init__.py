"""Continual-learning substrate: scenarios, metrics, and UCL baselines.

Implements the paper's continual-learning data preparation (Sec. III-A), the
result matrix ``R_ij`` and the derived AVG / FwdTrans / BwdTrans metrics
(Sec. IV-A), and the two unsupervised continual-learning baselines the paper
compares against (ADCN and LwF).
"""

from repro.continual.base import ContinualMethod
from repro.continual.baselines import ADCN, LwF
from repro.continual.extensions import CumulativeRetraining, ExperienceReplay
from repro.continual.metrics import ResultMatrix, continual_metrics
from repro.continual.scenario import ContinualScenario, Experience

__all__ = [
    "Experience",
    "ContinualScenario",
    "ResultMatrix",
    "continual_metrics",
    "ContinualMethod",
    "ADCN",
    "LwF",
    "ExperienceReplay",
    "CumulativeRetraining",
]
