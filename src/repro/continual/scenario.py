"""Continual-learning data preparation (paper Sec. III-A).

Given a dataset with normal data ``N``, attack data ``A`` and attack classes
``C``:

1. 10% of the normal data is removed and kept as the *clean normal* set
   ``N_c`` used to fit the PCA novelty detector.
2. The remaining data is split across ``m`` experiences.  Each experience
   receives an equal share (``0.9 * |N| / m``) of the remaining normal data
   and ``|C| / m`` attack classes unique to that experience.
3. Every experience is split into an unlabeled training part (``X_train``)
   and a labeled test part (``X_test``, ``y_test``).

Each experience also carries a small *labeled calibration set* drawn from its
training split.  CND-IDS never uses it; the UCL baselines (ADCN, LwF) require
a few labels to map clusters to classes, exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.random import check_random_state

__all__ = ["Experience", "ContinualScenario"]


@dataclass
class Experience:
    """One experience of the continual stream."""

    index: int
    X_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    attack_families: tuple[str, ...]
    train_attack_fraction: float
    calibration_X: np.ndarray | None = None
    calibration_y: np.ndarray | None = None

    @property
    def n_train(self) -> int:
        return int(self.X_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.X_test.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Experience(index={self.index}, n_train={self.n_train}, "
            f"n_test={self.n_test}, families={list(self.attack_families)})"
        )


@dataclass
class ContinualScenario:
    """A full continual-learning scenario: clean normal data plus a list of experiences."""

    dataset_name: str
    clean_normal: np.ndarray
    experiences: list[Experience]
    n_features: int
    metadata: dict = field(default_factory=dict)

    @property
    def n_experiences(self) -> int:
        return len(self.experiences)

    def __iter__(self):
        return iter(self.experiences)

    def __len__(self) -> int:
        return len(self.experiences)

    def __getitem__(self, index: int) -> Experience:
        return self.experiences[index]

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        n_experiences: int = 5,
        *,
        clean_normal_fraction: float = 0.1,
        test_fraction: float = 0.3,
        calibration_size: int = 64,
        seed: int | np.random.Generator | None = 0,
    ) -> "ContinualScenario":
        """Build a scenario following the paper's CL data preparation.

        Parameters
        ----------
        dataset:
            Source dataset (features, binary labels, per-sample attack family).
        n_experiences:
            Number of experiences ``m``.
        clean_normal_fraction:
            Fraction of normal data reserved as the clean normal set ``N_c``.
        test_fraction:
            Fraction of each experience held out as its labeled test split.
        calibration_size:
            Size of the small labeled calibration subset attached to each
            experience (per class, where available) for label-needy baselines.
        seed:
            Seed controlling every random split.
        """
        if n_experiences < 1:
            raise ValueError("n_experiences must be at least 1")
        if not 0.0 < clean_normal_fraction < 1.0:
            raise ValueError("clean_normal_fraction must be strictly between 0 and 1")
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be strictly between 0 and 1")
        rng = check_random_state(seed)

        families = dataset.attack_type_names
        if n_experiences > len(families):
            raise ValueError(
                f"n_experiences={n_experiences} exceeds the number of attack families "
                f"({len(families)}) in dataset {dataset.name!r}"
            )

        normal_idx = np.flatnonzero(dataset.y == 0)
        rng.shuffle(normal_idx)
        n_clean = max(1, int(round(clean_normal_fraction * normal_idx.size)))
        clean_idx = normal_idx[:n_clean]
        remaining_normal = normal_idx[n_clean:]

        # Distribute attack families across experiences (|C| / m families each).
        shuffled_families = list(families)
        rng.shuffle(shuffled_families)
        family_groups: list[list[str]] = [[] for _ in range(n_experiences)]
        for i, family in enumerate(shuffled_families):
            family_groups[i % n_experiences].append(family)

        # Equal share of the remaining normal data per experience.
        normal_shares = np.array_split(remaining_normal, n_experiences)

        experiences: list[Experience] = []
        for exp_index in range(n_experiences):
            exp_families = tuple(sorted(family_groups[exp_index]))
            attack_mask = np.isin(dataset.attack_types, exp_families) & (dataset.y == 1)
            attack_idx = np.flatnonzero(attack_mask)
            rng.shuffle(attack_idx)
            exp_idx = np.concatenate([normal_shares[exp_index], attack_idx])
            rng.shuffle(exp_idx)

            X_exp = dataset.X[exp_idx]
            y_exp = dataset.y[exp_idx]

            n_test = max(1, int(round(test_fraction * exp_idx.size)))
            test_slice = slice(0, n_test)
            train_slice = slice(n_test, None)
            X_test, y_test = X_exp[test_slice], y_exp[test_slice]
            X_train, y_train = X_exp[train_slice], y_exp[train_slice]

            calibration_X, calibration_y = _draw_calibration(
                X_train, y_train, calibration_size, rng
            )
            train_attack_fraction = float(y_train.mean()) if y_train.size else 0.0
            experiences.append(
                Experience(
                    index=exp_index,
                    X_train=X_train,
                    X_test=X_test,
                    y_test=y_test,
                    attack_families=exp_families,
                    train_attack_fraction=train_attack_fraction,
                    calibration_X=calibration_X,
                    calibration_y=calibration_y,
                )
            )

        return cls(
            dataset_name=dataset.name,
            clean_normal=dataset.X[clean_idx],
            experiences=experiences,
            n_features=dataset.n_features,
            metadata={
                "n_experiences": n_experiences,
                "clean_normal_fraction": clean_normal_fraction,
                "test_fraction": test_fraction,
                "family_assignment": {
                    i: list(group) for i, group in enumerate(family_groups)
                },
            },
        )


def _draw_calibration(
    X_train: np.ndarray,
    y_train: np.ndarray,
    calibration_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Small labeled subset (per class) of the training split for label-needy baselines."""
    if calibration_size <= 0 or X_train.shape[0] == 0:
        return None, None
    parts_X: list[np.ndarray] = []
    parts_y: list[np.ndarray] = []
    for label in (0, 1):
        idx = np.flatnonzero(y_train == label)
        if idx.size == 0:
            continue
        take = min(calibration_size, idx.size)
        chosen = rng.choice(idx, take, replace=False)
        parts_X.append(X_train[chosen])
        parts_y.append(np.full(take, label, dtype=np.int64))
    if not parts_X:
        return None, None
    return np.vstack(parts_X), np.concatenate(parts_y)
