"""Experiment configuration shared by all figure/table runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import DATASET_NAMES, PAPER_EXPERIENCE_COUNTS

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling dataset size and training effort of the experiment runners.

    The paper's experiments run on the full datasets with an RTX 3090; the
    defaults here are scaled down so that every figure regenerates in minutes
    on a CPU while preserving the comparisons' structure.  ``paper()`` returns
    a configuration closer to the original sizes.
    """

    datasets: tuple[str, ...] = DATASET_NAMES
    scale: float = 0.004
    seed: int = 0
    epochs: int = 10
    batch_size: int = 128
    latent_dim: int | None = None
    hidden_dims: tuple[int, ...] = (256,)
    learning_rate: float = 1e-3
    test_fraction: float = 0.3
    clean_normal_fraction: float = 0.1
    calibration_size: int = 64
    pca_variance: float = 0.95
    lambda_r: float = 0.1
    lambda_cl: float = 0.1
    margin: float = 2.0
    n_experiences_override: int | None = None
    max_clean_normal: int = 4000
    extra: dict = field(default_factory=dict, compare=False)

    # -- presets -----------------------------------------------------------------
    @classmethod
    def quick(cls, **overrides: object) -> "ExperimentConfig":
        """Small configuration used by the test-suite and benchmark smoke runs."""
        defaults = dict(
            datasets=("wustl_iiot", "unsw_nb15"),
            scale=0.002,
            epochs=3,
            n_experiences_override=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper(cls, **overrides: object) -> "ExperimentConfig":
        """Configuration mirroring the paper's setup as closely as practical on CPU."""
        defaults = dict(
            datasets=DATASET_NAMES,
            scale=0.01,
            epochs=10,
        )
        defaults.update(overrides)
        return cls(**defaults)

    # -- helpers --------------------------------------------------------------------
    def n_experiences(self, dataset_name: str) -> int:
        """Number of experiences to use for a dataset (paper counts unless overridden)."""
        if self.n_experiences_override is not None:
            return self.n_experiences_override
        return PAPER_EXPERIENCE_COUNTS.get(dataset_name, 5)
