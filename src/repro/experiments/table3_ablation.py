"""Table III — ablation of the CND loss components.

Four variants of CND-IDS (full, w/o L_CS, w/o L_R, w/o L_R and L_CL) run the
full continual protocol; AVG, BwdTrans and FwdTrans are averaged across the
configured datasets, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import ABLATION_VARIANTS, get_continual_result

__all__ = ["run_table3", "format_table3", "PAPER_TABLE3"]

#: Paper-reported ablation numbers (percent) for the paper-vs-measured record.
PAPER_TABLE3 = {
    "CND-IDS": {"avg": 76.92, "bwd": 0.87, "fwd": 73.70},
    "CND-IDS (w/o LCS)": {"avg": 66.23, "bwd": 0.09, "fwd": 70.26},
    "CND-IDS (w/o LR)": {"avg": 72.86, "bwd": -5.44, "fwd": 67.82},
    "CND-IDS (w/o LR and LCL)": {"avg": 79.92, "bwd": -11.26, "fwd": 71.01},
}


def run_table3(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Run every loss-ablation variant and average the CL metrics over datasets."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for variant_name, loss_config in ABLATION_VARIANTS.items():
        per_dataset_avg: list[float] = []
        per_dataset_bwd: list[float] = []
        per_dataset_fwd: list[float] = []
        for dataset_name in config.datasets:
            result = get_continual_result(
                config,
                dataset_name,
                "CND-IDS",
                loss_config=loss_config,
                variant_label=variant_name,
            )
            per_dataset_avg.append(result.avg_f1)
            per_dataset_bwd.append(result.bwd_transfer)
            per_dataset_fwd.append(result.fwd_transfer)
        paper = PAPER_TABLE3.get(variant_name, {})
        rows.append(
            {
                "strategy": variant_name,
                "avg_f1_pct": 100.0 * float(np.mean(per_dataset_avg)),
                "bwd_transfer_pct": 100.0 * float(np.mean(per_dataset_bwd)),
                "fwd_transfer_pct": 100.0 * float(np.mean(per_dataset_fwd)),
                "paper_avg_pct": paper.get("avg", float("nan")),
                "paper_bwd_pct": paper.get("bwd", float("nan")),
                "paper_fwd_pct": paper.get("fwd", float("nan")),
            }
        )
    return rows


def format_table3(rows: list[dict[str, object]]) -> str:
    """Render the Table III reproduction as text."""
    return format_table(
        rows,
        columns=[
            "strategy",
            "avg_f1_pct",
            "bwd_transfer_pct",
            "fwd_transfer_pct",
            "paper_avg_pct",
            "paper_bwd_pct",
            "paper_fwd_pct",
        ],
        title="Table III: ablation of the CND-IDS loss components (percent)",
        precision=2,
    )
