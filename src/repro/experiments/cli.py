"""Command-line interface: the paper's tables/figures plus the serving layer.

Usage::

    python -m repro.experiments.cli table1
    python -m repro.experiments.cli fig3 --profile quick
    python -m repro.experiments.cli all --profile paper --output results/
    python -m repro.experiments.cli serve --dataset wustl_iiot --detector iforest
    python -m repro.experiments.cli registry list --registry ./models
    python -m repro.experiments.cli trace ./run/trace.jsonl --budget score=50
    python -m repro.experiments.cli lint src/repro --format report

Each experiment prints its formatted table; ``--output`` additionally writes
one text file per experiment.  The ``serve`` and ``registry`` subcommands are
handled by :mod:`repro.serve.cli` (fit or load a detector, stream a drifted
:class:`~repro.datasets.streaming.FlowStream` through a
:class:`~repro.serve.service.DetectionService`, manage model snapshots); the
``repro`` console script maps to this entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1_known_unknown import format_fig1, run_fig1
from repro.experiments.fig3_cl_comparison import format_fig3, run_fig3
from repro.experiments.fig4_nd_comparison import format_fig4, run_fig4
from repro.experiments.fig5_prauc import format_fig5, run_fig5
from repro.experiments.table1_datasets import format_table1, run_table1
from repro.experiments.table2_improvement import format_table2, run_table2
from repro.experiments.table3_ablation import format_table3, run_table3
from repro.experiments.table4_overhead import format_table4, run_table4

__all__ = ["EXPERIMENTS", "build_config", "main"]

#: Experiment id -> (runner, formatter).
EXPERIMENTS: dict[str, tuple[Callable, Callable]] = {
    "table1": (run_table1, format_table1),
    "fig1": (run_fig1, format_fig1),
    "fig3": (run_fig3, format_fig3),
    "table2": (run_table2, format_table2),
    "fig4": (run_fig4, format_fig4),
    "fig5": (run_fig5, format_fig5),
    "table3": (run_table3, format_table3),
    "table4": (run_table4, format_table4),
}

_PROFILES = {
    "quick": ExperimentConfig.quick,
    "default": ExperimentConfig,
    "paper": ExperimentConfig.paper,
}


def build_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI arguments into an :class:`ExperimentConfig`."""
    overrides: dict[str, object] = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.datasets:
        overrides["datasets"] = tuple(args.datasets)
    if args.experiences is not None:
        overrides["n_experiences_override"] = args.experiences
    return _PROFILES[args.profile](**overrides)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description="Regenerate the CND-IDS paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate ('all' runs every one)",
    )
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="default")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale override")
    parser.add_argument("--epochs", type=int, default=None, help="training epochs override")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--datasets", nargs="*", default=None, help="dataset subset")
    parser.add_argument("--experiences", type=int, default=None, help="override the experience count")
    parser.add_argument("--output", type=Path, default=None, help="directory for result text files")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("serve", "registry", "trace"):
        # The serving subsystem owns its own argument surface; importing it
        # lazily keeps the experiment-only path light.
        from repro.serve.cli import main as serve_main

        return serve_main(argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = _parser().parse_args(argv)
    config = build_config(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    for name in names:
        runner, formatter = EXPERIMENTS[name]
        rows = runner(config)
        text = formatter(rows)
        print(text)
        print()
        if args.output is not None:
            args.output.mkdir(parents=True, exist_ok=True)
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
