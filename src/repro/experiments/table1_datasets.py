"""Table I — Selected Intrusion Datasets.

Regenerates the dataset statistics table: total size, normal samples, attack
samples, and number of attack types — both for the synthetic datasets actually
generated at the configured scale and for the reference (real) datasets whose
sizes the paper reports.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table

__all__ = ["run_table1", "format_table1"]

#: Paper-reported rows of Table I, used for the paper-vs-measured comparison.
PAPER_TABLE1 = {
    "xiiotid": {"size": 820_502, "normal": 421_417, "attack": 399_417, "attack_types": 18},
    "wustl_iiot": {"size": 1_194_464, "normal": 1_107_448, "attack": 87_016, "attack_types": 4},
    "cicids2017": {"size": 2_830_743, "normal": 2_273_097, "attack": 557_646, "attack_types": 15},
    "unsw_nb15": {"size": 257_673, "normal": 164_673, "attack": 93_000, "attack_types": 10},
}


def run_table1(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Generate every dataset and collect its Table-I style statistics."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=config.scale, seed=config.seed)
        paper = PAPER_TABLE1[name]
        rows.append(
            {
                "dataset": name,
                "generated_size": dataset.n_samples,
                "generated_normal": dataset.n_normal,
                "generated_attack": dataset.n_attack,
                "attack_types": len(dataset.attack_type_names),
                "paper_size": paper["size"],
                "paper_normal": paper["normal"],
                "paper_attack": paper["attack"],
                "paper_attack_types": paper["attack_types"],
            }
        )
    return rows


def format_table1(rows: list[dict[str, object]]) -> str:
    """Render the Table-I reproduction as text."""
    return format_table(rows, title="Table I: Selected Intrusion Datasets (generated vs. paper)")
