"""Evaluation protocol shared by every experiment.

Continual methods are trained experience-by-experience; after each training
experience the method is evaluated on the test split of *every* experience,
filling the result matrix ``R_ij`` (paper Algorithm 1, lines 6-11).  Static
novelty detectors are fitted once on the clean normal data and evaluated on
every experience's test split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.continual.base import ContinualMethod
from repro.continual.metrics import ResultMatrix
from repro.continual.scenario import ContinualScenario
from repro.metrics.classification import f1_score
from repro.metrics.ranking import pr_auc_score
from repro.metrics.thresholds import best_f_threshold
from repro.ml.scalers import StandardScaler
from repro.novelty.base import NoveltyDetector
from repro.utils.timing import Timer

__all__ = [
    "MethodRunResult",
    "StaticDetectorResult",
    "run_continual_method",
    "run_static_detector",
    "measure_inference_time",
]


@dataclass
class MethodRunResult:
    """Outcome of running a continual method over a scenario."""

    method_name: str
    dataset_name: str
    f1_matrix: ResultMatrix
    prauc_matrix: ResultMatrix | None
    train_time_s: float
    inference_time_ms_per_sample: float
    details: dict = field(default_factory=dict)

    # -- continual-learning metrics (paper Sec. IV-A) ---------------------------
    @property
    def avg_f1(self) -> float:
        return self.f1_matrix.average()

    @property
    def fwd_transfer(self) -> float:
        return self.f1_matrix.forward_transfer()

    @property
    def bwd_transfer(self) -> float:
        return self.f1_matrix.backward_transfer()

    @property
    def avg_prauc(self) -> float:
        if self.prauc_matrix is None:
            return float("nan")
        return self.prauc_matrix.average()

    def summary(self) -> dict[str, float | str]:
        return {
            "method": self.method_name,
            "dataset": self.dataset_name,
            "avg_f1": self.avg_f1,
            "fwd_transfer": self.fwd_transfer,
            "bwd_transfer": self.bwd_transfer,
            "avg_prauc": self.avg_prauc,
            "train_time_s": self.train_time_s,
            "inference_time_ms": self.inference_time_ms_per_sample,
        }


@dataclass
class StaticDetectorResult:
    """Outcome of evaluating a static (non-continual) novelty detector."""

    method_name: str
    dataset_name: str
    per_experience_f1: list[float]
    per_experience_prauc: list[float]
    train_time_s: float
    inference_time_ms_per_sample: float

    @property
    def mean_f1(self) -> float:
        return float(np.mean(self.per_experience_f1)) if self.per_experience_f1 else float("nan")

    @property
    def mean_prauc(self) -> float:
        return (
            float(np.mean(self.per_experience_prauc))
            if self.per_experience_prauc
            else float("nan")
        )

    def summary(self) -> dict[str, float | str]:
        return {
            "method": self.method_name,
            "dataset": self.dataset_name,
            "mean_f1": self.mean_f1,
            "mean_prauc": self.mean_prauc,
            "train_time_s": self.train_time_s,
            "inference_time_ms": self.inference_time_ms_per_sample,
        }


def run_continual_method(
    method: ContinualMethod,
    scenario: ContinualScenario,
    *,
    compute_prauc: bool = True,
) -> MethodRunResult:
    """Run a continual method through the full train/evaluate protocol."""
    n = scenario.n_experiences
    f1_matrix = ResultMatrix.empty(n)
    prauc_matrix = ResultMatrix.empty(n) if (compute_prauc and method.supports_scores) else None

    method.setup(scenario.clean_normal)
    train_time = 0.0
    inference_time = 0.0
    inference_samples = 0

    for i, experience in enumerate(scenario):
        start = time.perf_counter()
        method.fit_experience(
            experience.X_train,
            calibration_X=experience.calibration_X if method.requires_labels else None,
            calibration_y=experience.calibration_y if method.requires_labels else None,
        )
        train_time += time.perf_counter() - start

        for j, test_experience in enumerate(scenario):
            start = time.perf_counter()
            y_pred = method.predict(test_experience.X_test, y_true=test_experience.y_test)
            inference_time += time.perf_counter() - start
            inference_samples += test_experience.n_test
            f1_matrix[i, j] = f1_score(test_experience.y_test, y_pred)
            if prauc_matrix is not None:
                scores = method.score_samples(test_experience.X_test)
                prauc_matrix[i, j] = pr_auc_score(test_experience.y_test, scores)

    inference_ms = 1000.0 * inference_time / max(inference_samples, 1)
    return MethodRunResult(
        method_name=method.name,
        dataset_name=scenario.dataset_name,
        f1_matrix=f1_matrix,
        prauc_matrix=prauc_matrix,
        train_time_s=train_time,
        inference_time_ms_per_sample=inference_ms,
    )


def run_static_detector(
    detector: NoveltyDetector,
    scenario: ContinualScenario,
    *,
    detector_name: str | None = None,
    compute_prauc: bool = True,
) -> StaticDetectorResult:
    """Fit a static novelty detector on the clean normal data and evaluate every experience.

    The paper notes these detectors "cannot be retrained on unlabeled
    contaminated data", so they are fitted once before the stream starts.
    Thresholding uses the same Best-F rule as CND-IDS for a fair comparison.
    """
    scaler = StandardScaler().fit(scenario.clean_normal)
    clean_scaled = scaler.transform(scenario.clean_normal)

    start = time.perf_counter()
    detector.fit(clean_scaled)
    train_time = time.perf_counter() - start

    per_f1: list[float] = []
    per_prauc: list[float] = []
    inference_time = 0.0
    inference_samples = 0
    for experience in scenario:
        X_test = scaler.transform(experience.X_test)
        start = time.perf_counter()
        scores = detector.score_samples(X_test)
        inference_time += time.perf_counter() - start
        inference_samples += experience.n_test
        threshold, _ = best_f_threshold(scores, experience.y_test)
        y_pred = (scores > threshold).astype(np.int64)
        per_f1.append(f1_score(experience.y_test, y_pred))
        if compute_prauc:
            per_prauc.append(pr_auc_score(experience.y_test, scores))

    inference_ms = 1000.0 * inference_time / max(inference_samples, 1)
    return StaticDetectorResult(
        method_name=detector_name or type(detector).__name__,
        dataset_name=scenario.dataset_name,
        per_experience_f1=per_f1,
        per_experience_prauc=per_prauc,
        train_time_s=train_time,
        inference_time_ms_per_sample=inference_ms,
    )


def measure_inference_time(
    score_fn,
    X: np.ndarray,
    *,
    n_repeats: int = 3,
) -> float:
    """Median per-sample inference time (milliseconds) of ``score_fn`` over ``X``.

    The rate math is shared with the throughput benchmark via
    :meth:`repro.utils.timing.Timer.throughput`.
    """
    if X.shape[0] == 0:
        return float("nan")
    rates = []
    for _ in range(max(n_repeats, 1)):
        timer = Timer()
        with timer:
            score_fn(X)
        rates.append(timer.throughput(X.shape[0]))
    median_rate = float(np.median(rates))
    if median_rate <= 0.0 or not np.isfinite(median_rate):
        return 0.0
    return 1000.0 / median_rate
