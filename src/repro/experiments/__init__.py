"""Experiment harness regenerating every table and figure of the paper.

Each ``figN_*`` / ``tableN_*`` module exposes a ``run_*`` function returning a
list of row dictionaries plus a ``format_*`` helper that renders the same
rows/series the paper reports.  The benchmark modules under ``benchmarks/``
call these runners with a quick configuration.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1_known_unknown import format_fig1, run_fig1
from repro.experiments.fig3_cl_comparison import format_fig3, run_fig3
from repro.experiments.fig4_nd_comparison import format_fig4, run_fig4
from repro.experiments.fig5_prauc import format_fig5, run_fig5
from repro.experiments.protocol import (
    MethodRunResult,
    StaticDetectorResult,
    measure_inference_time,
    run_continual_method,
    run_static_detector,
)
from repro.experiments.reporting import format_table
from repro.experiments.table1_datasets import format_table1, run_table1
from repro.experiments.table2_improvement import format_table2, run_table2
from repro.experiments.table3_ablation import format_table3, run_table3
from repro.experiments.table4_overhead import format_table4, run_table4

__all__ = [
    "ExperimentConfig",
    "MethodRunResult",
    "StaticDetectorResult",
    "run_continual_method",
    "run_static_detector",
    "measure_inference_time",
    "format_table",
    "run_table1",
    "format_table1",
    "run_fig1",
    "format_fig1",
    "run_fig3",
    "format_fig3",
    "run_table2",
    "format_table2",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_table3",
    "format_table3",
    "run_table4",
    "format_table4",
]
