"""Figure 5 — threshold-free evaluation (PR-AUC) of DIF, PCA and CND-IDS.

ADCN and LwF output hard cluster labels rather than anomaly scores, so the
threshold-free comparison covers the two best static detectors and CND-IDS.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import get_continual_result, get_static_result

__all__ = ["run_fig5", "format_fig5", "FIG5_DETECTORS"]

#: Score-based methods compared in Fig. 5.
FIG5_DETECTORS: tuple[str, ...] = ("DIF", "PCA")


def run_fig5(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """One row per (dataset, method) with the mean PR-AUC across experiences."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset_name in config.datasets:
        for detector_name in FIG5_DETECTORS:
            static = get_static_result(config, dataset_name, detector_name)
            rows.append(
                {
                    "dataset": dataset_name,
                    "method": detector_name,
                    "mean_prauc": static.mean_prauc,
                }
            )
        cnd = get_continual_result(config, dataset_name, "CND-IDS")
        rows.append(
            {
                "dataset": dataset_name,
                "method": "CND-IDS",
                "mean_prauc": cnd.avg_prauc,
            }
        )
    return rows


def format_fig5(rows: list[dict[str, object]]) -> str:
    """Render the Fig. 5 reproduction as text."""
    return format_table(
        rows,
        columns=["dataset", "method", "mean_prauc"],
        title="Fig. 5: threshold-free evaluation (PR-AUC)",
    )
