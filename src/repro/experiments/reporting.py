"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "format_value"]


def format_value(value: object, *, precision: int = 4) -> str:
    """Render a cell value: floats with fixed precision, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Iterable of dictionaries; all rows should share the same keys.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    precision:
        Decimal places for float cells.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered = [
        [format_value(row.get(col, ""), precision=precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(r[idx]) for r in rendered)) for idx, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(r, widths)))
    return "\n".join(lines)
