"""Table IV — average inference time per test sample.

Each method is trained on a scenario once and then timed on a fixed batch of
test samples.  Absolute values depend on this machine (the paper used a GPU
host); the comparison of interest is the relative ordering: CND-IDS close to
plain PCA and much faster than ADCN, LwF and DIF.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.protocol import measure_inference_time
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    build_continual_method,
    build_static_detector,
    get_scenario,
    inference_batch,
)
from repro.ml.scalers import StandardScaler

__all__ = ["run_table4", "format_table4", "PAPER_TABLE4"]

#: Paper-reported inference times in milliseconds per sample.
PAPER_TABLE4 = {
    "CND-IDS": 0.0019,
    "ADCN": 0.4061,
    "LwF": 0.0677,
    "DIF": 1.0535,
    "PCA": 0.0018,
}

#: Methods timed in Table IV.
TABLE4_METHODS: tuple[str, ...] = ("CND-IDS", "ADCN", "LwF", "DIF", "PCA")


def run_table4(
    config: ExperimentConfig | None = None,
    *,
    dataset_name: str | None = None,
    batch_size: int = 2000,
    n_repeats: int = 3,
) -> list[dict[str, object]]:
    """Measure the per-sample inference time of every method on one dataset."""
    config = config or ExperimentConfig()
    dataset_name = dataset_name or config.datasets[0]
    scenario = get_scenario(config, dataset_name)
    X_batch = inference_batch(config, dataset_name, size=batch_size)

    rows: list[dict[str, object]] = []
    for method_name in TABLE4_METHODS:
        if method_name in ("CND-IDS", "ADCN", "LwF"):
            method = build_continual_method(method_name, scenario.n_features, config)
            method.setup(scenario.clean_normal)
            first = scenario[0]
            method.fit_experience(
                first.X_train,
                calibration_X=first.calibration_X if method.requires_labels else None,
                calibration_y=first.calibration_y if method.requires_labels else None,
            )
            if method.supports_scores:
                time_ms = measure_inference_time(
                    method.score_samples, X_batch, n_repeats=n_repeats
                )
            else:
                time_ms = measure_inference_time(
                    method.predict, X_batch, n_repeats=n_repeats
                )
        else:
            detector = build_static_detector(method_name, config)
            scaler = StandardScaler().fit(scenario.clean_normal)
            detector.fit(scaler.transform(scenario.clean_normal))
            X_scaled = scaler.transform(X_batch)
            time_ms = measure_inference_time(
                detector.score_samples, X_scaled, n_repeats=n_repeats
            )
        rows.append(
            {
                "method": method_name,
                "inference_time_ms": time_ms,
                "paper_inference_time_ms": PAPER_TABLE4[method_name],
            }
        )
    return rows


def format_table4(rows: list[dict[str, object]]) -> str:
    """Render the Table IV reproduction as text."""
    return format_table(
        rows,
        columns=["method", "inference_time_ms", "paper_inference_time_ms"],
        title="Table IV: average inference time per test sample (ms)",
        precision=4,
    )
