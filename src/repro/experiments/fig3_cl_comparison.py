"""Figure 3 — continual-learning metrics of ADCN, LwF and CND-IDS.

For every dataset the three continual methods run through the experience
stream; AVG, FwdTrans and BwdTrans are computed from the resulting F1 matrix.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import CONTINUAL_METHOD_NAMES, get_continual_result

__all__ = ["run_fig3", "format_fig3"]


def run_fig3(
    config: ExperimentConfig | None = None,
    *,
    methods: tuple[str, ...] = CONTINUAL_METHOD_NAMES,
) -> list[dict[str, object]]:
    """Run the continual-learning comparison and return one row per (dataset, method)."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset_name in config.datasets:
        for method_name in methods:
            result = get_continual_result(config, dataset_name, method_name)
            rows.append(
                {
                    "dataset": dataset_name,
                    "method": method_name,
                    "avg_f1": result.avg_f1,
                    "fwd_transfer": result.fwd_transfer,
                    "bwd_transfer": result.bwd_transfer,
                }
            )
    return rows


def format_fig3(rows: list[dict[str, object]]) -> str:
    """Render the Fig. 3 reproduction as text (three series per dataset)."""
    return format_table(
        rows,
        columns=["dataset", "method", "avg_f1", "fwd_transfer", "bwd_transfer"],
        title="Fig. 3: continual-learning metrics (AVG / FwdTrans / BwdTrans, F1)",
    )
