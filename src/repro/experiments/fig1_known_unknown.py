"""Figure 1 — supervised ML-IDS accuracy on known vs. unknown attacks.

The paper's motivating experiment trains XGBoost, Random Forest and a DNN on
labeled data containing a subset of the attack families ("known" attacks) and
then measures accuracy on test traffic containing (a) those known families and
(b) families never seen during training ("unknown" attacks).  The headline
observation is the large accuracy drop on unknown attacks.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.metrics.classification import accuracy_score
from repro.ml.scalers import StandardScaler
from repro.ml.splits import train_test_split
from repro.supervised import (
    DNNClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.utils.random import check_random_state

__all__ = ["run_fig1", "format_fig1", "split_known_unknown"]

#: Display names follow the paper; GradientBoosting stands in for XGBoost.
FIG1_MODEL_NAMES: tuple[str, ...] = ("XGBoost", "RandomForest", "DNN")


def _build_model(name: str, seed: int):
    if name == "XGBoost":
        return GradientBoostingClassifier(
            n_estimators=40, max_depth=3, subsample=0.8, random_state=seed
        )
    if name == "RandomForest":
        return RandomForestClassifier(n_estimators=30, max_depth=10, random_state=seed)
    if name == "DNN":
        return DNNClassifier(
            hidden_dims=(128, 64), epochs=15, learning_rate=0.01, random_state=seed
        )
    raise KeyError(f"unknown Fig. 1 model {name!r}")


def split_known_unknown(
    dataset: Dataset, *, known_fraction: float = 0.5, seed: int | None = 0
) -> tuple[list[str], list[str]]:
    """Split the dataset's attack families into known (training) and unknown (zero-day) sets."""
    rng = check_random_state(seed)
    families = list(dataset.attack_type_names)
    rng.shuffle(families)
    n_known = max(1, int(round(known_fraction * len(families))))
    n_known = min(n_known, len(families) - 1) if len(families) > 1 else n_known
    return sorted(families[:n_known]), sorted(families[n_known:])


def _evaluate_dataset(
    dataset: Dataset, config: ExperimentConfig
) -> list[dict[str, object]]:
    known, unknown = split_known_unknown(dataset, seed=config.seed)
    known_mask = np.isin(dataset.attack_types, known) & (dataset.y == 1)
    unknown_mask = np.isin(dataset.attack_types, unknown) & (dataset.y == 1)
    normal_mask = dataset.y == 0

    # Labeled pool: normal + known attacks, split into train/test.
    pool_idx = np.flatnonzero(normal_mask | known_mask)
    X_pool, y_pool = dataset.X[pool_idx], dataset.y[pool_idx]
    X_train, X_test_known, y_train, y_test_known = train_test_split(
        X_pool, y_pool, test_size=0.3, stratify=y_pool, random_state=config.seed
    )

    # Unknown-attack test set: held-out normal mixed with unseen families.
    unknown_idx = np.flatnonzero(unknown_mask)
    n_normal_for_unknown = min(int(np.sum(normal_mask)) // 4, max(len(unknown_idx), 1))
    rng = check_random_state(config.seed + 1)
    normal_for_unknown = rng.choice(
        np.flatnonzero(normal_mask), n_normal_for_unknown, replace=False
    )
    unknown_test_idx = np.concatenate([unknown_idx, normal_for_unknown])
    X_test_unknown = dataset.X[unknown_test_idx]
    y_test_unknown = dataset.y[unknown_test_idx]

    scaler = StandardScaler().fit(X_train)
    X_train_s = scaler.transform(X_train)
    X_test_known_s = scaler.transform(X_test_known)
    X_test_unknown_s = scaler.transform(X_test_unknown)

    rows = []
    for model_name in FIG1_MODEL_NAMES:
        model = _build_model(model_name, config.seed)
        model.fit(X_train_s, y_train)
        known_acc = accuracy_score(y_test_known, model.predict(X_test_known_s))
        unknown_acc = accuracy_score(y_test_unknown, model.predict(X_test_unknown_s))
        rows.append(
            {
                "dataset": dataset.name,
                "model": model_name,
                "known_accuracy": 100.0 * known_acc,
                "unknown_accuracy": 100.0 * unknown_acc,
                "known_families": len(known),
                "unknown_families": len(unknown),
            }
        )
    return rows


def run_fig1(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Reproduce Fig. 1 for every configured dataset."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset_name in config.datasets:
        dataset = load_dataset(dataset_name, scale=config.scale, seed=config.seed)
        rows.extend(_evaluate_dataset(dataset, config))
    return rows


def format_fig1(rows: list[dict[str, object]]) -> str:
    """Render the Fig. 1 reproduction as text."""
    return format_table(
        rows,
        columns=[
            "dataset",
            "model",
            "known_accuracy",
            "unknown_accuracy",
            "known_families",
            "unknown_families",
        ],
        title="Fig. 1: supervised ML-IDS accuracy (%) on known vs. unknown attacks",
        precision=1,
    )
