"""Figure 4 — average F1 of static novelty detectors vs. CND-IDS.

LOF, OC-SVM, DIF and PCA are fitted once on the clean normal data (they cannot
be retrained on contaminated unlabeled streams); their mean F1 across all
experience test sets is compared against CND-IDS's AVG.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    STATIC_DETECTOR_NAMES,
    get_continual_result,
    get_static_result,
)

__all__ = ["run_fig4", "format_fig4"]


def run_fig4(
    config: ExperimentConfig | None = None,
    *,
    detectors: tuple[str, ...] = STATIC_DETECTOR_NAMES,
) -> list[dict[str, object]]:
    """One row per (dataset, method) with the mean F1 across experiences."""
    config = config or ExperimentConfig()
    rows: list[dict[str, object]] = []
    for dataset_name in config.datasets:
        for detector_name in detectors:
            static = get_static_result(config, dataset_name, detector_name)
            rows.append(
                {
                    "dataset": dataset_name,
                    "method": detector_name,
                    "mean_f1": static.mean_f1,
                }
            )
        cnd = get_continual_result(config, dataset_name, "CND-IDS")
        rows.append(
            {"dataset": dataset_name, "method": "CND-IDS", "mean_f1": cnd.avg_f1}
        )
    return rows


def format_fig4(rows: list[dict[str, object]]) -> str:
    """Render the Fig. 4 reproduction as text."""
    return format_table(
        rows,
        columns=["dataset", "method", "mean_f1"],
        title="Fig. 4: mean F1 of novelty detectors vs. CND-IDS",
    )
