"""Shared, cached execution layer for the figure/table runners.

Several figures reuse the same underlying runs (e.g. the CND-IDS runs appear
in Fig. 3, Table II, Fig. 4, Fig. 5 and Table IV).  This module builds
scenarios, methods and detectors from an :class:`ExperimentConfig` and caches
results per (config, dataset, method) within the process so a full
regeneration of the evaluation section does not repeat work.
"""

from __future__ import annotations

import numpy as np

from repro.continual.baselines import ADCN, LwF
from repro.continual.base import ContinualMethod
from repro.continual.extensions import CumulativeRetraining, ExperienceReplay
from repro.continual.scenario import ContinualScenario
from repro.core.losses import CNDLossConfig
from repro.core.model import CNDIDS
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.protocol import (
    MethodRunResult,
    StaticDetectorResult,
    run_continual_method,
    run_static_detector,
)
from repro.novelty import (
    DeepIsolationForest,
    IsolationForest,
    LocalOutlierFactor,
    NoveltyDetector,
    OneClassSVM,
    PCAReconstructionDetector,
)

__all__ = [
    "CONTINUAL_METHOD_NAMES",
    "STATIC_DETECTOR_NAMES",
    "ABLATION_VARIANTS",
    "build_scenario",
    "build_continual_method",
    "build_static_detector",
    "get_scenario",
    "get_continual_result",
    "get_static_result",
    "clear_cache",
]

#: Continual methods compared in Fig. 3 / Table II.
CONTINUAL_METHOD_NAMES: tuple[str, ...] = ("ADCN", "LwF", "CND-IDS")

#: Static novelty detectors compared in Fig. 4 / Fig. 5.
STATIC_DETECTOR_NAMES: tuple[str, ...] = ("LOF", "OCSVM", "DIF", "PCA")

#: Loss ablation variants of Table III.
ABLATION_VARIANTS: dict[str, CNDLossConfig] = {
    "CND-IDS": CNDLossConfig.full(),
    "CND-IDS (w/o LCS)": CNDLossConfig.without_cluster_separation(),
    "CND-IDS (w/o LR)": CNDLossConfig.without_reconstruction(),
    "CND-IDS (w/o LR and LCL)": CNDLossConfig.without_reconstruction_and_continual(),
}

_SCENARIO_CACHE: dict[tuple, ContinualScenario] = {}
_CONTINUAL_CACHE: dict[tuple, MethodRunResult] = {}
_STATIC_CACHE: dict[tuple, StaticDetectorResult] = {}


def clear_cache() -> None:
    """Drop all cached scenarios and results (mainly for tests)."""
    _SCENARIO_CACHE.clear()
    _CONTINUAL_CACHE.clear()
    _STATIC_CACHE.clear()


# -- builders --------------------------------------------------------------------
def build_scenario(config: ExperimentConfig, dataset_name: str) -> ContinualScenario:
    """Generate a dataset and wrap it in the paper's continual scenario."""
    dataset = load_dataset(dataset_name, scale=config.scale, seed=config.seed)
    return ContinualScenario.from_dataset(
        dataset,
        n_experiences=config.n_experiences(dataset_name),
        clean_normal_fraction=config.clean_normal_fraction,
        test_fraction=config.test_fraction,
        calibration_size=config.calibration_size,
        seed=config.seed,
    )


def build_continual_method(
    name: str,
    input_dim: int,
    config: ExperimentConfig,
    *,
    loss_config: CNDLossConfig | None = None,
) -> ContinualMethod:
    """Instantiate a continual method by display name (``ADCN``, ``LwF``, ``CND-IDS``)."""
    common = dict(
        latent_dim=config.latent_dim,
        hidden_dims=config.hidden_dims,
        epochs=config.epochs,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        random_state=config.seed,
    )
    if name == "ADCN":
        return ADCN(input_dim, **common)
    if name == "LwF":
        return LwF(input_dim, **common)
    if name == "Replay":
        return ExperienceReplay(input_dim, **common)
    if name == "Cumulative":
        return CumulativeRetraining(input_dim, **common)
    if name.startswith("CND-IDS"):
        if loss_config is None:
            loss_config = ABLATION_VARIANTS.get(name, CNDLossConfig.full())
        if loss_config == CNDLossConfig.full():
            loss_config = CNDLossConfig(
                lambda_r=config.lambda_r,
                lambda_cl=config.lambda_cl,
                margin=config.margin,
            )
        return CNDIDS(
            input_dim,
            loss_config=loss_config,
            pca_variance=config.pca_variance,
            max_clean_normal=config.max_clean_normal,
            **common,
        )
    raise KeyError(f"unknown continual method {name!r}")


def build_static_detector(name: str, config: ExperimentConfig) -> NoveltyDetector:
    """Instantiate a static novelty detector by display name."""
    seed = config.seed
    if name == "LOF":
        return LocalOutlierFactor(n_neighbors=20, random_state=seed)
    if name == "OCSVM":
        return OneClassSVM(nu=0.1, random_state=seed)
    if name == "DIF":
        return DeepIsolationForest(random_state=seed)
    if name == "PCA":
        return PCAReconstructionDetector(n_components=config.pca_variance)
    if name == "IForest":
        return IsolationForest(random_state=seed)
    raise KeyError(f"unknown static detector {name!r}")


# -- cached execution ----------------------------------------------------------------
def get_scenario(config: ExperimentConfig, dataset_name: str) -> ContinualScenario:
    """Cached scenario for (config, dataset)."""
    key = (config, dataset_name)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_scenario(config, dataset_name)
    return _SCENARIO_CACHE[key]


def get_continual_result(
    config: ExperimentConfig,
    dataset_name: str,
    method_name: str,
    *,
    loss_config: CNDLossConfig | None = None,
    variant_label: str | None = None,
) -> MethodRunResult:
    """Cached run of a continual method on a dataset's scenario."""
    label = variant_label or method_name
    key = (config, dataset_name, label)
    if key not in _CONTINUAL_CACHE:
        scenario = get_scenario(config, dataset_name)
        method = build_continual_method(
            method_name, scenario.n_features, config, loss_config=loss_config
        )
        result = run_continual_method(method, scenario)
        result.method_name = label
        _CONTINUAL_CACHE[key] = result
    return _CONTINUAL_CACHE[key]


def get_static_result(
    config: ExperimentConfig, dataset_name: str, detector_name: str
) -> StaticDetectorResult:
    """Cached evaluation of a static detector on a dataset's scenario."""
    key = (config, dataset_name, detector_name)
    if key not in _STATIC_CACHE:
        scenario = get_scenario(config, dataset_name)
        detector = build_static_detector(detector_name, config)
        _STATIC_CACHE[key] = run_static_detector(
            detector, scenario, detector_name=detector_name
        )
    return _STATIC_CACHE[key]


def inference_batch(config: ExperimentConfig, dataset_name: str, size: int = 2000) -> np.ndarray:
    """A fixed test batch (concatenated experience test splits) for timing runs."""
    scenario = get_scenario(config, dataset_name)
    X = np.vstack([experience.X_test for experience in scenario])
    if X.shape[0] > size:
        X = X[:size]
    return X
