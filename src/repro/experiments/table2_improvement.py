"""Table II — improvement of CND-IDS over the UCL baselines.

The improvement is the ratio of CND-IDS's metric to the baseline's metric
(AVG and FwdTrans only; the paper excludes BwdTrans because a ratio is not
meaningful for a metric that can be negative).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig3_cl_comparison import run_fig3
from repro.experiments.reporting import format_table

__all__ = ["run_table2", "format_table2", "improvement_ratio"]

#: Paper-reported improvement factors (Table II) for the paper-vs-measured record.
PAPER_TABLE2 = {
    ("ADCN", "xiiotid"): {"avg": 2.02, "fwd": 5.00},
    ("ADCN", "wustl_iiot"): {"avg": 4.50, "fwd": 6.47},
    ("ADCN", "cicids2017"): {"avg": 1.37, "fwd": 1.73},
    ("ADCN", "unsw_nb15"): {"avg": 1.29, "fwd": 1.44},
    ("LwF", "xiiotid"): {"avg": 1.46, "fwd": 1.35},
    ("LwF", "wustl_iiot"): {"avg": 6.11, "fwd": 3.47},
    ("LwF", "cicids2017"): {"avg": 1.93, "fwd": 2.64},
    ("LwF", "unsw_nb15"): {"avg": 1.11, "fwd": 1.02},
}


def improvement_ratio(cnd_value: float, baseline_value: float) -> float:
    """Proportional improvement of CND-IDS over a baseline (``cnd / baseline``).

    Returns ``inf`` when the baseline score is zero and CND-IDS is positive,
    and ``nan`` when both are zero.
    """
    if baseline_value > 0:
        return float(cnd_value / baseline_value)
    if cnd_value > 0:
        return float("inf")
    return float("nan")


def run_table2(
    config: ExperimentConfig | None = None,
    *,
    fig3_rows: list[dict[str, object]] | None = None,
) -> list[dict[str, object]]:
    """Compute CND-IDS improvement factors over ADCN and LwF per dataset."""
    config = config or ExperimentConfig()
    if fig3_rows is None:
        fig3_rows = run_fig3(config)
    by_key = {(row["method"], row["dataset"]): row for row in fig3_rows}

    rows: list[dict[str, object]] = []
    for baseline in ("ADCN", "LwF"):
        for dataset_name in config.datasets:
            cnd = by_key.get(("CND-IDS", dataset_name))
            base = by_key.get((baseline, dataset_name))
            if cnd is None or base is None:
                continue
            paper = PAPER_TABLE2.get((baseline, dataset_name), {})
            rows.append(
                {
                    "baseline": baseline,
                    "dataset": dataset_name,
                    "avg_improvement": improvement_ratio(cnd["avg_f1"], base["avg_f1"]),
                    "fwd_improvement": improvement_ratio(
                        cnd["fwd_transfer"], base["fwd_transfer"]
                    ),
                    "paper_avg_improvement": paper.get("avg", float("nan")),
                    "paper_fwd_improvement": paper.get("fwd", float("nan")),
                }
            )
    return rows


def mean_improvements(rows: list[dict[str, object]]) -> dict[str, float]:
    """Average improvement factors per baseline across datasets (paper text numbers)."""
    summary: dict[str, float] = {}
    for baseline in ("ADCN", "LwF"):
        subset = [r for r in rows if r["baseline"] == baseline]
        if not subset:
            continue
        finite_avg = [r["avg_improvement"] for r in subset if np.isfinite(r["avg_improvement"])]
        finite_fwd = [r["fwd_improvement"] for r in subset if np.isfinite(r["fwd_improvement"])]
        summary[f"{baseline}_avg"] = float(np.mean(finite_avg)) if finite_avg else float("nan")
        summary[f"{baseline}_fwd"] = float(np.mean(finite_fwd)) if finite_fwd else float("nan")
    return summary


def format_table2(rows: list[dict[str, object]]) -> str:
    """Render the Table II reproduction as text."""
    return format_table(
        rows,
        columns=[
            "baseline",
            "dataset",
            "avg_improvement",
            "fwd_improvement",
            "paper_avg_improvement",
            "paper_fwd_improvement",
        ],
        title="Table II: CND-IDS improvement over UCL baselines (x factors)",
        precision=2,
    )
