"""Dataset containers and specifications."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AttackFamily", "DatasetSpec", "Dataset"]

NORMAL_LABEL = "normal"


@dataclass(frozen=True)
class AttackFamily:
    """Description of one attack family in a synthetic dataset.

    Parameters
    ----------
    name:
        Attack family name (mirrors the label names of the real dataset).
    proportion:
        Relative share of this family among all attack samples.
    severity:
        How far the family deviates from normal behaviour in the latent
        space; larger values are easier to detect.
    subspace_leakage:
        Fraction of the deviation that escapes the normal-data subspace
        (deviation outside the subspace is what PCA-style detectors see).
    feature_fraction:
        Fraction of observed features perturbed by the attack.
    """

    name: str
    proportion: float = 1.0
    severity: float = 2.0
    subspace_leakage: float = 0.6
    feature_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.proportion <= 0:
            raise ValueError("proportion must be positive")
        if self.severity < 0:
            raise ValueError("severity must be non-negative")
        if not 0.0 <= self.subspace_leakage <= 1.0:
            raise ValueError("subspace_leakage must be in [0, 1]")
        if not 0.0 < self.feature_fraction <= 1.0:
            raise ValueError("feature_fraction must be in (0, 1]")


@dataclass(frozen=True)
class DatasetSpec:
    """Full specification of a synthetic intrusion dataset.

    ``reference_size`` / ``reference_normal`` / ``reference_attack`` record the
    sizes reported in the paper's Table I for the real dataset; the generated
    dataset is ``scale`` times smaller but keeps the same proportions.
    """

    name: str
    n_features: int
    reference_size: int
    reference_normal: int
    reference_attack: int
    attack_families: tuple[AttackFamily, ...]
    n_normal_modes: int = 4
    latent_dim: int | None = None
    noise_level: float = 0.08
    heavy_tail_fraction: float = 0.15
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_features < 2:
            raise ValueError("n_features must be at least 2")
        if self.reference_normal + self.reference_attack > self.reference_size * 1.01:
            raise ValueError("normal + attack sizes exceed the reference size")
        if not self.attack_families:
            raise ValueError("at least one attack family is required")
        names = [family.name for family in self.attack_families]
        if len(names) != len(set(names)):
            raise ValueError("attack family names must be unique")

    @property
    def n_attack_types(self) -> int:
        """Number of distinct attack families."""
        return len(self.attack_families)

    @property
    def normal_fraction(self) -> float:
        """Fraction of normal samples in the reference dataset."""
        return self.reference_normal / (self.reference_normal + self.reference_attack)


@dataclass
class Dataset:
    """A generated dataset: features, binary labels and per-sample attack type."""

    name: str
    X: np.ndarray
    y: np.ndarray
    attack_types: np.ndarray
    feature_names: list[str]
    spec: DatasetSpec | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D")
        if not (self.X.shape[0] == self.y.shape[0] == self.attack_types.shape[0]):
            raise ValueError("X, y and attack_types must have the same number of samples")
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError("feature_names must have one entry per feature")

    # -- basic accessors -----------------------------------------------------
    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_normal(self) -> int:
        return int(np.sum(self.y == 0))

    @property
    def n_attack(self) -> int:
        return int(np.sum(self.y == 1))

    @property
    def attack_type_names(self) -> list[str]:
        """Sorted unique attack family names present in the dataset (excluding normal)."""
        present = np.unique(self.attack_types[self.y == 1])
        return sorted(present.tolist())

    # -- views ------------------------------------------------------------------
    def normal_data(self) -> np.ndarray:
        """Feature matrix of the normal samples only."""
        return self.X[self.y == 0]

    def attack_data(self, family: str | None = None) -> np.ndarray:
        """Feature matrix of attack samples, optionally restricted to one family."""
        mask = self.y == 1
        if family is not None:
            mask &= self.attack_types == family
        return self.X[mask]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new :class:`Dataset` restricted to the given sample indices."""
        return Dataset(
            name=self.name,
            X=self.X[indices],
            y=self.y[indices],
            attack_types=self.attack_types[indices],
            feature_names=list(self.feature_names),
            spec=self.spec,
            metadata=dict(self.metadata),
        )

    def summary(self) -> dict[str, object]:
        """Table-I style summary of the generated (and reference) dataset sizes."""
        info: dict[str, object] = {
            "name": self.name,
            "n_samples": self.n_samples,
            "n_normal": self.n_normal,
            "n_attack": self.n_attack,
            "n_attack_types": len(self.attack_type_names),
            "n_features": self.n_features,
        }
        if self.spec is not None:
            info.update(
                {
                    "reference_size": self.spec.reference_size,
                    "reference_normal": self.spec.reference_normal,
                    "reference_attack": self.spec.reference_attack,
                    "reference_attack_types": self.spec.n_attack_types,
                }
            )
        return info
