"""Specifications of the four intrusion datasets used in the paper (Table I).

Family names mirror the label sets of the real datasets; proportions are
approximate relative frequencies; severities / subspace leakages are chosen so
that each dataset contains a mix of easy, moderate and stealthy attack
families, reproducing the difficulty spread the paper's results exhibit.
"""

from __future__ import annotations

from repro.datasets.base import AttackFamily, Dataset, DatasetSpec
from repro.datasets.generator import SyntheticIDSGenerator

__all__ = [
    "DATASET_NAMES",
    "PAPER_EXPERIENCE_COUNTS",
    "get_dataset_spec",
    "list_datasets",
    "load_dataset",
    "dataset_summary_table",
]


def _family(
    name: str,
    proportion: float,
    severity: float,
    leakage: float,
    feature_fraction: float = 0.4,
) -> AttackFamily:
    return AttackFamily(
        name=name,
        proportion=proportion,
        severity=severity,
        subspace_leakage=leakage,
        feature_fraction=feature_fraction,
    )


_XIIOTID_SPEC = DatasetSpec(
    name="xiiotid",
    n_features=56,
    reference_size=820_502,
    reference_normal=421_417,
    reference_attack=399_417,
    n_normal_modes=5,
    attack_families=(
        _family("generic_scanning", 6.0, 2.6, 0.7),
        _family("scanning_vulnerability", 5.0, 2.4, 0.65),
        _family("fuzzing", 2.5, 1.8, 0.5),
        _family("discovering_resources", 4.0, 2.2, 0.6),
        _family("brute_force", 3.0, 2.8, 0.75),
        _family("dictionary", 3.5, 2.6, 0.7),
        _family("insider_malicious", 1.5, 1.2, 0.35),
        _family("reverse_shell", 1.0, 2.0, 0.55),
        _family("man_in_the_middle", 1.2, 1.5, 0.45),
        _family("mqtt_cloud_broker_subscription", 2.0, 2.3, 0.6),
        _family("modbus_register_reading", 2.2, 2.1, 0.55),
        _family("tcp_relay", 1.8, 2.4, 0.65),
        _family("command_and_control", 1.4, 1.9, 0.5),
        _family("exfiltration", 1.6, 1.7, 0.45),
        _family("fake_notification", 0.8, 1.4, 0.4),
        _family("false_data_injection", 1.7, 1.6, 0.4),
        _family("ransom_dos", 3.2, 3.2, 0.8),
        _family("crypto_ransomware", 1.0, 2.9, 0.75),
    ),
    description="Connectivity- and device-agnostic IIoT intrusion dataset (X-IIoTID).",
)

_WUSTL_IIOT_SPEC = DatasetSpec(
    name="wustl_iiot",
    n_features=41,
    reference_size=1_194_464,
    reference_normal=1_107_448,
    reference_attack=87_016,
    n_normal_modes=4,
    attack_families=(
        _family("command_injection", 1.5, 2.8, 0.75, 0.35),
        _family("denial_of_service", 55.0, 3.4, 0.85, 0.5),
        _family("reconnaissance", 40.0, 2.6, 0.7, 0.4),
        _family("backdoor", 3.5, 2.2, 0.6, 0.3),
    ),
    description="SCADA/IIoT testbed traffic from WUSTL-IIoT-2021.",
)

_CICIDS2017_SPEC = DatasetSpec(
    name="cicids2017",
    n_features=72,
    reference_size=2_830_743,
    reference_normal=2_273_097,
    reference_attack=557_646,
    n_normal_modes=6,
    attack_families=(
        _family("ftp_patator", 1.4, 2.5, 0.65),
        _family("ssh_patator", 1.0, 2.4, 0.6),
        _family("dos_hulk", 41.0, 3.1, 0.8, 0.5),
        _family("dos_goldeneye", 1.8, 2.9, 0.75),
        _family("dos_slowloris", 1.0, 2.3, 0.6),
        _family("dos_slowhttptest", 1.0, 2.2, 0.6),
        _family("heartbleed", 0.1, 3.5, 0.9, 0.25),
        _family("web_brute_force", 0.3, 1.6, 0.45),
        _family("web_xss", 0.2, 1.4, 0.4),
        _family("web_sql_injection", 0.1, 1.3, 0.35),
        _family("infiltration", 0.1, 1.1, 0.3),
        _family("botnet", 0.4, 1.8, 0.5),
        _family("portscan", 28.0, 2.8, 0.75, 0.45),
        _family("ddos", 23.0, 3.2, 0.85, 0.5),
        _family("dos_other", 0.7, 2.0, 0.55),
    ),
    description="Canadian Institute for Cybersecurity IDS 2017 network capture.",
)

_UNSW_NB15_SPEC = DatasetSpec(
    name="unsw_nb15",
    n_features=42,
    reference_size=257_673,
    reference_normal=164_673,
    reference_attack=93_000,
    n_normal_modes=5,
    attack_families=(
        _family("fuzzers", 19.0, 1.6, 0.45),
        _family("analysis", 2.5, 1.4, 0.4),
        _family("backdoor", 2.0, 1.5, 0.4),
        _family("dos", 13.0, 2.2, 0.6),
        _family("exploits", 35.0, 1.9, 0.5),
        _family("generic", 19.0, 2.6, 0.7),
        _family("reconnaissance", 11.0, 2.0, 0.55),
        _family("shellcode", 1.2, 1.7, 0.5),
        _family("worms", 0.2, 2.1, 0.55),
        _family("exploits_other", 1.1, 1.3, 0.35),
    ),
    description="UNSW-NB15 hybrid real/synthetic network intrusion dataset.",
)

_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (_XIIOTID_SPEC, _WUSTL_IIOT_SPEC, _CICIDS2017_SPEC, _UNSW_NB15_SPEC)
}

#: Canonical dataset ordering used by the figures in the paper.
DATASET_NAMES: tuple[str, ...] = ("cicids2017", "unsw_nb15", "wustl_iiot", "xiiotid")

#: Number of experiences the paper uses for each dataset (Sec. IV-A).
PAPER_EXPERIENCE_COUNTS: dict[str, int] = {
    "xiiotid": 5,
    "cicids2017": 5,
    "unsw_nb15": 5,
    "wustl_iiot": 4,
}

_ALIASES = {
    "x-iiotid": "xiiotid",
    "x_iiotid": "xiiotid",
    "wustl-iiot": "wustl_iiot",
    "wustl": "wustl_iiot",
    "cicids": "cicids2017",
    "cic-ids2017": "cicids2017",
    "unsw-nb15": "unsw_nb15",
    "unsw": "unsw_nb15",
}


def _canonical_name(name: str) -> str:
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available datasets: {sorted(_SPECS)}"
        )
    return key


def list_datasets() -> list[str]:
    """Names of all available synthetic datasets."""
    return sorted(_SPECS)


def get_dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name`` (aliases like ``"X-IIoTID"`` accepted)."""
    return _SPECS[_canonical_name(name)]


def load_dataset(
    name: str,
    *,
    scale: float = 0.01,
    seed: int | None = 0,
    min_samples_per_family: int = 40,
) -> Dataset:
    """Generate one of the four paper datasets at the requested scale.

    Parameters
    ----------
    name:
        Dataset name or alias (``xiiotid``, ``wustl_iiot``, ``cicids2017``,
        ``unsw_nb15``).
    scale:
        Fraction of the real dataset's size to generate.
    seed:
        Seed controlling the generated samples (the generative structure and
        the draws are fully determined by it).
    min_samples_per_family:
        Minimum generated samples per attack family regardless of scale.
    """
    spec = get_dataset_spec(name)
    generator = SyntheticIDSGenerator(
        spec, scale=scale, min_samples_per_family=min_samples_per_family
    )
    return generator.generate(seed)


def dataset_summary_table(
    *, scale: float = 0.01, seed: int | None = 0
) -> list[dict[str, object]]:
    """Generate every dataset and return its Table-I style summary rows."""
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=scale, seed=seed)
        rows.append(dataset.summary())
    return rows
