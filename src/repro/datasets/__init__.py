"""Synthetic intrusion-detection datasets.

The paper evaluates on four public datasets (X-IIoTID, WUSTL-IIoT,
CICIDS2017, UNSW-NB15).  Those cannot be downloaded in this offline
environment, so this subpackage provides parametric synthetic generators that
mimic each dataset's published characteristics: total size, normal/attack
proportions, number of distinct attack families, feature dimensionality, and
per-family separability (so that experience splits create genuine zero-day
conditions).  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.base import AttackFamily, Dataset, DatasetSpec
from repro.datasets.generator import SyntheticIDSGenerator
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_summary_table,
    get_dataset_spec,
    list_datasets,
    load_dataset,
)
from repro.datasets.streaming import FlowStream, inject_drift

__all__ = [
    "AttackFamily",
    "Dataset",
    "DatasetSpec",
    "SyntheticIDSGenerator",
    "load_dataset",
    "list_datasets",
    "get_dataset_spec",
    "dataset_summary_table",
    "DATASET_NAMES",
    "FlowStream",
    "inject_drift",
]
