"""Streaming utilities: covariate drift injection and batch-wise flow streams.

The paper motivates CND-IDS with *continually changing* traffic.  The base
generator already changes the attack mix across experiences; this module adds
two ingredients a downstream user needs to build harder, more realistic
streams:

* :func:`inject_drift` — a gradual covariate drift over sample order (device
  fleets change, firmware updates shift feature distributions), so that even
  the *normal* traffic is non-stationary, and
* :class:`FlowStream` — an iterator that replays a dataset as a sequence of
  time-ordered mini-batches, the shape in which a deployed IDS consumes data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.random import check_random_state

__all__ = ["inject_drift", "FlowStream"]


def inject_drift(
    X: np.ndarray,
    *,
    strength: float = 1.0,
    fraction_of_features: float = 0.3,
    kind: str = "shift",
    random_state: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Apply a gradual covariate drift along the sample order of ``X``.

    The first sample is unchanged and the last sample receives the full drift;
    intermediate samples are interpolated linearly, producing the slow
    distributional change that breaks i.i.d. assumptions.

    Parameters
    ----------
    X:
        Samples in time order, shape ``(n_samples, n_features)``.
    strength:
        Magnitude of the drift at the end of the stream, in units of each
        affected feature's standard deviation.
    fraction_of_features:
        Fraction of features affected by the drift.
    kind:
        ``"shift"`` adds a mean offset; ``"scale"`` multiplies by a ramping
        factor ``1 + strength * t``.
    random_state:
        Controls which features drift and the sign of each feature's drift.

    Returns
    -------
    numpy.ndarray
        A drifted copy of ``X`` (the input is not modified).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if strength < 0:
        raise ValueError("strength must be non-negative")
    if not 0.0 < fraction_of_features <= 1.0:
        raise ValueError("fraction_of_features must be in (0, 1]")
    if kind not in ("shift", "scale"):
        raise ValueError("kind must be 'shift' or 'scale'")
    rng = check_random_state(random_state)

    n_samples, n_features = X.shape
    n_affected = max(1, int(round(fraction_of_features * n_features)))
    affected = rng.choice(n_features, n_affected, replace=False)
    signs = rng.choice([-1.0, 1.0], size=n_affected)
    progression = np.linspace(0.0, 1.0, n_samples)[:, None]

    drifted = X.copy()
    feature_std = X[:, affected].std(axis=0)
    feature_std[feature_std == 0.0] = 1.0
    if kind == "shift":
        drifted[:, affected] += progression * strength * signs * feature_std
    else:
        drifted[:, affected] *= 1.0 + progression * strength * np.abs(signs)
    return drifted


@dataclass
class FlowStream:
    """Replay a dataset as time-ordered mini-batches of flows.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of flows per emitted batch.
    drift_strength:
        Optional covariate drift applied over the whole stream before
        batching (0 disables it).
    shuffle:
        Shuffle the sample order once before streaming (the drift, if any, is
        applied after shuffling so it remains gradual in stream order).
    """

    dataset: Dataset
    batch_size: int = 256
    drift_strength: float = 0.0
    shuffle: bool = True
    random_state: int | None = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.drift_strength < 0:
            raise ValueError("drift_strength must be non-negative")
        rng = check_random_state(self.random_state)
        order = (
            rng.permutation(self.dataset.n_samples)
            if self.shuffle
            else np.arange(self.dataset.n_samples)
        )
        X = self.dataset.X[order]
        if self.drift_strength > 0:
            X = inject_drift(X, strength=self.drift_strength, random_state=rng)
        self._X = X
        self._y = self.dataset.y[order]
        self._attack_types = self.dataset.attack_types[order]

    @property
    def n_batches(self) -> int:
        """Number of batches the stream will emit."""
        return int(np.ceil(self.dataset.n_samples / self.batch_size))

    @property
    def X(self) -> np.ndarray:
        """The full stream feature matrix in emission order (drift applied).

        Lets a consumer (tests, the serving layer's equivalence checks)
        compare streamed, batch-wise scoring against one-shot scoring of the
        exact same data.
        """
        return self._X

    @property
    def y(self) -> np.ndarray:
        """Per-sample binary labels aligned with :attr:`X`."""
        return self._y

    @property
    def n_features(self) -> int:
        """Feature width of every emitted batch."""
        return int(self._X.shape[1])

    def __len__(self) -> int:
        return self.n_batches

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for start in range(0, self._X.shape[0], self.batch_size):
            stop = start + self.batch_size
            yield self._X[start:stop], self._y[start:stop]

    def batches_with_types(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Like iteration, but also yields the per-sample attack-type labels."""
        for start in range(0, self._X.shape[0], self.batch_size):
            stop = start + self.batch_size
            yield self._X[start:stop], self._y[start:stop], self._attack_types[start:stop]
