"""Synthetic intrusion-traffic generator.

The generative model is chosen so that the properties the paper's experiments
rely on are present:

* **Normal traffic lives near a low-dimensional subspace.**  Normal samples
  are drawn from a mixture of Gaussian "behaviour modes" in a latent space of
  dimension ``q << d`` and mapped to the observed feature space with a random
  linear map plus small noise.  PCA-style detectors can therefore model normal
  data compactly.
* **Each attack family has its own signature.**  A family perturbs a random
  subset of features, partly *inside* the normal subspace (invisible to a
  subspace detector) and partly *outside* it, with a family-specific severity.
  Families with small severity or low subspace leakage are genuinely hard.
* **Families differ from each other**, so assigning disjoint families to
  different experiences creates a realistic zero-day / distribution-shift
  stream for the continual-learning protocol.
* **Traffic features are non-negative and heavy-tailed** for a configurable
  fraction of columns (packet counts, byte counts, durations), mimicking flow
  statistics of the real datasets.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NORMAL_LABEL, AttackFamily, Dataset, DatasetSpec
from repro.utils.random import check_random_state

__all__ = ["SyntheticIDSGenerator"]


class SyntheticIDSGenerator:
    """Generate a :class:`~repro.datasets.base.Dataset` from a :class:`DatasetSpec`.

    Parameters
    ----------
    spec:
        Dataset specification (feature count, reference sizes, attack families).
    scale:
        Fraction of the reference dataset size to generate; e.g. ``0.01``
        generates a dataset 100x smaller than the real one with the same
        normal/attack proportions.
    min_samples_per_family:
        Lower bound on the number of generated samples per attack family so
        that very rare families survive small scales.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        *,
        scale: float = 0.01,
        min_samples_per_family: int = 40,
        min_normal_samples: int = 400,
    ) -> None:
        if scale <= 0 or scale > 1.0:
            raise ValueError("scale must be in (0, 1]")
        if min_samples_per_family < 1 or min_normal_samples < 1:
            raise ValueError("minimum sample counts must be positive")
        self.spec = spec
        self.scale = scale
        self.min_samples_per_family = min_samples_per_family
        self.min_normal_samples = min_normal_samples

    # -- sample-count bookkeeping -----------------------------------------------
    def _sample_counts(self) -> tuple[int, dict[str, int]]:
        spec = self.spec
        n_normal = max(int(round(spec.reference_normal * self.scale)), self.min_normal_samples)
        total_attack = max(
            int(round(spec.reference_attack * self.scale)),
            self.min_samples_per_family * spec.n_attack_types,
        )
        proportions = np.array([family.proportion for family in spec.attack_families])
        proportions = proportions / proportions.sum()
        counts = {
            family.name: max(
                int(round(total_attack * share)), self.min_samples_per_family
            )
            for family, share in zip(spec.attack_families, proportions)
        }
        return n_normal, counts

    # -- latent structure ----------------------------------------------------------
    def _latent_dim(self) -> int:
        if self.spec.latent_dim is not None:
            return self.spec.latent_dim
        return max(4, self.spec.n_features // 4)

    def _build_structure(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Draw the fixed generative structure (modes, mixing map, family signatures)."""
        spec = self.spec
        d = spec.n_features
        q = self._latent_dim()

        mode_means = rng.normal(0.0, 1.2, size=(spec.n_normal_modes, q))
        mode_scales = rng.uniform(0.4, 0.9, size=(spec.n_normal_modes, q))
        mode_weights = rng.dirichlet(np.full(spec.n_normal_modes, 4.0))

        mixing = rng.normal(0.0, 1.0, size=(q, d)) / np.sqrt(q)
        feature_offset = rng.normal(0.0, 0.5, size=d)

        # Orthonormal-ish directions outside the normal subspace for every family.
        family_structs = {}
        for family in spec.attack_families:
            n_affected = max(2, int(round(family.feature_fraction * d)))
            affected = rng.choice(d, size=n_affected, replace=False)
            # The out-of-subspace signature concentrates on a handful of
            # "salient" features (spiking counters / durations), as real
            # intrusion traffic does; this is what axis-parallel detectors
            # (isolation forests) key on, while subspace detectors see the
            # whole deviation.
            n_salient = min(max(2, n_affected // 4), 8)
            salient = rng.choice(affected, size=n_salient, replace=False)
            out_direction = np.zeros(d)
            out_direction[affected] = 0.3 * rng.normal(0.0, 1.0, size=n_affected)
            out_direction[salient] += rng.choice([-1.0, 1.0], size=n_salient) * rng.uniform(
                1.0, 2.0, size=n_salient
            )
            norm = np.linalg.norm(out_direction)
            out_direction = out_direction / (norm if norm > 0 else 1.0)
            latent_shift = rng.normal(0.0, 1.0, size=q)
            latent_shift = latent_shift / max(np.linalg.norm(latent_shift), 1e-12)
            family_structs[family.name] = {
                "affected": affected,
                "out_direction": out_direction,
                "latent_shift": latent_shift,
                "scale_factor": rng.uniform(1.0, 1.8),
            }

        heavy_tail_cols = rng.choice(
            d, size=max(1, int(round(spec.heavy_tail_fraction * d))), replace=False
        )
        return {
            "mode_means": mode_means,
            "mode_scales": mode_scales,
            "mode_weights": mode_weights,
            "mixing": mixing,
            "feature_offset": feature_offset,
            "families": family_structs,
            "heavy_tail_cols": heavy_tail_cols,
        }

    # -- sample generation -----------------------------------------------------------
    def _sample_normal_latent(
        self, n: int, structure: dict[str, np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        modes = rng.choice(
            self.spec.n_normal_modes, size=n, p=structure["mode_weights"]
        )
        means = structure["mode_means"][modes]
        scales = structure["mode_scales"][modes]
        return means + scales * rng.normal(size=means.shape)

    def _to_feature_space(
        self, latent: np.ndarray, structure: dict[str, np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        features = latent @ structure["mixing"] + structure["feature_offset"]
        features += self.spec.noise_level * rng.normal(size=features.shape)
        return features

    def _generate_family(
        self,
        family: AttackFamily,
        n: int,
        structure: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        struct = structure["families"][family.name]
        latent = self._sample_normal_latent(n, structure, rng)
        # In-subspace component of the attack signature.
        in_subspace_strength = family.severity * (1.0 - family.subspace_leakage)
        latent = latent + in_subspace_strength * struct["latent_shift"]
        features = self._to_feature_space(latent, structure, rng)
        # Out-of-subspace component: what reconstruction-based detectors can see.
        out_strength = family.severity * family.subspace_leakage
        jitter = 1.0 + 0.25 * rng.normal(size=(n, 1))
        features = features + out_strength * jitter * struct["out_direction"][None, :]
        # Attacks also inflate the variance of their affected features.
        affected = struct["affected"]
        features[:, affected] *= struct["scale_factor"]
        return features

    def _apply_traffic_shape(
        self, X: np.ndarray, structure: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Make a subset of columns non-negative and heavy-tailed like flow counters."""
        shaped = X.copy()
        cols = structure["heavy_tail_cols"]
        shaped[:, cols] = np.exp(0.5 * np.clip(shaped[:, cols], -8.0, 8.0))
        return shaped

    # -- public API ------------------------------------------------------------------
    def generate(self, seed: int | np.random.Generator | None = 0) -> Dataset:
        """Generate the dataset deterministically for the given seed."""
        rng = check_random_state(seed)
        structure = self._build_structure(rng)
        n_normal, attack_counts = self._sample_counts()

        blocks: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        types: list[np.ndarray] = []

        normal_latent = self._sample_normal_latent(n_normal, structure, rng)
        normal_features = self._to_feature_space(normal_latent, structure, rng)
        blocks.append(normal_features)
        labels.append(np.zeros(n_normal, dtype=np.int64))
        types.append(np.full(n_normal, NORMAL_LABEL, dtype=object))

        for family in self.spec.attack_families:
            count = attack_counts[family.name]
            features = self._generate_family(family, count, structure, rng)
            blocks.append(features)
            labels.append(np.ones(count, dtype=np.int64))
            types.append(np.full(count, family.name, dtype=object))

        X = np.vstack(blocks)
        y = np.concatenate(labels)
        attack_types = np.concatenate(types)
        X = self._apply_traffic_shape(X, structure)

        # Shuffle so that samples of one family are not contiguous.
        order = rng.permutation(X.shape[0])
        X, y, attack_types = X[order], y[order], attack_types[order]

        feature_names = [f"{self.spec.name}_f{i:02d}" for i in range(self.spec.n_features)]
        return Dataset(
            name=self.spec.name,
            X=X,
            y=y,
            attack_types=attack_types.astype(str),
            feature_names=feature_names,
            spec=self.spec,
            metadata={"scale": self.scale, "latent_dim": self._latent_dim()},
        )
