"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer operating on a fixed list of :class:`Parameter` objects."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        """Apply one update using the gradients currently stored in the parameters."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero the gradient buffer of every tracked parameter."""
        for param in self.params:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.value += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the optimizer used in the paper."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must each be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias_correction1 = 1.0 - self.beta1**self._t
        bias_correction2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
