"""Generic mini-batch trainer for supervised and autoencoding objectives."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.data import batch_iterator
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.utils.random import check_random_state

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of training losses."""

    epoch_losses: list[float] = field(default_factory=list)

    def append(self, loss: float) -> None:
        self.epoch_losses.append(float(loss))

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if never trained)."""
        if not self.epoch_losses:
            return float("nan")
        return self.epoch_losses[-1]

    def __len__(self) -> int:
        return len(self.epoch_losses)


class Trainer:
    """Minimal training loop: batches, forward, loss, backward, optimizer step.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module`.
    optimizer:
        Optimizer constructed over ``model.parameters()``.
    loss_fn:
        Callable ``(prediction, target) -> (value, grad_wrt_prediction)``.
    batch_size, epochs:
        Mini-batch size and number of passes over the data.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]],
        *,
        batch_size: int = 128,
        epochs: int = 10,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.batch_size = batch_size
        self.epochs = epochs
        self._rng = check_random_state(random_state)

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> TrainingHistory:
        """Train the model; when ``y`` is omitted the target is ``X`` (autoencoding)."""
        X = np.asarray(X, dtype=np.float64)
        target = X if y is None else np.asarray(y)
        history = TrainingHistory()
        self.model.train()
        for _ in range(self.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch_x, batch_t in batch_iterator(
                X, target, batch_size=self.batch_size, random_state=self._rng
            ):
                prediction = self.model(batch_x)
                loss, grad = self.loss_fn(prediction, batch_t)
                self.model.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss
                n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        self.model.eval()
        return history
