"""Loss functions.

Every loss exposes ``__call__(prediction, target) -> (value, grad)`` where
``grad`` is the gradient of the (mean-reduced) loss with respect to the
prediction.  The triplet margin loss used by the paper's cluster-separation
objective additionally performs in-batch triplet mining from pseudo-labels.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import check_random_state

__all__ = [
    "MSELoss",
    "BCELoss",
    "SoftmaxCrossEntropyLoss",
    "TripletMarginLoss",
]


class MSELoss:
    """Mean squared error ``mean((pred - target)^2)``."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target
        value = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return value, grad


class BCELoss:
    """Binary cross-entropy on probabilities in (0, 1)."""

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        p = np.clip(prediction, self.eps, 1.0 - self.eps)
        value = float(np.mean(-(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))))
        grad = (p - target) / (p * (1.0 - p)) / p.size
        return value, grad


class SoftmaxCrossEntropyLoss:
    """Softmax + cross-entropy on raw logits with integer class targets."""

    def __call__(
        self, logits: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        target = np.asarray(target)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        if target.ndim != 1 or target.shape[0] != logits.shape[0]:
            raise ValueError("target must be 1-D with one class index per row of logits")
        n, n_classes = logits.shape
        target = target.astype(np.int64)
        if target.min() < 0 or target.max() >= n_classes:
            raise ValueError("target class indices out of range")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        log_probs = shifted - np.log(exp.sum(axis=1, keepdims=True))
        value = float(-np.mean(log_probs[np.arange(n), target]))
        grad = probs.copy()
        grad[np.arange(n), target] -= 1.0
        grad /= n
        return value, grad

    @staticmethod
    def predict_proba(logits: np.ndarray) -> np.ndarray:
        """Convert raw logits to softmax probabilities."""
        logits = np.asarray(logits, dtype=np.float64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)


class TripletMarginLoss:
    """Triplet margin loss with in-batch mining from (pseudo-)labels.

    The paper assigns binary pseudo-labels via K-Means (cluster-separation
    loss, Eq. 2) and then maximises the margin between anchor-positive and
    anchor-negative Euclidean distances:

    ``L = max(d(a, p) - d(a, n) + margin, 0)``

    ``__call__`` expects a batch of embeddings and per-sample labels, mines a
    set of (anchor, positive, negative) triplets, and returns the mean loss
    together with its gradient with respect to the embedding batch.
    """

    def __init__(
        self,
        margin: float = 1.0,
        *,
        triplets_per_anchor: int = 1,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if margin <= 0:
            raise ValueError("margin must be positive")
        if triplets_per_anchor < 1:
            raise ValueError("triplets_per_anchor must be at least 1")
        self.margin = margin
        self.triplets_per_anchor = triplets_per_anchor
        self._rng = check_random_state(random_state)

    # -- triplet mining -------------------------------------------------
    def mine_triplets(self, labels: np.ndarray) -> np.ndarray:
        """Return an array of (anchor, positive, negative) index triplets.

        Uses random sampling: for every sample whose class has at least two
        members and whose complement is non-empty, draw
        ``triplets_per_anchor`` random positives and negatives.  Returns an
        empty ``(0, 3)`` array when no valid triplet exists (e.g. a single
        pseudo-class in the batch).
        """
        labels = np.asarray(labels)
        triplets: list[tuple[int, int, int]] = []
        unique = np.unique(labels)
        if unique.size < 2:
            return np.empty((0, 3), dtype=np.int64)
        indices_by_label = {label: np.flatnonzero(labels == label) for label in unique}
        for anchor in range(labels.shape[0]):
            label = labels[anchor]
            positives = indices_by_label[label]
            positives = positives[positives != anchor]
            negatives = np.flatnonzero(labels != label)
            if positives.size == 0 or negatives.size == 0:
                continue
            for _ in range(self.triplets_per_anchor):
                pos = int(self._rng.choice(positives))
                neg = int(self._rng.choice(negatives))
                triplets.append((anchor, pos, neg))
        if not triplets:
            return np.empty((0, 3), dtype=np.int64)
        return np.asarray(triplets, dtype=np.int64)

    # -- loss ------------------------------------------------------------
    def __call__(
        self, embeddings: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape {embeddings.shape}")
        if labels.shape[0] != embeddings.shape[0]:
            raise ValueError("labels must have one entry per embedding")
        grad = np.zeros_like(embeddings)
        triplets = self.mine_triplets(labels)
        if triplets.shape[0] == 0:
            return 0.0, grad
        anchors = embeddings[triplets[:, 0]]
        positives = embeddings[triplets[:, 1]]
        negatives = embeddings[triplets[:, 2]]

        diff_ap = anchors - positives
        diff_an = anchors - negatives
        dist_ap = np.sqrt(np.sum(diff_ap**2, axis=1) + 1e-12)
        dist_an = np.sqrt(np.sum(diff_an**2, axis=1) + 1e-12)
        losses = dist_ap - dist_an + self.margin
        active = losses > 0.0
        value = float(np.mean(np.where(active, losses, 0.0)))
        if not np.any(active):
            return value, grad

        n_triplets = triplets.shape[0]
        # d/d_anchor = (a-p)/d_ap - (a-n)/d_an for active triplets
        unit_ap = diff_ap / dist_ap[:, None]
        unit_an = diff_an / dist_an[:, None]
        scale = active.astype(np.float64)[:, None] / n_triplets
        grad_anchor = (unit_ap - unit_an) * scale
        grad_positive = -unit_ap * scale
        grad_negative = unit_an * scale
        np.add.at(grad, triplets[:, 0], grad_anchor)
        np.add.at(grad, triplets[:, 1], grad_positive)
        np.add.at(grad, triplets[:, 2], grad_negative)
        return value, grad
