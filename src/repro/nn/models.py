"""Standard model architectures built from the layer substrate: MLP and Autoencoder."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import LeakyReLU, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.module import Module, Parameter
from repro.utils.random import check_random_state

__all__ = ["MLP", "Autoencoder"]

_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
}


def _make_activation(name: str) -> Module:
    try:
        return _ACTIVATIONS[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from exc


class MLP(Module):
    """Multi-layer perceptron with a configurable stack of hidden layers.

    Parameters
    ----------
    layer_sizes:
        Sequence of layer widths including input and output, e.g.
        ``[64, 256, 256, 32]`` creates three linear layers.
    activation:
        Hidden-layer activation name (``relu``, ``leaky_relu``, ``tanh``,
        ``sigmoid``).
    output_activation:
        Optional activation applied after the final linear layer.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        *,
        activation: str = "relu",
        output_activation: str | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes must contain at least input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        if output_activation is not None and output_activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {output_activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = check_random_state(random_state)
        init = "he" if activation in ("relu", "leaky_relu") else "xavier"
        layers: list[Module] = []
        for i in range(len(layer_sizes) - 1):
            layers.append(
                Linear(layer_sizes[i], layer_sizes[i + 1], init=init, random_state=rng)
            )
            is_last = i == len(layer_sizes) - 2
            if not is_last:
                layers.append(_make_activation(activation))
            elif output_activation is not None:
                layers.append(_make_activation(output_activation))
        self.layer_sizes = list(layer_sizes)
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)

    def parameters(self) -> list[Parameter]:
        return self.net.parameters()


class Autoencoder(Module):
    """MLP autoencoder with separately accessible encoder and decoder.

    Matching the paper's Continual Feature Extractor architecture, the
    default is a 4-layer MLP (two encoder layers, two decoder layers) with
    256-unit hidden layers.

    Parameters
    ----------
    input_dim:
        Dimensionality of the input features.
    latent_dim:
        Dimensionality of the learned embedding ``h``.
    hidden_dims:
        Widths of the hidden layers of the encoder; the decoder mirrors them.
    activation:
        Hidden-layer activation.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int = 32,
        hidden_dims: tuple[int, ...] = (256,),
        *,
        activation: str = "relu",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or latent_dim <= 0:
            raise ValueError("input_dim and latent_dim must be positive")
        rng = check_random_state(random_state)
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.hidden_dims = tuple(hidden_dims)

        encoder_sizes = [input_dim, *hidden_dims, latent_dim]
        decoder_sizes = [latent_dim, *reversed(hidden_dims), input_dim]
        self.encoder = MLP(encoder_sizes, activation=activation, random_state=rng)
        self.decoder = MLP(decoder_sizes, activation=activation, random_state=rng)

    # -- forward passes --------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Map inputs to latent embeddings ``h``."""
        return self.encoder(x)

    def decode(self, h: np.ndarray) -> np.ndarray:
        """Reconstruct inputs from latent embeddings."""
        return self.decoder(h)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(x))

    # -- backward passes --------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_latent = self.decoder.backward(grad_output)
        return self.encoder.backward(grad_latent)

    def backward_through_decoder(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate a reconstruction gradient through the decoder only.

        Returns the gradient with respect to the latent embedding so the
        caller can merge it with gradients from latent-space losses before a
        single encoder backward pass (used by the CND composite loss).
        """
        return self.decoder.backward(grad_output)

    def backward_through_encoder(self, grad_latent: np.ndarray) -> np.ndarray:
        """Backpropagate a latent-space gradient through the encoder only."""
        return self.encoder.backward(grad_latent)

    def parameters(self) -> list[Parameter]:
        return self.encoder.parameters() + self.decoder.parameters()

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample squared reconstruction error ``||x - dec(enc(x))||^2``."""
        x = np.asarray(x, dtype=np.float64)
        reconstruction = self.forward(x)
        return np.sum((x - reconstruction) ** 2, axis=1)
