"""Base classes for layers: :class:`Parameter` and :class:`Module`.

The design is deliberately explicit rather than autograd-based: every module
implements ``forward`` and ``backward`` with analytical gradients.  This keeps
the substrate small, easy to test, and sufficient for the MLP autoencoders the
paper uses.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with an associated gradient buffer."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying value array."""
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` and :meth:`backward`.  ``backward``
    receives the gradient of the loss with respect to the module output and
    must (a) accumulate gradients into its parameters and (b) return the
    gradient with respect to its input.
    """

    def __init__(self) -> None:
        self.training = True

    # -- interface -----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters (empty for stateless layers)."""
        return []

    # -- convenience ----------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        """Zero the gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (affects e.g. dropout)."""
        self.training = True
        for child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        self.training = False
        for child in self._children():
            child.eval()
        return self

    def _children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    # -- state management -----------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter value, keyed by position and name."""
        return {
            f"{i}:{p.name}": p.value.copy() for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries but module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            key = f"{i}:{param.name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            if state[key].shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: expected {param.value.shape}, got {state[key].shape}"
                )
            param.value = state[key].copy()

    def clone(self) -> "Module":
        """Return a deep, independent copy of this module (frozen snapshot)."""
        return copy.deepcopy(self)

    def n_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.value.size for p in self.parameters()))
