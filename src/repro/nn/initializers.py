"""Weight initialisation schemes for linear layers."""

from __future__ import annotations

import numpy as np

from repro.utils.random import check_random_state

__all__ = ["xavier_init", "he_init"]


def xavier_init(
    fan_in: int, fan_out: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, suited to tanh/sigmoid layers."""
    rng = check_random_state(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_init(
    fan_in: int, fan_out: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """He normal initialisation, suited to ReLU layers."""
    rng = check_random_state(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))
