"""Mini-batch iteration utilities."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.random import check_random_state

__all__ = ["batch_iterator"]


def batch_iterator(
    *arrays: np.ndarray,
    batch_size: int = 128,
    shuffle: bool = True,
    random_state: int | np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield aligned mini-batches from one or more arrays.

    Parameters
    ----------
    arrays:
        One or more arrays sharing the same first dimension.
    batch_size:
        Number of samples per batch.
    shuffle:
        Shuffle sample order before batching.
    random_state:
        Seed or generator controlling the shuffle.
    drop_last:
        Drop the final batch if it is smaller than ``batch_size``.

    Yields
    ------
    tuple of numpy.ndarray
        One batch slice per input array (a 1-tuple when a single array is
        passed).
    """
    if not arrays:
        raise ValueError("batch_iterator requires at least one array")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    n = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != n:
            raise ValueError("all arrays must share the same number of samples")
    indices = np.arange(n)
    if shuffle:
        rng = check_random_state(random_state)
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        batch_idx = indices[start : start + batch_size]
        if drop_last and batch_idx.shape[0] < batch_size:
            return
        yield tuple(arr[batch_idx] for arr in arrays)
