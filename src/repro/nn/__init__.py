"""From-scratch neural-network substrate on NumPy.

The paper trains its Continual Feature Extractor (a 4-layer MLP autoencoder)
with Adam.  This subpackage provides the minimum credible equivalent of the
PyTorch pieces the paper relies on: layer modules with exact analytical
backpropagation, losses (including the triplet margin loss used by the
cluster-separation objective), optimizers, and small model/trainer helpers.
"""

from repro.nn.data import batch_iterator
from repro.nn.initializers import he_init, xavier_init
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.schedulers import EarlyStopping, ExponentialLR, StepLR
from repro.nn.losses import (
    BCELoss,
    MSELoss,
    SoftmaxCrossEntropyLoss,
    TripletMarginLoss,
)
from repro.nn.models import MLP, Autoencoder
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "StepLR",
    "ExponentialLR",
    "EarlyStopping",
    "MSELoss",
    "BCELoss",
    "SoftmaxCrossEntropyLoss",
    "TripletMarginLoss",
    "SGD",
    "Adam",
    "Optimizer",
    "MLP",
    "Autoencoder",
    "Trainer",
    "TrainingHistory",
    "batch_iterator",
    "he_init",
    "xavier_init",
]
