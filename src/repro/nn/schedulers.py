"""Learning-rate schedules and early stopping for the training loops."""

from __future__ import annotations

from repro.nn.optim import Optimizer

__all__ = ["StepLR", "ExponentialLR", "EarlyStopping"]


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be at least 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)
        return self.optimizer.lr


class ExponentialLR:
    """Multiply the optimizer learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * (self.gamma**self.epoch)
        return self.optimizer.lr


class EarlyStopping:
    """Stop training when a monitored loss stops improving.

    Call :meth:`update` with the epoch loss; it returns ``True`` when training
    should stop (no improvement larger than ``min_delta`` for ``patience``
    consecutive epochs).
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-4) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.epochs_without_improvement = 0

    def update(self, loss: float) -> bool:
        """Record an epoch loss; return ``True`` when training should stop."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.epochs_without_improvement = 0
        else:
            self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience
