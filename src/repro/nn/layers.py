"""Layer implementations with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_init, xavier_init
from repro.nn.module import Module, Parameter
from repro.utils.random import check_random_state

__all__ = [
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
]


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    #: forward-pass cache, rebuilt on the next forward; skipped by snapshots.
    _snapshot_transient_ = ("_input",)

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = check_random_state(random_state)
        if init == "he":
            weight = he_init(in_features, out_features, rng)
        elif init == "xavier":
            weight = xavier_init(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown init scheme {init!r}; use 'he' or 'xavier'")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), got {x.shape}"
            )
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += self._input.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Module):
    """Rectified linear unit."""

    _snapshot_transient_ = ("_mask",)

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    _snapshot_transient_ = ("_mask",)

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * np.where(self._mask, 1.0, self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    _snapshot_transient_ = ("_output",)

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    _snapshot_transient_ = ("_output",)

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    _snapshot_transient_ = ("_mask",)

    def __init__(
        self, p: float = 0.5, random_state: int | np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = check_random_state(random_state)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Module):
    """Batch normalisation over the feature dimension.

    In training mode the batch mean/variance are used and running statistics
    are updated; in evaluation mode the running statistics are used.
    """

    _snapshot_transient_ = ("_cache",)

    def __init__(self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(f"expected input of shape (n, {self.num_features}), got {x.shape}")
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (x - mean) * inv_std
        self._cache = (normalised, inv_std, x - mean)
        return self.gamma.value * normalised + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalised, inv_std, centered = self._cache
        n = grad_output.shape[0]
        self.gamma.grad += np.sum(grad_output * normalised, axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_normalised = grad_output * self.gamma.value
        if not self.training:
            return grad_normalised * inv_std
        # Full batch-norm backward through the batch statistics.
        grad_var = np.sum(grad_normalised * centered * -0.5 * inv_std**3, axis=0)
        grad_mean = np.sum(-grad_normalised * inv_std, axis=0) + grad_var * np.mean(
            -2.0 * centered, axis=0
        )
        return grad_normalised * inv_std + grad_var * 2.0 * centered / n + grad_mean / n

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
