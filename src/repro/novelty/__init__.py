"""Static novelty / anomaly detectors used as baselines in the paper.

All detectors follow the same convention: ``fit`` on (assumed mostly normal)
training data, ``score_samples`` returns anomaly scores where **higher means
more anomalous**, and ``predict`` thresholds those scores into 0 (normal) / 1
(attack).
"""

from repro.novelty.autoencoder_detector import AutoencoderDetector
from repro.novelty.base import NoveltyDetector
from repro.novelty.dif import DeepIsolationForest
from repro.novelty.hbos import HBOS
from repro.novelty.iforest import IsolationForest
from repro.novelty.knn import KNNDetector
from repro.novelty.loda import LODA
from repro.novelty.lof import LocalOutlierFactor
from repro.novelty.mahalanobis import MahalanobisDetector
from repro.novelty.ocsvm import OneClassSVM
from repro.novelty.pca_detector import PCAReconstructionDetector

__all__ = [
    "NoveltyDetector",
    "PCAReconstructionDetector",
    "LocalOutlierFactor",
    "OneClassSVM",
    "IsolationForest",
    "DeepIsolationForest",
    "AutoencoderDetector",
    "KNNDetector",
    "HBOS",
    "MahalanobisDetector",
    "LODA",
]
