"""Local Outlier Factor in novelty-detection mode (Breunig et al., 2000).

The detector is fitted on training data and scores query points by their LOF
value with respect to the training set: the ratio between the average local
reachability density of a point's neighbours and its own.  Values around 1
indicate inliers; larger values indicate outliers.
"""

from __future__ import annotations

import numpy as np

from repro.ml.distances import pairwise_euclidean, pairwise_topk
from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted

__all__ = ["LocalOutlierFactor"]


class LocalOutlierFactor(NoveltyDetector):
    """k-NN based Local Outlier Factor for novelty detection.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours ``k`` used for k-distance and reachability.
    max_train_samples:
        The training set is subsampled to this size (uniformly at random) to
        bound the quadratic distance computations; ``None`` keeps everything.
    block_size:
        Neighbour search processes queries in blocks of this many rows, so
        peak extra memory is O(``block_size`` x n_train) floats instead of
        the full n_queries x n_train distance matrix.
    """

    def __init__(
        self,
        n_neighbors: int = 20,
        *,
        max_train_samples: int | None = 2000,
        block_size: int = 1024,
        threshold_quantile: float = 0.95,
        random_state: int | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.n_neighbors = n_neighbors
        self.max_train_samples = max_train_samples
        self.block_size = block_size
        self.random_state = random_state
        self.X_train_: np.ndarray | None = None
        self._train_k_distance: np.ndarray | None = None
        self._train_lrd: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "LocalOutlierFactor":
        X = check_array(X, name="X")
        if self.max_train_samples is not None and X.shape[0] > self.max_train_samples:
            rng = np.random.default_rng(self.random_state)
            idx = rng.choice(X.shape[0], self.max_train_samples, replace=False)
            X = X[idx]
        if X.shape[0] <= self.n_neighbors:
            raise ValueError(
                f"training set must contain more than n_neighbors={self.n_neighbors} samples"
            )
        self.X_train_ = X
        neighbor_idx, neighbor_dist = pairwise_topk(
            X, X, self.n_neighbors, block_size=self.block_size, exclude_self=True
        )
        # k-distance of each training point = distance to its k-th neighbour.
        self._train_k_distance = neighbor_dist[:, -1]

        # reach-dist_k(p, o) = max(k-distance(o), d(p, o))
        reach = np.maximum(self._train_k_distance[neighbor_idx], neighbor_dist)
        self._train_lrd = 1.0 / (reach.mean(axis=1) + 1e-12)
        train_scores = self._lof_from_neighbors(neighbor_idx, neighbor_dist)
        self._set_default_threshold(train_scores)
        return self

    def _lof_from_neighbors(
        self, neighbor_idx: np.ndarray, neighbor_dist: np.ndarray
    ) -> np.ndarray:
        """LOF scores given neighbour indices/distances into the training set."""
        reach = np.maximum(self._train_k_distance[neighbor_idx], neighbor_dist)
        lrd = 1.0 / (reach.mean(axis=1) + 1e-12)
        neighbor_lrd = self._train_lrd[neighbor_idx]
        return neighbor_lrd.mean(axis=1) / (lrd + 1e-12)

    # -- scoring ---------------------------------------------------------------
    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "X_train_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        neighbor_idx, neighbor_dist = pairwise_topk(
            X, self.X_train_, self.n_neighbors, block_size=self.block_size
        )
        return self._lof_from_neighbors(neighbor_idx, neighbor_dist)

    def _score_samples_naive(self, X: np.ndarray) -> np.ndarray:
        """Full-matrix full-argsort reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "X_train_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        k = self.n_neighbors
        distances = pairwise_euclidean(X, self.X_train_)
        neighbor_idx = np.argsort(distances, axis=1)[:, :k]
        neighbor_dist = np.take_along_axis(distances, neighbor_idx, axis=1)
        return self._lof_from_neighbors(neighbor_idx, neighbor_dist)
