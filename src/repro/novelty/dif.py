"""Deep Isolation Forest (Xu et al., TKDE 2023).

DIF replaces the axis-parallel splits of a plain isolation forest with
isolation in the representation spaces of an ensemble of *randomly
initialised* neural networks: each network maps the data to a new space, an
isolation forest is built on every representation, and the anomaly score is
the average of the per-representation scores.
"""

from __future__ import annotations

import numpy as np

from repro.nn.models import MLP
from repro.novelty.base import NoveltyDetector
from repro.novelty.iforest import IsolationForest
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_fitted

__all__ = ["DeepIsolationForest"]


class DeepIsolationForest(NoveltyDetector):
    """Isolation forest over an ensemble of random neural representations.

    Parameters
    ----------
    n_representations:
        Number of randomly initialised networks (``r`` in the paper).
    n_estimators_per_representation:
        Number of isolation trees built on each representation (``t``).
    representation_dim:
        Output dimensionality of each random network.
    hidden_dims:
        Hidden-layer widths of the random networks.
    block_size:
        Scoring maps at most this many rows through the random networks at a
        time, so peak extra memory is O(``block_size`` x max layer width)
        floats instead of materialising every representation for the whole
        query batch — the same bound the blockwise neighbour kernels give
        kNN/LOF.
    """

    def __init__(
        self,
        n_representations: int = 5,
        n_estimators_per_representation: int = 20,
        *,
        representation_dim: int = 20,
        hidden_dims: tuple[int, ...] = (64,),
        max_samples: int = 256,
        block_size: int = 4096,
        threshold_quantile: float = 0.95,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_representations < 1 or n_estimators_per_representation < 1:
            raise ValueError("ensemble sizes must be at least 1")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.n_representations = n_representations
        self.n_estimators_per_representation = n_estimators_per_representation
        self.representation_dim = representation_dim
        self.hidden_dims = tuple(hidden_dims)
        self.max_samples = max_samples
        self.block_size = block_size
        self.random_state = random_state
        self.networks_: list[MLP] | None = None
        self.forests_: list[IsolationForest] | None = None

    def fit(self, X: np.ndarray) -> "DeepIsolationForest":
        X = check_array(X, name="X")
        rng = check_random_state(self.random_state)
        networks: list[MLP] = []
        forests: list[IsolationForest] = []
        for _ in range(self.n_representations):
            net = MLP(
                [X.shape[1], *self.hidden_dims, self.representation_dim],
                activation="tanh",
                random_state=rng,
            )
            net.eval()
            representation = self._encode_blocks(net, X)
            forest = IsolationForest(
                n_estimators=self.n_estimators_per_representation,
                max_samples=self.max_samples,
                random_state=rng,
            ).fit(representation)
            networks.append(net)
            forests.append(forest)
        self.networks_ = networks
        self.forests_ = forests
        self._set_default_threshold(self.score_samples(X))
        return self

    def _encode_blocks(self, net: MLP, X: np.ndarray) -> np.ndarray:
        """Map ``X`` through ``net`` in blocks of ``block_size`` rows.

        Only the (n, representation_dim) output is materialised for the full
        input; the wider hidden activations exist for one block at a time.
        """
        n = X.shape[0]
        out = np.empty((n, self.representation_dim))
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            out[start:stop] = net(X[start:stop])
        return out

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "networks_")
        X = check_array(X, name="X", allow_empty=True)
        n = X.shape[0]
        if n == 0:
            return np.empty(0)
        # Blockwise representation maps: every network's forward pass (and
        # its layer activation caches) only ever holds block_size rows, so
        # peak memory is bounded regardless of the query size.  Rows are
        # scored independently, so the result matches the one-shot pass.
        scores = np.zeros(n)
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            block = X[start:stop]
            for net, forest in zip(self.networks_, self.forests_):
                scores[start:stop] += forest.score_samples(net(block))
        return scores / len(self.networks_)
