"""LODA: Lightweight On-line Detector of Anomalies (Pevny, 2016).

An ensemble of sparse random one-dimensional projections, each equipped with a
histogram density estimate.  The anomaly score of a sample is the average
negative log density across projections.  LODA is designed for exactly the
setting the paper targets — high-rate streams on constrained devices — which
makes it a natural extra baseline for the novelty-detector comparison.
"""

from __future__ import annotations

import numpy as np

from repro.ml.binning import histogram_log_densities
from repro.novelty.base import NoveltyDetector
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_fitted

__all__ = ["LODA"]


class LODA(NoveltyDetector):
    """Ensemble of random sparse projections with histogram densities.

    Parameters
    ----------
    n_projections:
        Number of random one-dimensional projections.
    n_bins:
        Histogram bins per projection.
    smoothing:
        Additive count smoothing for empty bins.
    """

    def __init__(
        self,
        n_projections: int = 50,
        n_bins: int = 20,
        *,
        smoothing: float = 0.5,
        threshold_quantile: float = 0.95,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_projections < 1 or n_bins < 2:
            raise ValueError("n_projections must be >= 1 and n_bins >= 2")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.n_projections = n_projections
        self.n_bins = n_bins
        self.smoothing = smoothing
        self.random_state = random_state
        self.projections_: np.ndarray | None = None
        self.bin_edges_: np.ndarray | None = None
        self.log_densities_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "LODA":
        X = check_array(X, name="X")
        n_samples, n_features = X.shape
        rng = check_random_state(self.random_state)

        # Sparse projections: each uses ~sqrt(d) non-zero Gaussian weights.
        n_nonzero = max(1, int(round(np.sqrt(n_features))))
        projections = np.zeros((self.n_projections, n_features))
        for i in range(self.n_projections):
            chosen = rng.choice(n_features, n_nonzero, replace=False)
            projections[i, chosen] = rng.normal(size=n_nonzero)
        self.projections_ = projections

        projected = X @ projections.T  # (n_samples, n_projections)
        bin_edges = np.empty((self.n_projections, self.n_bins + 1))
        log_densities = np.empty((self.n_projections, self.n_bins))
        for i in range(self.n_projections):
            column = projected[:, i]
            lo, hi = column.min(), column.max()
            if lo == hi:
                hi = lo + 1.0
            edges = np.linspace(lo, hi, self.n_bins + 1)
            counts, _ = np.histogram(column, bins=edges)
            densities = (counts + self.smoothing) / (n_samples + self.smoothing * self.n_bins)
            bin_edges[i] = edges
            log_densities[i] = np.log(densities)
        self.bin_edges_ = bin_edges
        self.log_densities_ = log_densities
        self._set_default_threshold(self.score_samples(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "projections_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        projected = X @ self.projections_.T
        # All projections binned in one batched searchsorted; out-of-range
        # values get the density of the emptiest bin (the smoothing floor).
        log_density = histogram_log_densities(
            projected, self.bin_edges_, self.log_densities_
        )
        return -log_density.sum(axis=1) / self.n_projections

    def _score_samples_naive(self, X: np.ndarray) -> np.ndarray:
        """Per-projection scoring loop kept for equivalence tests and benchmarks."""
        check_fitted(self, "projections_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        projected = X @ self.projections_.T
        scores = np.zeros(X.shape[0])
        for i in range(self.n_projections):
            edges = self.bin_edges_[i]
            bins = np.clip(
                np.searchsorted(edges, projected[:, i], side="right") - 1, 0, self.n_bins - 1
            )
            log_density = self.log_densities_[i][bins]
            out_of_range = (projected[:, i] < edges[0]) | (projected[:, i] > edges[-1])
            log_density = np.where(out_of_range, self.log_densities_[i].min(), log_density)
            scores -= log_density
        return scores / self.n_projections
