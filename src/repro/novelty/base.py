"""Common interface for novelty detectors."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.metrics.thresholds import quantile_threshold

__all__ = ["NoveltyDetector"]


class NoveltyDetector:
    """Abstract base class for novelty detectors.

    Subclasses implement :meth:`fit` and :meth:`score_samples`.  The base
    class provides threshold handling: after fitting, a default threshold is
    derived from the training-score distribution (``threshold_quantile``), and
    :meth:`predict` applies either that default or an explicit threshold.
    """

    def __init__(self, *, threshold_quantile: float = 0.95) -> None:
        if not 0.0 < threshold_quantile < 1.0:
            raise ValueError("threshold_quantile must be strictly between 0 and 1")
        self.threshold_quantile = threshold_quantile
        self.threshold_: float | None = None

    # -- interface ---------------------------------------------------------
    def fit(self, X: np.ndarray) -> "NoveltyDetector":
        """Fit the detector on training data assumed to be (mostly) normal."""
        raise NotImplementedError

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores for ``X``; higher values indicate more anomalous samples."""
        raise NotImplementedError

    # -- shared behaviour -----------------------------------------------------
    def _set_default_threshold(self, train_scores: np.ndarray) -> None:
        """Store the training-quantile threshold used by :meth:`predict` by default."""
        self.threshold_ = quantile_threshold(
            np.asarray(train_scores, dtype=np.float64), self.threshold_quantile
        )

    def predict(self, X: np.ndarray, threshold: float | None = None) -> np.ndarray:
        """Binary predictions: 1 (attack/novel) where the score exceeds the threshold."""
        if threshold is None:
            if self.threshold_ is None:
                raise RuntimeError(
                    f"{type(self).__name__} has no default threshold; fit the detector "
                    "or pass an explicit threshold"
                )
            threshold = self.threshold_
        scores = self.score_samples(X)
        return (scores > threshold).astype(np.int64)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return predictions for the same samples."""
        return self.fit(X).predict(X)

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | Path, *, metadata: dict | None = None) -> Path:
        """Write a pickle-free snapshot of this fitted detector to ``path``.

        See :mod:`repro.serve.snapshot` for the on-disk format.  The loaded
        detector reproduces :meth:`score_samples` bit for bit.
        """
        from repro.serve.snapshot import save_snapshot

        return save_snapshot(self, path, metadata=metadata)

    @classmethod
    def load(cls, path: str | Path) -> "NoveltyDetector":
        """Load a snapshot previously written by :meth:`save`."""
        from repro.serve.snapshot import load_snapshot

        return load_snapshot(path, expected_class=cls)
