"""Histogram-Based Outlier Score (HBOS, Goldstein & Dengel 2012).

A very fast feature-wise density estimator: each feature gets an equal-width
histogram fitted on the training data; the anomaly score of a sample is the
sum of negative log densities of the bins its feature values fall into.
Feature independence is assumed, which makes HBOS cheap and a common IDS
baseline for high-rate traffic.
"""

from __future__ import annotations

import numpy as np

from repro.ml.binning import histogram_log_densities
from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted, check_n_features

__all__ = ["HBOS"]


class HBOS(NoveltyDetector):
    """Histogram-based outlier score.

    Parameters
    ----------
    n_bins:
        Number of equal-width bins per feature.
    smoothing:
        Additive count smoothing so empty bins (unseen value ranges) get a
        finite, small density instead of an infinite score.
    """

    def __init__(
        self,
        n_bins: int = 20,
        *,
        smoothing: float = 0.5,
        threshold_quantile: float = 0.95,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.n_bins = n_bins
        self.smoothing = smoothing
        self.bin_edges_: np.ndarray | None = None
        self.log_densities_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "HBOS":
        X = check_array(X, name="X")
        n_samples, n_features = X.shape
        bin_edges = np.empty((n_features, self.n_bins + 1))
        log_densities = np.empty((n_features, self.n_bins))
        for j in range(n_features):
            column = X[:, j]
            lo, hi = column.min(), column.max()
            if lo == hi:
                hi = lo + 1.0
            edges = np.linspace(lo, hi, self.n_bins + 1)
            counts, _ = np.histogram(column, bins=edges)
            densities = (counts + self.smoothing) / (n_samples + self.smoothing * self.n_bins)
            bin_edges[j] = edges
            log_densities[j] = np.log(densities)
        self.bin_edges_ = bin_edges
        self.log_densities_ = log_densities
        self._set_default_threshold(self.score_samples(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "bin_edges_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        check_n_features(X, self.bin_edges_.shape[0], fitted_with="detector was fitted")
        # All features binned in one batched searchsorted; out-of-range
        # values get the density of the emptiest bin (the smoothing floor).
        return -histogram_log_densities(X, self.bin_edges_, self.log_densities_).sum(axis=1)

    def _score_samples_naive(self, X: np.ndarray) -> np.ndarray:
        """Per-feature scoring loop kept for equivalence tests and benchmarks."""
        check_fitted(self, "bin_edges_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        check_n_features(X, self.bin_edges_.shape[0], fitted_with="detector was fitted")
        scores = np.zeros(X.shape[0])
        for j in range(X.shape[1]):
            edges = self.bin_edges_[j]
            bins = np.clip(np.searchsorted(edges, X[:, j], side="right") - 1, 0, self.n_bins - 1)
            log_density = self.log_densities_[j][bins]
            out_of_range = (X[:, j] < edges[0]) | (X[:, j] > edges[-1])
            log_density = np.where(out_of_range, self.log_densities_[j].min(), log_density)
            scores -= log_density
        return scores
