"""Autoencoder reconstruction-error novelty detector.

Not a baseline of the paper's figures but a standard unsupervised IDS method
(cited in the related work); included for completeness and used in examples.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.models import Autoencoder
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted

__all__ = ["AutoencoderDetector"]


class AutoencoderDetector(NoveltyDetector):
    """Score samples by the reconstruction error of an autoencoder trained on normal data."""

    def __init__(
        self,
        latent_dim: int = 16,
        hidden_dims: tuple[int, ...] = (64,),
        *,
        epochs: int = 20,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        threshold_quantile: float = 0.95,
        random_state: int | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        self.latent_dim = latent_dim
        self.hidden_dims = tuple(hidden_dims)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.autoencoder_: Autoencoder | None = None

    def fit(self, X: np.ndarray) -> "AutoencoderDetector":
        X = check_array(X, name="X")
        autoencoder = Autoencoder(
            X.shape[1],
            latent_dim=self.latent_dim,
            hidden_dims=self.hidden_dims,
            random_state=self.random_state,
        )
        trainer = Trainer(
            autoencoder,
            Adam(autoencoder.parameters(), lr=self.learning_rate),
            MSELoss(),
            batch_size=self.batch_size,
            epochs=self.epochs,
            random_state=self.random_state,
        )
        trainer.fit(X)
        self.autoencoder_ = autoencoder
        self._set_default_threshold(self.score_samples(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "autoencoder_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        return self.autoencoder_.reconstruction_error(X)
