"""k-nearest-neighbour distance novelty detector.

A classical distance-based detector (Ramaswamy et al., 2000) widely used as an
IDS baseline: the anomaly score of a query point is the mean distance to its
``k`` nearest neighbours in the (normal) training set.
"""

from __future__ import annotations

import numpy as np

from repro.ml.distances import pairwise_euclidean, pairwise_topk
from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted

__all__ = ["KNNDetector"]


class KNNDetector(NoveltyDetector):
    """Mean k-NN distance to the training set as the anomaly score.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours ``k``.
    aggregation:
        ``"mean"`` uses the average of the k nearest distances, ``"max"`` the
        k-th (largest of the k) distance.
    max_train_samples:
        Training subsample size bounding the quadratic distance cost.
    block_size:
        Scoring processes queries in blocks of this many rows, so peak extra
        memory is O(``block_size`` x n_train) floats instead of the full
        n_queries x n_train distance matrix.
    """

    def __init__(
        self,
        n_neighbors: int = 10,
        *,
        aggregation: str = "mean",
        max_train_samples: int | None = 2000,
        block_size: int = 1024,
        threshold_quantile: float = 0.95,
        random_state: int | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if aggregation not in ("mean", "max"):
            raise ValueError("aggregation must be 'mean' or 'max'")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.n_neighbors = n_neighbors
        self.aggregation = aggregation
        self.max_train_samples = max_train_samples
        self.block_size = block_size
        self.random_state = random_state
        self.X_train_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "KNNDetector":
        X = check_array(X, name="X")
        if self.max_train_samples is not None and X.shape[0] > self.max_train_samples:
            rng = np.random.default_rng(self.random_state)
            idx = rng.choice(X.shape[0], self.max_train_samples, replace=False)
            X = X[idx]
        if X.shape[0] <= self.n_neighbors:
            raise ValueError(
                f"training set must contain more than n_neighbors={self.n_neighbors} samples"
            )
        self.X_train_ = X
        # Training-score distribution for the default threshold: the point
        # itself (distance zero) is excluded from its own neighbour set.
        _, neighbor_dist = pairwise_topk(
            X, X, self.n_neighbors, block_size=self.block_size, exclude_self=True
        )
        self._set_default_threshold(self._aggregate(neighbor_dist))
        return self

    def _aggregate(self, neighbor_distances: np.ndarray) -> np.ndarray:
        if self.aggregation == "mean":
            return neighbor_distances.mean(axis=1)
        return neighbor_distances[:, -1]

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "X_train_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        _, nearest = pairwise_topk(
            X, self.X_train_, self.n_neighbors, block_size=self.block_size
        )
        return self._aggregate(nearest)

    def _score_samples_naive(self, X: np.ndarray) -> np.ndarray:
        """Full-matrix full-sort reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "X_train_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        distances = pairwise_euclidean(X, self.X_train_)
        nearest = np.sort(distances, axis=1)[:, : self.n_neighbors]
        return self._aggregate(nearest)
