"""One-class SVM with an RBF kernel approximated by random Fourier features.

The exact kernel OC-SVM requires a quadratic-programming solver; with the
training sizes used in the experiments a widely adopted approximation is
sufficient and much faster: map the inputs with random Fourier features
(Rahimi & Recht, 2007) and solve the *linear* one-class SVM primal

``min_w,rho  1/2 ||w||^2 + 1/(nu * n) * sum_i max(0, rho - w.z_i) - rho``

by stochastic subgradient descent (the same formulation as scikit-learn's
``SGDOneClassSVM``).  The anomaly score is ``rho - w.z(x)`` so that larger
values are more anomalous.
"""

from __future__ import annotations

import numpy as np

from repro.novelty.base import NoveltyDetector
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_fitted

__all__ = ["OneClassSVM"]


class OneClassSVM(NoveltyDetector):
    """Approximate RBF one-class SVM.

    Parameters
    ----------
    nu:
        Upper bound on the fraction of training errors / lower bound on the
        fraction of support vectors, in (0, 1].
    gamma:
        RBF kernel width; ``"scale"`` uses ``1 / (n_features * var(X))``.
    n_features_rff:
        Number of random Fourier features used for the kernel approximation.
    n_epochs, learning_rate, batch_size:
        Subgradient-descent schedule for the linear primal problem.
    block_size:
        Scoring (and the per-minibatch training transforms) materialise the
        random-feature map for at most this many rows at a time, so peak
        extra memory is O(``block_size`` x ``n_features_rff``) floats instead
        of the full n_samples x ``n_features_rff`` matrix — the same bound
        the blockwise neighbour kernels give kNN/LOF.
    """

    def __init__(
        self,
        nu: float = 0.1,
        gamma: float | str = "scale",
        *,
        n_features_rff: int = 256,
        n_epochs: int = 30,
        learning_rate: float = 0.01,
        batch_size: int = 128,
        block_size: int = 4096,
        threshold_quantile: float = 0.95,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        if isinstance(gamma, str) and gamma != "scale":
            raise ValueError("gamma must be a positive float or 'scale'")
        if not isinstance(gamma, str) and gamma <= 0:
            raise ValueError("gamma must be positive")
        if n_features_rff < 1:
            raise ValueError("n_features_rff must be at least 1")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.nu = nu
        self.gamma = gamma
        self.n_features_rff = n_features_rff
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.block_size = block_size
        self.random_state = random_state
        self.weights_: np.ndarray | None = None
        self.rho_: float | None = None
        self._rff_directions: np.ndarray | None = None
        self._rff_offsets: np.ndarray | None = None

    # -- random Fourier features --------------------------------------------
    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = float(X.var())
            if var <= 0.0:
                var = 1.0
            return 1.0 / (X.shape[1] * var)
        return float(self.gamma)

    def _init_rff(self, X: np.ndarray, rng: np.random.Generator) -> None:
        gamma = self._resolve_gamma(X)
        self._rff_directions = rng.normal(
            0.0, np.sqrt(2.0 * gamma), size=(X.shape[1], self.n_features_rff)
        )
        self._rff_offsets = rng.uniform(0.0, 2.0 * np.pi, size=self.n_features_rff)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        projection = X @ self._rff_directions + self._rff_offsets
        return np.sqrt(2.0 / self.n_features_rff) * np.cos(projection)

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "OneClassSVM":
        X = check_array(X, name="X")
        rng = check_random_state(self.random_state)
        self._init_rff(X, rng)
        n = X.shape[0]

        w = np.zeros(self.n_features_rff)
        rho = 0.0
        lr = self.learning_rate
        for epoch in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                # Map only the minibatch rows: peak feature-map memory is
                # O(batch_size x n_features_rff) instead of the full matrix.
                batch = self._transform(X[order[start : start + self.batch_size]])
                margins = rho - batch @ w
                violating = margins > 0.0
                frac = violating.mean() if batch.shape[0] else 0.0
                # Subgradients of the primal objective.
                grad_w = w - (1.0 / self.nu) * violating.astype(np.float64) @ batch / max(
                    batch.shape[0], 1
                )
                grad_rho = (1.0 / self.nu) * frac - 1.0
                w -= lr * grad_w
                rho -= lr * grad_rho
            lr = self.learning_rate / (1.0 + 0.1 * (epoch + 1))
        self.weights_ = w
        self.rho_ = float(rho)
        self._set_default_threshold(self.score_samples(X))
        return self

    # -- scoring ---------------------------------------------------------------
    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "weights_")
        X = check_array(X, name="X", allow_empty=True)
        n = X.shape[0]
        if n == 0:
            return np.empty(0)
        # Blockwise feature map: rows are independent, so mapping and scoring
        # block_size rows at a time bounds peak memory without changing the
        # result.
        scores = np.empty(n)
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            scores[start:stop] = self.rho_ - self._transform(X[start:stop]) @ self.weights_
        return scores
