"""Isolation Forest (Liu, Ting & Zhou, 2008).

Builds an ensemble of isolation trees on random subsamples; the anomaly score
of a sample is ``2^(-E[h(x)] / c(psi))`` where ``E[h(x)]`` is the average path
length over the ensemble and ``c(psi)`` the expected path length of an
unsuccessful BST search in a subsample of size ``psi``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.flat_tree import FlatForest, flatten_tree
from repro.novelty.base import NoveltyDetector
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_fitted, check_n_features

__all__ = ["IsolationForest", "average_path_length"]


def average_path_length(n: int | np.ndarray) -> np.ndarray:
    """Expected path length ``c(n)`` of an unsuccessful BST search over ``n`` points."""
    n_arr = np.atleast_1d(np.asarray(n, dtype=np.float64))
    result = np.zeros_like(n_arr)
    mask = n_arr > 2
    harmonic = np.log(n_arr[mask] - 1.0) + np.euler_gamma
    result[mask] = 2.0 * harmonic - 2.0 * (n_arr[mask] - 1.0) / n_arr[mask]
    result[n_arr == 2] = 1.0
    return result


@dataclass
class _Node:
    """Isolation-tree node: either an internal split or an external leaf."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    size: int = 0  # only meaningful for leaves

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _build_tree(
    X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator
) -> _Node:
    n = X.shape[0]
    if depth >= max_depth or n <= 1:
        return _Node(size=n)
    feature = int(rng.integers(X.shape[1]))
    lo, hi = X[:, feature].min(), X[:, feature].max()
    if lo == hi:
        return _Node(size=n)
    threshold = float(rng.uniform(lo, hi))
    left_mask = X[:, feature] < threshold
    return _Node(
        feature=feature,
        threshold=threshold,
        left=_build_tree(X[left_mask], depth + 1, max_depth, rng),
        right=_build_tree(X[~left_mask], depth + 1, max_depth, rng),
    )


def _path_lengths(node: _Node, X: np.ndarray, depth: float, out: np.ndarray, idx: np.ndarray) -> None:
    """Recursive per-node reference kept for equivalence tests and benchmarks."""
    if node.is_leaf:
        out[idx] = depth + (average_path_length(node.size)[0] if node.size > 1 else 0.0)
        return
    mask = X[idx, node.feature] < node.threshold
    if mask.any():
        _path_lengths(node.left, X, depth + 1.0, out, idx[mask])
    if (~mask).any():
        _path_lengths(node.right, X, depth + 1.0, out, idx[~mask])


def _leaf_path_length(node: _Node, depth: int) -> float:
    """Flat-tree payload: total path length credited at a leaf.

    The payload equals leaf depth plus the ``c(size)`` adjustment for
    unresolved leaves, so a single gather after batch traversal yields the
    same value the recursive walk accumulates along the path.
    """
    if not node.is_leaf:
        return 0.0
    return depth + (average_path_length(node.size)[0] if node.size > 1 else 0.0)


class IsolationForest(NoveltyDetector):
    """Ensemble of isolation trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_samples:
        Subsample size per tree (``psi``); capped at the training-set size.
    """

    # The linked per-tree nodes only back the retained naive reference; the
    # compiled flat forest is the deployable state, so snapshots skip them.
    _snapshot_transient_ = ("trees_",)

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        *,
        threshold_quantile: float = 0.95,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if n_estimators < 1 or max_samples < 2:
            raise ValueError("n_estimators must be >= 1 and max_samples >= 2")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state
        self.trees_: list[_Node] | None = None
        self.forest_: FlatForest | None = None
        self.subsample_size_: int | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = check_array(X, name="X")
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        psi = min(self.max_samples, X.shape[0])
        max_depth = int(np.ceil(np.log2(max(psi, 2))))
        trees = []
        for _ in range(self.n_estimators):
            idx = rng.choice(X.shape[0], psi, replace=False)
            trees.append(_build_tree(X[idx], 0, max_depth, rng))
        self.trees_ = trees
        # Compile the ensemble to one flat forest (strict "<" comparator,
        # leaf payload = depth + c(size)) for batch scoring.
        self.forest_ = FlatForest.from_flat_trees(
            [flatten_tree(tree, _leaf_path_length, strict=True) for tree in trees]
        )
        self.subsample_size_ = psi
        self._set_default_threshold(self.score_samples(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        # Snapshots restore only the compiled forest (``trees_`` is a naive
        # reference cache), so fittedness is judged on ``forest_``.
        check_fitted(self, "forest_")
        X = check_array(X, name="X", allow_empty=True)
        check_n_features(X, self.n_features_, fitted_with="forest was fitted")
        if X.shape[0] == 0:
            return np.empty(0)
        mean_depth = self.forest_.sum_values(X)[:, 0] / self.forest_.n_trees
        c = average_path_length(self.subsample_size_)[0]
        return np.power(2.0, -mean_depth / max(c, 1e-12))

    def _score_samples_naive(self, X: np.ndarray) -> np.ndarray:
        """Recursive per-tree reference kept for equivalence tests and benchmarks."""
        check_fitted(self, "trees_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        depths = np.zeros((len(self.trees_), X.shape[0]))
        all_idx = np.arange(X.shape[0])
        for t, tree in enumerate(self.trees_):
            _path_lengths(tree, X, 0.0, depths[t], all_idx)
        mean_depth = depths.mean(axis=0)
        c = average_path_length(self.subsample_size_)[0]
        return np.power(2.0, -mean_depth / max(c, 1e-12))
