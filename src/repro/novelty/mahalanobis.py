"""Gaussian / Mahalanobis-distance novelty detector.

Models the normal training data as a single multivariate Gaussian with a
shrinkage-regularised covariance matrix; the anomaly score is the squared
Mahalanobis distance to the training mean.  This is the classical parametric
baseline for network anomaly detection.
"""

from __future__ import annotations

import numpy as np

from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted

__all__ = ["MahalanobisDetector"]


class MahalanobisDetector(NoveltyDetector):
    """Squared Mahalanobis distance to the training distribution.

    Parameters
    ----------
    shrinkage:
        Ledoit-Wolf style shrinkage coefficient in [0, 1): the covariance is
        ``(1 - shrinkage) * S + shrinkage * diag(mean variance)``, keeping the
        estimate invertible for correlated or scarce data.
    """

    def __init__(self, *, shrinkage: float = 0.1, threshold_quantile: float = 0.95) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        if not 0.0 <= shrinkage < 1.0:
            raise ValueError("shrinkage must be in [0, 1)")
        self.shrinkage = shrinkage
        self.mean_: np.ndarray | None = None
        self.precision_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MahalanobisDetector":
        X = check_array(X, name="X")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        covariance = centered.T @ centered / max(X.shape[0] - 1, 1)
        average_variance = float(np.trace(covariance)) / X.shape[1]
        if average_variance <= 0.0:
            average_variance = 1.0
        shrunk = (1.0 - self.shrinkage) * covariance + self.shrinkage * average_variance * np.eye(
            X.shape[1]
        )
        # A tiny ridge keeps the matrix invertible even for duplicated features.
        shrunk += 1e-9 * average_variance * np.eye(X.shape[1])
        self.precision_ = np.linalg.inv(shrunk)
        self._set_default_threshold(self.score_samples(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "precision_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        centered = X - self.mean_
        return np.einsum("ij,jk,ik->i", centered, self.precision_, centered)
