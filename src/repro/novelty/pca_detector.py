"""PCA reconstruction-error novelty detector.

This is the "PCA" baseline of the paper (following Rios et al., incDFM) and
also the novelty-detection half of CND-IDS itself: fit PCA on normal data and
score each sample by its feature reconstruction error
``FRE = ||x - T^{-1}(T(x))||^2``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.pca import PCA
from repro.novelty.base import NoveltyDetector
from repro.utils.validation import check_array, check_fitted

__all__ = ["PCAReconstructionDetector"]


class PCAReconstructionDetector(NoveltyDetector):
    """Novelty detection via PCA feature reconstruction error.

    Parameters
    ----------
    n_components:
        Passed to :class:`repro.ml.PCA`; the paper keeps components explaining
        95% of the variance (``0.95``).
    threshold_quantile:
        Quantile of the training scores used as the default decision threshold.
    """

    def __init__(
        self,
        n_components: int | float | None = 0.95,
        *,
        threshold_quantile: float = 0.95,
    ) -> None:
        super().__init__(threshold_quantile=threshold_quantile)
        self.n_components = n_components
        self.pca_: PCA | None = None

    def fit(self, X: np.ndarray) -> "PCAReconstructionDetector":
        X = check_array(X, name="X")
        self.pca_ = PCA(n_components=self.n_components).fit(X)
        self._set_default_threshold(self.pca_.reconstruction_error(X))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "pca_")
        X = check_array(X, name="X", allow_empty=True)
        return self.pca_.reconstruction_error(X)
