"""The continual novelty-detection loss (paper Eq. 1-2) and its pseudo-labelling step.

``L_CND = L_CS + lambda_R * L_R + lambda_CL * L_CL`` where

* ``L_CS`` — cluster-separation loss: K-Means over the (unlabeled) training
  batch assigns each point a binary pseudo-label (0 if its cluster contains at
  least one clean-normal point, 1 otherwise); a triplet margin loss then pushes
  the two pseudo-classes apart in the embedding space.
* ``L_R``  — reconstruction MSE between the decoder output and the input.
* ``L_CL`` — latent regularisation: MSE between the current embedding and the
  embeddings produced by the frozen models of every previous experience.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.kmeans import KMeans, elbow_method
from repro.utils.random import check_random_state
from repro.utils.validation import check_array

__all__ = ["CNDLossConfig", "compute_pseudo_labels"]


@dataclass(frozen=True)
class CNDLossConfig:
    """Hyper-parameters and ablation switches of the CND loss.

    The paper's defaults are ``lambda_r = lambda_cl = 0.1`` and a triplet
    margin of 2.  The three ``use_*`` flags reproduce the ablation rows of
    Table III (full, w/o L_CS, w/o L_R, w/o L_R and L_CL).
    """

    lambda_r: float = 0.1
    lambda_cl: float = 0.1
    margin: float = 2.0
    use_cluster_separation: bool = True
    use_reconstruction: bool = True
    use_continual: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_r <= 1.0:
            raise ValueError("lambda_r must be in [0, 1]")
        if not 0.0 <= self.lambda_cl <= 1.0:
            raise ValueError("lambda_cl must be in [0, 1]")
        if self.margin <= 0:
            raise ValueError("margin must be positive")

    # -- ablation constructors (Table III rows) -------------------------------
    @classmethod
    def full(cls) -> "CNDLossConfig":
        """The complete CND-IDS loss."""
        return cls()

    @classmethod
    def without_cluster_separation(cls) -> "CNDLossConfig":
        """CND-IDS (w/o L_CS)."""
        return cls(use_cluster_separation=False)

    @classmethod
    def without_reconstruction(cls) -> "CNDLossConfig":
        """CND-IDS (w/o L_R)."""
        return cls(use_reconstruction=False)

    @classmethod
    def without_reconstruction_and_continual(cls) -> "CNDLossConfig":
        """CND-IDS (w/o L_R and L_CL)."""
        return cls(use_reconstruction=False, use_continual=False)


def compute_pseudo_labels(
    X_train: np.ndarray,
    clean_normal: np.ndarray,
    *,
    n_clusters: int | None = None,
    k_range: range | list[int] = range(2, 11),
    random_state: int | np.random.Generator | None = None,
    max_elbow_samples: int = 2000,
) -> tuple[np.ndarray, KMeans]:
    """Assign binary pseudo-labels to the unlabeled training batch (Sec. III-C).

    Steps (verbatim from the paper): fit K-Means to ``X_train``; find the
    cluster of every clean-normal point; clusters containing at least one
    clean-normal point form the "normal cluster" set; points of ``X_train``
    in a normal cluster get pseudo-label 0, all others get 1.

    Parameters
    ----------
    X_train:
        Unlabeled training data of the current experience (already scaled).
    clean_normal:
        The clean normal reference set ``N_c`` (same scaling as ``X_train``).
    n_clusters:
        Number of K-Means clusters; ``None`` selects it with the elbow method,
        as the paper does.
    k_range:
        Candidate cluster counts for the elbow method.
    max_elbow_samples:
        The elbow search runs on at most this many training points to bound
        its cost; the final K-Means fit always uses the full batch.

    Returns
    -------
    (pseudo_labels, kmeans):
        Binary pseudo-label per training point and the fitted K-Means model.
    """
    X_train = check_array(X_train, name="X_train")
    clean_normal = check_array(clean_normal, name="clean_normal")
    if X_train.shape[1] != clean_normal.shape[1]:
        raise ValueError("X_train and clean_normal must share the same feature count")
    rng = check_random_state(random_state)

    if n_clusters is None:
        if X_train.shape[0] > max_elbow_samples:
            subset = X_train[rng.choice(X_train.shape[0], max_elbow_samples, replace=False)]
        else:
            subset = X_train
        n_clusters = elbow_method(subset, k_range, random_state=rng)
    n_clusters = int(min(max(n_clusters, 1), X_train.shape[0]))

    kmeans = KMeans(n_clusters=n_clusters, random_state=rng).fit(X_train)
    normal_clusters = np.unique(kmeans.predict(clean_normal))
    pseudo_labels = np.where(np.isin(kmeans.labels_, normal_clusters), 0, 1).astype(np.int64)
    return pseudo_labels, kmeans
