"""CND-IDS core: the paper's primary contribution.

* :class:`~repro.core.losses.CNDLossConfig` and the pseudo-labelling helper
  implement the continual novelty-detection loss (Eq. 1-2).
* :class:`~repro.core.cfe.ContinualFeatureExtractor` is the autoencoder-based
  feature extractor trained per experience with that loss.
* :class:`~repro.core.model.CNDIDS` combines the CFE with the PCA
  reconstruction novelty detector and Best-F thresholding (Algorithm 1).
"""

from repro.core.cfe import ContinualFeatureExtractor
from repro.core.losses import CNDLossConfig, compute_pseudo_labels
from repro.core.model import CNDIDS
from repro.core.thresholding import BestFThresholding, QuantileThresholding, ThresholdingStrategy

__all__ = [
    "CNDLossConfig",
    "compute_pseudo_labels",
    "ContinualFeatureExtractor",
    "CNDIDS",
    "ThresholdingStrategy",
    "BestFThresholding",
    "QuantileThresholding",
]
