"""Thresholding strategies converting anomaly scores into attack/normal decisions.

The paper uses the Best-F rule (Su et al., KDD 2019): the threshold maximising
the F1 score on the evaluated batch.  A label-free quantile strategy (relative
to the clean-normal score distribution) is included for fully unsupervised
deployments and for the thresholding ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.thresholds import best_f_threshold, quantile_threshold

__all__ = ["ThresholdingStrategy", "BestFThresholding", "QuantileThresholding"]


class ThresholdingStrategy:
    """Interface: map anomaly scores (and optional labels/reference scores) to a threshold."""

    #: Whether the strategy needs ground-truth labels for the evaluated batch.
    requires_labels: bool = False

    def select(
        self,
        scores: np.ndarray,
        y_true: np.ndarray | None = None,
        reference_scores: np.ndarray | None = None,
    ) -> float:
        """Return the decision threshold ``tau`` (predict attack when ``score > tau``)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class BestFThresholding(ThresholdingStrategy):
    """Best-F thresholding: maximise F-beta on the evaluated batch (paper default)."""

    requires_labels = True

    def __init__(self, beta: float = 1.0) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta

    def select(
        self,
        scores: np.ndarray,
        y_true: np.ndarray | None = None,
        reference_scores: np.ndarray | None = None,
    ) -> float:
        if y_true is None:
            raise ValueError("BestFThresholding requires ground-truth labels")
        threshold, _ = best_f_threshold(scores, y_true, beta=self.beta)
        return threshold


class QuantileThresholding(ThresholdingStrategy):
    """Label-free threshold at a quantile of the clean-normal score distribution.

    When no reference scores are available the quantile of the evaluated batch
    itself is used.
    """

    requires_labels = False

    def __init__(self, quantile: float = 0.95) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be strictly between 0 and 1")
        self.quantile = quantile

    def select(
        self,
        scores: np.ndarray,
        y_true: np.ndarray | None = None,
        reference_scores: np.ndarray | None = None,
    ) -> float:
        basis = reference_scores if reference_scores is not None else scores
        return quantile_threshold(np.asarray(basis, dtype=np.float64), self.quantile)
