"""CND-IDS: Continual Novelty Detection for Intrusion Detection Systems.

This module implements Algorithm 1 of the paper.  Per training experience:

1. fit the Continual Feature Extractor (CFE) on the unlabeled training data
   with the CND loss,
2. encode the clean normal set ``N_c`` with the CFE,
3. fit the PCA novelty detector on the encoded ``N_c``.

At test time a batch is encoded with the CFE, scored with the PCA feature
reconstruction error, thresholded (Best-F by default), and the resulting
binary predictions are compared against the ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.continual.base import ContinualMethod
from repro.continual.scenario import ContinualScenario
from repro.core.cfe import ContinualFeatureExtractor
from repro.core.losses import CNDLossConfig, compute_pseudo_labels
from repro.core.thresholding import (
    BestFThresholding,
    QuantileThresholding,
    ThresholdingStrategy,
)
from repro.ml.pca import PCA
from repro.ml.scalers import StandardScaler
from repro.utils.random import check_random_state
from repro.utils.validation import check_array

__all__ = ["CNDIDS"]


class CNDIDS(ContinualMethod):
    """The CND-IDS continual novelty-detection intrusion detector.

    Parameters
    ----------
    input_dim:
        Number of input features.
    latent_dim, hidden_dims:
        Architecture of the CFE autoencoder (paper: 4-layer MLP, 256 hidden
        units).  ``latent_dim=None`` (default) uses ``max(64, input_dim)``.
    loss_config:
        Weights / ablation switches of the CND loss (paper defaults when omitted).
    n_clusters:
        Number of K-Means clusters for pseudo-labelling; ``None`` uses the
        elbow method as in the paper.
    pca_variance:
        Explained-variance ratio kept by the PCA novelty detector (0.95).
    thresholding:
        A :class:`~repro.core.thresholding.ThresholdingStrategy`; defaults to
        Best-F as used in the paper.
    epochs, batch_size, learning_rate:
        CFE training schedule per experience.
    max_clean_normal:
        The clean normal set is subsampled to at most this many points before
        encoding / PCA fitting to bound cost on large datasets.
    clean_normal_update_fraction:
        Extension beyond the paper (inspired by incDFM's pseudo-labelling):
        after each experience, this fraction of the experience's training
        samples with the *lowest* anomaly scores is added to the clean normal
        pool, letting the novelty detector follow benign-traffic drift.  The
        default 0.0 reproduces the paper exactly (``N_c`` stays fixed).
    """

    supports_scores = True
    requires_labels = False

    def __init__(
        self,
        input_dim: int,
        *,
        latent_dim: int | None = None,
        hidden_dims: tuple[int, ...] = (256,),
        loss_config: CNDLossConfig | None = None,
        n_clusters: int | None = None,
        pca_variance: float | int | None = 0.95,
        thresholding: ThresholdingStrategy | None = None,
        epochs: int = 10,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        max_clean_normal: int | None = 5000,
        clean_normal_update_fraction: float = 0.0,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        if not 0.0 <= clean_normal_update_fraction < 1.0:
            raise ValueError("clean_normal_update_fraction must be in [0, 1)")
        if latent_dim is None:
            # Keep the embedding at least as wide as the input so the encoder
            # does not have to discard information before the PCA stage.
            latent_dim = max(64, input_dim)
        self.input_dim = input_dim
        self.loss_config = loss_config or CNDLossConfig()
        self.n_clusters = n_clusters
        self.pca_variance = pca_variance
        self.thresholding = thresholding or BestFThresholding()
        self.max_clean_normal = max_clean_normal
        self.clean_normal_update_fraction = clean_normal_update_fraction
        self._rng = check_random_state(random_state)

        self.cfe = ContinualFeatureExtractor(
            input_dim,
            latent_dim=latent_dim,
            hidden_dims=hidden_dims,
            loss_config=self.loss_config,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            random_state=self._rng,
        )
        self.scaler = StandardScaler()
        self._scaler_fitted = False
        self.clean_normal_: np.ndarray | None = None
        self.pca_: PCA | None = None
        self._clean_scores: np.ndarray | None = None
        self.experience_count = 0

    # -- lifecycle -------------------------------------------------------------
    @property
    def name(self) -> str:
        return "CND-IDS"

    def setup(self, clean_normal: np.ndarray) -> None:
        """Receive the clean normal reference set ``N_c`` and fit the feature scaler."""
        clean_normal = check_array(clean_normal, name="clean_normal")
        if clean_normal.shape[1] != self.input_dim:
            raise ValueError(
                f"clean_normal has {clean_normal.shape[1]} features, expected {self.input_dim}"
            )
        if (
            self.max_clean_normal is not None
            and clean_normal.shape[0] > self.max_clean_normal
        ):
            idx = self._rng.choice(
                clean_normal.shape[0], self.max_clean_normal, replace=False
            )
            clean_normal = clean_normal[idx]
        self.scaler.fit(clean_normal)
        self._scaler_fitted = True
        self.clean_normal_ = self.scaler.transform(clean_normal)

    # -- Algorithm 1, training steps -------------------------------------------------
    def fit_experience(
        self,
        X_train: np.ndarray,
        *,
        calibration_X: np.ndarray | None = None,
        calibration_y: np.ndarray | None = None,
    ) -> None:
        """Train on one experience: CFE update, encode ``N_c``, refit the PCA detector.

        ``calibration_X`` / ``calibration_y`` are accepted for interface
        compatibility but ignored — CND-IDS never uses labels for training.
        """
        if self.clean_normal_ is None:
            raise RuntimeError("setup(clean_normal) must be called before fit_experience")
        X_train = check_array(X_train, name="X_train")
        X_scaled = self.scaler.transform(X_train)

        if self.loss_config.use_cluster_separation:
            pseudo_labels, _ = compute_pseudo_labels(
                X_scaled,
                self.clean_normal_,
                n_clusters=self.n_clusters,
                random_state=self._rng,
            )
        else:
            pseudo_labels = np.zeros(X_scaled.shape[0], dtype=np.int64)

        self.cfe.fit_experience(X_scaled, pseudo_labels)
        self._refit_novelty_detector()
        if self.clean_normal_update_fraction > 0.0:
            self._update_clean_normal(X_scaled)
        self.experience_count += 1

    def _refit_novelty_detector(self) -> None:
        encoded_normal = self.cfe.encode(self.clean_normal_)
        self.pca_ = PCA(n_components=self.pca_variance).fit(encoded_normal)
        self._clean_scores = self.pca_.reconstruction_error(encoded_normal)

    def _update_clean_normal(self, X_scaled: np.ndarray) -> None:
        """Add the lowest-scoring (most normal-looking) training samples to ``N_c``.

        This is the label-free pool update described in the class docstring;
        the PCA detector is refitted afterwards so the augmented pool takes
        effect immediately.
        """
        encoded = self.cfe.encode(X_scaled)
        scores = self.pca_.reconstruction_error(encoded)
        n_add = int(self.clean_normal_update_fraction * X_scaled.shape[0])
        if n_add < 1:
            return
        lowest = np.argsort(scores)[:n_add]
        augmented = np.vstack([self.clean_normal_, X_scaled[lowest]])
        if self.max_clean_normal is not None and augmented.shape[0] > self.max_clean_normal:
            keep = self._rng.choice(augmented.shape[0], self.max_clean_normal, replace=False)
            augmented = augmented[keep]
        self.clean_normal_ = augmented
        self._refit_novelty_detector()

    # -- Algorithm 1, test steps ----------------------------------------------------
    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Anomaly score per sample: PCA feature reconstruction error of the CFE embedding."""
        if self.pca_ is None:
            raise RuntimeError("CND-IDS has not been fitted on any experience yet")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0)
        X_scaled = self.scaler.transform(X)
        encoded = self.cfe.encode(X_scaled)
        return self.pca_.reconstruction_error(encoded)

    def predict(self, X: np.ndarray, y_true: np.ndarray | None = None) -> np.ndarray:
        """Binary predictions via the configured thresholding strategy.

        When the strategy requires labels (Best-F) and none are supplied, the
        label-free quantile fallback on the clean-normal score distribution is
        used instead so the model remains usable in deployment.
        """
        scores = self.score_samples(X)
        strategy: ThresholdingStrategy = self.thresholding
        if strategy.requires_labels and y_true is None:
            strategy = QuantileThresholding()
        threshold = strategy.select(
            scores, y_true=y_true, reference_scores=self._clean_scores
        )
        return (scores > threshold).astype(np.int64)

    # -- convenience: run the whole protocol ------------------------------------------
    def run_scenario(self, scenario: ContinualScenario):
        """Run the full Algorithm-1 protocol on a scenario.

        Returns a :class:`repro.experiments.protocol.MethodRunResult`; imported
        lazily to avoid a circular dependency between the core and experiment
        layers.
        """
        from repro.experiments.protocol import run_continual_method

        return run_continual_method(self, scenario)
