"""Continual Feature Extractor (CFE): the autoencoder trained with the CND loss.

Per experience the CFE optimises ``L_CND = L_CS + lambda_R L_R + lambda_CL L_CL``
(paper Eq. 1).  The gradient of each term is combined at the latent embedding
and propagated through the encoder once per batch:

* the reconstruction gradient flows decoder -> latent,
* the cluster-separation (triplet) gradient is computed directly on the latent,
* the continual-learning gradient pulls the latent towards the embeddings of
  the frozen models from previous experiences.

After every experience a frozen snapshot of the model is stored; no data is
retained, matching the paper's storage argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.losses import CNDLossConfig
from repro.nn.data import batch_iterator
from repro.nn.losses import MSELoss, TripletMarginLoss
from repro.nn.models import Autoencoder
from repro.nn.optim import Adam
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_consistent_length

__all__ = ["ContinualFeatureExtractor"]


class ContinualFeatureExtractor:
    """Autoencoder feature extractor updated continually with the CND loss.

    Parameters
    ----------
    input_dim:
        Number of input features.
    latent_dim, hidden_dims:
        Architecture of the MLP autoencoder (the paper uses a 4-layer MLP with
        256-unit hidden layers).
    loss_config:
        Weights and ablation switches of the composite loss.
    epochs, batch_size, learning_rate:
        Adam training schedule per experience (lr = 0.001 in the paper).
    max_snapshots:
        Upper bound on stored past-model snapshots used by ``L_CL``.
    """

    def __init__(
        self,
        input_dim: int,
        *,
        latent_dim: int = 64,
        hidden_dims: tuple[int, ...] = (256,),
        loss_config: CNDLossConfig | None = None,
        epochs: int = 10,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        max_snapshots: int = 10,
        random_state: int | np.random.Generator | None = 0,
    ) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if max_snapshots < 1:
            raise ValueError("max_snapshots must be at least 1")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.hidden_dims = tuple(hidden_dims)
        self.loss_config = loss_config or CNDLossConfig()
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_snapshots = max_snapshots
        self._rng = check_random_state(random_state)

        self.autoencoder = Autoencoder(
            input_dim,
            latent_dim=latent_dim,
            hidden_dims=hidden_dims,
            random_state=self._rng,
        )
        self._past_models: list[Autoencoder] = []
        self._mse = MSELoss()
        self._triplet = TripletMarginLoss(
            margin=self.loss_config.margin, random_state=self._rng
        )
        self.experience_count = 0
        self.training_losses_: list[list[float]] = []

    # -- public API ----------------------------------------------------------
    @property
    def n_past_models(self) -> int:
        """Number of stored frozen snapshots from previous experiences."""
        return len(self._past_models)

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Embed (already scaled) inputs with the current encoder."""
        X = check_array(X, name="X", allow_empty=True)
        self.autoencoder.eval()
        if X.shape[0] == 0:
            return np.empty((0, self.latent_dim))
        return self.autoencoder.encode(X)

    def fit_experience(self, X_train: np.ndarray, pseudo_labels: np.ndarray) -> list[float]:
        """Train the CFE on one experience and snapshot the resulting model.

        Parameters
        ----------
        X_train:
            Scaled, unlabeled training data of the experience.
        pseudo_labels:
            Binary pseudo-labels from :func:`repro.core.losses.compute_pseudo_labels`
            (ignored when the cluster-separation term is disabled).

        Returns
        -------
        list of float
            Mean composite-loss value per epoch.
        """
        X_train = check_array(X_train, name="X_train")
        pseudo_labels = np.asarray(pseudo_labels)
        check_consistent_length(X_train, pseudo_labels)

        optimizer = Adam(self.autoencoder.parameters(), lr=self.learning_rate)
        epoch_losses: list[float] = []
        self.autoencoder.train()
        for _ in range(self.epochs):
            total = 0.0
            n_batches = 0
            for batch_x, batch_labels in batch_iterator(
                X_train,
                pseudo_labels,
                batch_size=self.batch_size,
                random_state=self._rng,
            ):
                total += self._train_step(batch_x, batch_labels, optimizer)
                n_batches += 1
            epoch_losses.append(total / max(n_batches, 1))
        self.autoencoder.eval()

        self._store_snapshot()
        self.experience_count += 1
        self.training_losses_.append(epoch_losses)
        return epoch_losses

    # -- internals -------------------------------------------------------------
    def _train_step(
        self, batch_x: np.ndarray, batch_labels: np.ndarray, optimizer: Adam
    ) -> float:
        config = self.loss_config
        self.autoencoder.zero_grad()
        latent = self.autoencoder.encode(batch_x)
        grad_latent = np.zeros_like(latent)
        loss_value = 0.0

        # Reconstruction loss: backprop lambda_R-scaled gradient through the
        # decoder (filling the decoder parameter gradients) down to the latent.
        if config.use_reconstruction and config.lambda_r > 0:
            reconstruction = self.autoencoder.decode(latent)
            value, grad_reconstruction = self._mse(reconstruction, batch_x)
            loss_value += config.lambda_r * value
            grad_latent += self.autoencoder.backward_through_decoder(
                config.lambda_r * grad_reconstruction
            )

        # Cluster-separation triplet loss on the latent embedding.
        if config.use_cluster_separation:
            value, grad_cs = self._triplet(latent, batch_labels)
            loss_value += value
            grad_latent += grad_cs

        # Continual-learning latent regularisation against every past model.
        if config.use_continual and config.lambda_cl > 0 and self._past_models:
            for past in self._past_models:
                past_latent = past.encode(batch_x)
                value, grad_cl = self._mse(latent, past_latent)
                loss_value += config.lambda_cl * value
                grad_latent += config.lambda_cl * grad_cl

        self.autoencoder.backward_through_encoder(grad_latent)
        optimizer.step()
        return loss_value

    def _store_snapshot(self) -> None:
        snapshot = self.autoencoder.clone()
        snapshot.eval()
        self._past_models.append(snapshot)
        if len(self._past_models) > self.max_snapshots:
            self._past_models.pop(0)
