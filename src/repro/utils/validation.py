"""Input validation helpers shared by every estimator in the library."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_array",
    "check_binary_labels",
    "check_consistent_length",
    "check_fitted",
    "check_n_features",
]


def check_array(
    X: Any,
    *,
    name: str = "X",
    ensure_2d: bool = True,
    allow_empty: bool = False,
    dtype: type = np.float64,
) -> np.ndarray:
    """Validate and convert array-like input to a float ndarray.

    Parameters
    ----------
    X:
        Array-like input (list, tuple or ndarray).
    name:
        Name used in error messages.
    ensure_2d:
        Require a 2-D ``(n_samples, n_features)`` array; a 1-D array is
        rejected rather than silently reshaped.
    allow_empty:
        Whether an array with zero samples is acceptable.
    dtype:
        Target dtype of the returned array.

    Returns
    -------
    numpy.ndarray
        A C-contiguous array of the requested dtype.

    Raises
    ------
    ValueError
        If the array has the wrong dimensionality, is empty when not allowed,
        or contains NaN / infinite values.
    """
    arr = np.asarray(X, dtype=dtype)
    if ensure_2d and arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if not ensure_2d and arr.ndim not in (1, 2):
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {arr.shape}")
    if not allow_empty and arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_binary_labels(y: Any, *, name: str = "y") -> np.ndarray:
    """Validate binary 0/1 labels and return them as an int array.

    Raises
    ------
    ValueError
        If ``y`` is not 1-D or contains values other than 0 and 1.
    """
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    uniques = set(np.unique(arr).tolist())
    if not uniques.issubset({0, 1, 0.0, 1.0, False, True}):
        raise ValueError(f"{name} must contain only binary labels 0/1, got values {sorted(uniques)}")
    return arr.astype(np.int64)


def check_consistent_length(*arrays: Sequence[Any]) -> None:
    """Raise ``ValueError`` unless all arrays share the same first dimension."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"Inconsistent sample counts: {lengths}")


def check_fitted(estimator: Any, attribute: str) -> None:
    """Raise ``RuntimeError`` if ``estimator`` lacks the given fitted attribute."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} is not fitted yet; call fit() before using this method"
        )


def check_n_features(X: Any, n_features: int, *, fitted_with: str = "fitted") -> None:
    """Raise ``ValueError`` if ``X`` does not have exactly ``n_features`` columns.

    Shared guard for every estimator that validates query batches against the
    feature count seen at fit time; applied to empty batches too, so a wiring
    bug that produces wrong-width batches is caught even when they carry no
    rows.
    """
    if X.shape[1] != n_features:
        raise ValueError(
            f"X has {X.shape[1]} features, {fitted_with} with {n_features}"
        )
