"""Random-state helpers.

Every estimator in the library accepts a ``random_state`` argument and routes
it through :func:`check_random_state` so experiments are reproducible end to
end from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_random_state"]


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing :class:`numpy.random.Generator` which is returned unchanged.

    Raises
    ------
    TypeError
        If ``seed`` is not one of the accepted types.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )
