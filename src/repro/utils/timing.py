"""Lightweight timing helpers used by the overhead analysis (Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Use as a context manager; the elapsed time of every ``with`` block is
    accumulated so repeated measurements can be averaged.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.total >= 0.0
    True
    """

    total: float = 0.0
    n_calls: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.total += time.perf_counter() - self._start
        self.n_calls += 1

    @property
    def mean(self) -> float:
        """Mean elapsed time per ``with`` block (0.0 when never used)."""
        if self.n_calls == 0:
            return 0.0
        return self.total / self.n_calls

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.total = 0.0
        self.n_calls = 0
