"""Lightweight timing helpers used by the overhead analysis (Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Use as a context manager; the elapsed time of every ``with`` block is
    accumulated so repeated measurements can be averaged.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.total >= 0.0
    True
    """

    total: float = 0.0
    n_calls: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.total += time.perf_counter() - self._start
        self.n_calls += 1

    @property
    def mean(self) -> float:
        """Mean elapsed time per ``with`` block (0.0 when never used)."""
        if self.n_calls == 0:
            return 0.0
        return self.total / self.n_calls

    def throughput(self, n_items: int) -> float:
        """Items processed per second, assuming each timed block handled ``n_items``.

        Shared rate math for the Table IV overhead measurement and the
        inference throughput benchmark.  Returns 0.0 when the timer was never
        used, and ``inf`` when time was measured but below the clock
        resolution — an immeasurably fast run must rank as the *fastest*
        rate, not the slowest, so medians over rates keep their order.

        Examples
        --------
        >>> timer = Timer(total=2.0, n_calls=1)
        >>> timer.throughput(1000)
        500.0
        """
        if self.n_calls == 0:
            return 0.0
        if self.total <= 0.0:
            return float("inf")
        return n_items * self.n_calls / self.total

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.total = 0.0
        self.n_calls = 0
