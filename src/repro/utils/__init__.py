"""Shared utilities: validation, random state handling, timing."""

from repro.utils.random import check_random_state
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)

__all__ = [
    "check_random_state",
    "Timer",
    "check_array",
    "check_binary_labels",
    "check_consistent_length",
    "check_fitted",
]
