"""K-Means clustering (k-means++ initialisation, Lloyd iterations) and the elbow method.

The cluster-separation loss of CND-IDS uses K-Means over the training batch to
assign binary pseudo-labels, and the paper selects the number of clusters with
the elbow method.
"""

from __future__ import annotations

import numpy as np

from repro.ml.distances import pairwise_squared_euclidean, pairwise_topk
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_fitted

__all__ = ["KMeans", "elbow_method"]


class KMeans:
    """Lloyd's K-Means with k-means++ initialisation.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``.
    n_init:
        Number of random restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative centre-movement tolerance for convergence.
    block_size:
        Cluster assignment processes samples in blocks of this many rows, so
        peak extra memory is O(``block_size`` x n_clusters) floats.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 3,
        max_iter: int = 100,
        tol: float = 1e-4,
        block_size: int = 4096,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if n_init < 1 or max_iter < 1:
            raise ValueError("n_init and max_iter must be at least 1")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.block_size = block_size
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int | None = None

    # -- initialisation ------------------------------------------------------
    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n_samples = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]), dtype=np.float64)
        first = int(rng.integers(n_samples))
        centers[0] = X[first]
        closest_sq = pairwise_squared_euclidean(X, centers[:1]).ravel()
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0.0:
                # All points coincide with chosen centers; pick randomly.
                idx = int(rng.integers(n_samples))
            else:
                probabilities = closest_sq / total
                idx = int(rng.choice(n_samples, p=probabilities))
            centers[k] = X[idx]
            new_sq = pairwise_squared_euclidean(X, centers[k : k + 1]).ravel()
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centers

    # -- fitting ----------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        X = check_array(X, name="X")
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} must be >= n_clusters={self.n_clusters}"
            )
        rng = check_random_state(self.random_state)
        best_inertia = np.inf
        best: tuple[np.ndarray, np.ndarray, int] | None = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(X, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best = (centers, labels, n_iter)
        assert best is not None
        self.cluster_centers_, self.labels_, self.n_iter_ = best
        self.inertia_ = float(best_inertia)
        return self

    def _assign(self, X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-centre label and squared distance per sample, blockwise."""
        idx, dist = pairwise_topk(
            X, centers, 1, block_size=self.block_size, squared=True
        )
        return idx[:, 0], dist[:, 0]

    def _update_centers(
        self, X: np.ndarray, labels: np.ndarray, nearest_sq: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Mean of each cluster's members via bincount accumulation (no per-cluster loop)."""
        counts = np.bincount(labels, minlength=self.n_clusters)
        sums = np.empty((self.n_clusters, X.shape[1]), dtype=np.float64)
        for j in range(X.shape[1]):
            sums[:, j] = np.bincount(labels, weights=X[:, j], minlength=self.n_clusters)
        new_centers = centers.copy()
        nonempty = counts > 0
        new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
        if not nonempty.all():
            # Re-seed empty clusters at the point farthest from its centre.
            new_centers[~nonempty] = X[nearest_sq.argmax()]
        return new_centers

    def _single_run(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = self._init_centers(X, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            labels, nearest_sq = self._assign(X, centers)
            new_centers = self._update_centers(X, labels, nearest_sq, centers)
            shift = np.sqrt(np.sum((new_centers - centers) ** 2, axis=1)).max()
            centers = new_centers
            if shift <= self.tol:
                break
        labels, nearest_sq = self._assign(X, centers)
        inertia = float(nearest_sq.sum())
        return centers, labels, inertia, n_iter

    # -- inference ---------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign each sample to the nearest fitted cluster centre."""
        check_fitted(self, "cluster_centers_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return self._assign(X, self.cluster_centers_)[0]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances from each sample to every cluster centre."""
        check_fitted(self, "cluster_centers_")
        X = check_array(X, name="X", allow_empty=True)
        return np.sqrt(pairwise_squared_euclidean(X, self.cluster_centers_))

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_


def elbow_method(
    X: np.ndarray,
    k_range: range | list[int] = range(2, 11),
    *,
    random_state: int | np.random.Generator | None = None,
    n_init: int = 2,
    max_iter: int = 50,
) -> int:
    """Choose the number of clusters by the elbow (maximum curvature) criterion.

    Fits K-Means for every ``k`` in ``k_range`` and returns the ``k`` whose
    point on the inertia curve is farthest from the straight line joining the
    first and last points — a standard numerical formulation of the elbow
    heuristic the paper cites.
    """
    X = check_array(X, name="X")
    ks = [int(k) for k in k_range]
    if len(ks) == 0:
        raise ValueError("k_range must contain at least one value")
    ks = [k for k in ks if k <= X.shape[0]]
    if not ks:
        return 1
    if len(ks) == 1:
        return ks[0]
    rng = check_random_state(random_state)
    inertias = []
    for k in ks:
        model = KMeans(
            n_clusters=k, n_init=n_init, max_iter=max_iter, random_state=rng
        ).fit(X)
        inertias.append(model.inertia_)
    inertias_arr = np.asarray(inertias, dtype=np.float64)

    # Distance of every (k, inertia) point from the chord between endpoints.
    x = np.asarray(ks, dtype=np.float64)
    y = inertias_arr
    x_norm = (x - x[0]) / max(x[-1] - x[0], 1e-12)
    y_span = max(abs(y[0] - y[-1]), 1e-12)
    y_norm = (y - y[-1]) / y_span
    # Chord from (0, y_norm[0]) to (1, 0): distance of each point to it.
    x0, y0 = 0.0, y_norm[0]
    x1, y1 = 1.0, 0.0
    numerator = np.abs((y1 - y0) * x_norm - (x1 - x0) * y_norm + x1 * y0 - y1 * x0)
    denominator = np.sqrt((y1 - y0) ** 2 + (x1 - x0) ** 2)
    distances = numerator / denominator
    return ks[int(distances.argmax())]
