"""Classical machine-learning substrate: PCA, K-Means, scalers, splits."""

from repro.ml.distances import pairwise_euclidean
from repro.ml.kmeans import KMeans, elbow_method
from repro.ml.pca import PCA
from repro.ml.scalers import MinMaxScaler, StandardScaler
from repro.ml.splits import stratified_indices, train_test_split

__all__ = [
    "PCA",
    "KMeans",
    "elbow_method",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "stratified_indices",
    "pairwise_euclidean",
]
