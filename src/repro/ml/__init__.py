"""Classical machine-learning substrate: PCA, K-Means, scalers, splits, kernels."""

from repro.ml.binning import batch_bin_right, histogram_log_densities
from repro.ml.distances import pairwise_euclidean, pairwise_squared_euclidean, pairwise_topk
from repro.ml.flat_tree import FlatForest, FlatTree, flatten_tree
from repro.ml.kmeans import KMeans, elbow_method
from repro.ml.parallel import get_num_threads
from repro.ml.pca import PCA
from repro.ml.scalers import MinMaxScaler, StandardScaler
from repro.ml.splits import stratified_indices, train_test_split

__all__ = [
    "PCA",
    "KMeans",
    "elbow_method",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "stratified_indices",
    "pairwise_euclidean",
    "pairwise_squared_euclidean",
    "pairwise_topk",
    "FlatForest",
    "FlatTree",
    "flatten_tree",
    "batch_bin_right",
    "histogram_log_densities",
    "get_num_threads",
]
