"""Shared row-block thread pool for the multi-core CPU kernels.

Every multi-core path in this library — the OpenMP native kernels, the
pure-NumPy :class:`~repro.ml.flat_tree.FlatForest` fallback and the blockwise
:func:`~repro.ml.distances.pairwise_topk` scoring — follows the same recipe:
split the *rows* of the batch into contiguous blocks, compute each block
independently into a disjoint slice of a preallocated output, and never
reduce across blocks.  Because no floating-point accumulation crosses a block
boundary, the parallel result is **bit-identical** to the sequential one for
any thread count; parallelism only changes *when* a block is computed, never
*what* it computes.

``REPRO_NUM_THREADS`` caps the number of threads (default: all CPUs,
``1`` disables threading entirely).  The pool itself is a lazily created,
process-wide :class:`~concurrent.futures.ThreadPoolExecutor` shared by all
kernels so repeated batch scoring does not pay thread start-up per call.
Threads are appropriate here because the heavy lifting happens in NumPy and
the ctypes kernels, both of which release the GIL.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["get_num_threads", "map_row_blocks", "row_block_bounds", "run_row_blocks"]

#: Row blocks smaller than this are not worth a thread handoff.
MIN_BLOCK_ROWS = 1024

_pool: ThreadPoolExecutor | None = None
_pool_lock = threading.Lock()


def get_num_threads() -> int:
    """Thread cap for the CPU kernels: ``REPRO_NUM_THREADS`` or all CPUs.

    Invalid or non-positive values fall back to ``1`` (sequential), so a
    misconfigured environment degrades to the slow-but-correct path instead
    of raising mid-stream.
    """
    raw = os.environ.get("REPRO_NUM_THREADS")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return os.cpu_count() or 1


def row_block_bounds(n_rows: int, n_blocks: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_blocks`` contiguous near-equal ranges."""
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    if n_blocks < 1:
        raise ValueError("n_blocks must be at least 1")
    n_blocks = min(n_blocks, max(n_rows, 1))
    return [
        (n_rows * b // n_blocks, n_rows * (b + 1) // n_blocks)
        for b in range(n_blocks)
    ]


def _get_pool() -> ThreadPoolExecutor:
    """The process-wide row-block pool, created once and never replaced.

    Callers may be submitting from several threads at once (e.g. sharded
    serving workers scoring a shared detector), so an existing pool must
    never be shut down from under them.  The pool is sized once to the
    machine (threads spawn on demand, so over-provisioning is cheap); block
    batches larger than the pool simply queue, which is still correct — the
    effective parallelism cap is applied per call via the block count.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=max(os.cpu_count() or 1, get_num_threads(), 4),
                thread_name_prefix="repro-rowblock",
            )
        return _pool


def map_row_blocks(
    kernel: Callable[[int, int], None],
    bounds: Sequence[tuple[int, int]],
    *,
    n_threads: int | None = None,
) -> bool:
    """Run ``kernel(start, stop)`` for every range in ``bounds``.

    Ranges must write to disjoint outputs; they execute concurrently on the
    shared pool when more than one thread is allowed, sequentially (in
    order) otherwise.  Returns ``True`` when the pool was used.  The first
    kernel exception is re-raised either way.
    """
    if n_threads is None:
        n_threads = get_num_threads()
    if n_threads <= 1 or len(bounds) <= 1:
        for start, stop in bounds:
            kernel(start, stop)
        return False
    pool = _get_pool()
    futures = [pool.submit(kernel, start, stop) for start, stop in bounds]
    for future in futures:
        future.result()
    return True


def run_row_blocks(
    kernel: Callable[[int, int], None],
    n_rows: int,
    *,
    n_threads: int | None = None,
    min_block_rows: int = MIN_BLOCK_ROWS,
) -> bool:
    """Split ``n_rows`` into per-thread blocks and run ``kernel`` over them.

    The block count is ``min(n_threads, ceil(n_rows / min_block_rows))`` so
    small batches stay on the calling thread.  Returns ``True`` when the
    pool was used.
    """
    if n_threads is None:
        n_threads = get_num_threads()
    if min_block_rows < 1:
        raise ValueError("min_block_rows must be at least 1")
    n_blocks = min(n_threads, -(-n_rows // min_block_rows) if n_rows else 1)
    if n_blocks <= 1:
        kernel(0, n_rows)
        return False
    return map_row_blocks(
        kernel, row_block_bounds(n_rows, n_blocks), n_threads=n_threads
    )
