"""Batched histogram binning shared by the HBOS and LODA scoring paths.

Both detectors score a sample by looking up each feature (or projection)
value in a per-column equal-width histogram.  The naive implementation calls
``np.searchsorted`` once per column inside a Python loop; the batched
functions here perform the identical lookup for *all* columns at once and
are bit-for-bit equivalent to the per-column loop:

* :func:`batch_bin_right` — arithmetic equal-width guess plus exact +-1
  correction sweeps, O(n x d) per sweep (the fast path used for scoring).
* :func:`batch_searchsorted_right` — comparison counting, O(n x d x n_edges)
  with O(``block_size`` x d x n_edges) bytes of boolean scratch (generic for
  arbitrary ascending edges; also serves as a cross-check in tests).
* :func:`histogram_log_densities` — one batched lookup plus O(n x d)
  gathers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_bin_right", "batch_searchsorted_right", "histogram_log_densities"]


def batch_searchsorted_right(
    edges: np.ndarray, values: np.ndarray, *, block_size: int = 4096
) -> np.ndarray:
    """Per-column ``np.searchsorted(edges[j], values[:, j], side="right")``.

    Parameters
    ----------
    edges:
        ``(d, n_edges)`` array of per-column ascending edge positions.
    values:
        ``(n, d)`` array of values to locate, column ``j`` against
        ``edges[j]``.
    block_size:
        Number of sample rows processed per block, bounding the boolean
        scratch allocation.

    Returns
    -------
    ``(n, d)`` int64 array of insertion indices.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if values.ndim != 2 or edges.ndim != 2 or values.shape[1] != edges.shape[0]:
        raise ValueError(
            f"values {values.shape} and edges {edges.shape} are incompatible; "
            "expected (n, d) values and (d, n_edges) edges"
        )
    if np.isnan(values).any():
        raise ValueError("values must not contain NaN")
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    out = np.empty(values.shape, dtype=np.int64)
    for start in range(0, values.shape[0], block_size):
        chunk = values[start : start + block_size]
        np.sum(edges[None, :, :] <= chunk[:, :, None], axis=2, out=out[start : start + chunk.shape[0]])
    return out


def batch_bin_right(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Clipped right-side bin index of every value in its column's histogram.

    Equivalent, per column ``j``, to
    ``np.clip(np.searchsorted(edges[j], values[:, j], side="right") - 1, 0,
    n_bins - 1)`` but computed for all columns at once: an arithmetic
    equal-width guess (one pass) followed by vectorized +-1 correction sweeps
    against the actual edges until every index is exact.  For the equal-width
    edges produced by ``np.linspace`` the guess is off by at most one bin, so
    the loop terminates after one or two sweeps; arbitrary ascending edges
    remain correct, merely with more sweeps.

    Complexity: O(n x d) per sweep with no boolean scratch cube, versus
    O(n x d x n_edges) for the comparison-counting fallback.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if values.ndim != 2 or edges.ndim != 2 or values.shape[1] != edges.shape[0]:
        raise ValueError(
            f"values {values.shape} and edges {edges.shape} are incompatible; "
            "expected (n, d) values and (d, n_edges) edges"
        )
    if np.isnan(values).any():
        raise ValueError("values must not contain NaN")
    n_bins = edges.shape[1] - 1
    low = edges[:, 0]
    span = edges[:, -1] - low
    span = np.where(span > 0, span, 1.0)
    guess = np.floor((values - low) / span * n_bins)
    bins = np.clip(guess, 0, n_bins - 1).astype(np.int64)
    columns = np.arange(edges.shape[0])
    while True:
        down = (bins > 0) & (values < edges[columns, bins])
        up = ~down & (bins < n_bins - 1) & (values >= edges[columns, bins + 1])
        if not (down.any() or up.any()):
            return bins
        bins = bins - down + up


def histogram_log_densities(
    values: np.ndarray, bin_edges: np.ndarray, log_densities: np.ndarray
) -> np.ndarray:
    """Per-column histogram log densities of ``values``.

    Parameters
    ----------
    values:
        ``(n, d)`` values; column ``j`` is looked up in histogram ``j``.
    bin_edges:
        ``(d, n_bins + 1)`` ascending bin edges per histogram.
    log_densities:
        ``(d, n_bins)`` log density per bin.

    Returns
    -------
    ``(n, d)`` array where entry ``(i, j)`` is the log density of
    ``values[i, j]`` under histogram ``j``; values outside the fitted range
    of a histogram get that histogram's minimum log density (the smoothing
    floor), matching the naive per-column scoring loop.
    """
    bins = batch_bin_right(bin_edges, values)
    gathered = log_densities[np.arange(log_densities.shape[0])[None, :], bins]
    out_of_range = (values < bin_edges[:, 0]) | (values > bin_edges[:, -1])
    return np.where(out_of_range, log_densities.min(axis=1), gathered)
