"""Flattened decision-tree arrays with iterative, frontier-based batch traversal.

Fitted trees in this library are grown as linked ``_TreeNode`` objects, which
is convenient for construction but forces per-sample Python recursion at
inference time.  :func:`flatten_tree` compiles such a tree once, at the end of
``fit()``, into a :class:`FlatTree`: five contiguous NumPy arrays
(``feature``, ``threshold``, ``left``, ``right``, ``value``) indexed by node
id.  Batch prediction then routes *all* rows through the tree level by level
("frontier" traversal): every iteration advances the still-active rows one
level with a handful of vectorized gathers/compares, so the interpreter cost
is O(depth) instead of O(n_samples x depth).

Ensembles (and single trees on hot paths) are compiled one step further into
a :class:`FlatForest`: all trees' nodes concatenated into shared arrays with
consecutive children (``right = left + 1``) and self-looping leaves, the
layout consumed by the optional native kernels in :mod:`repro.ml.native`.

Complexity and memory
---------------------
* ``flatten_tree`` / ``FlatForest.from_flat_trees``: O(n_nodes) time and
  memory, paid once per fit.
* ``FlatTree.apply``/``predict``: O(n_samples x depth) comparisons executed
  in at most ``depth`` NumPy calls; peak extra memory is O(n_samples) for the
  per-row node cursor plus the shrinking active-row index (no per-node or
  per-sample Python objects are allocated).
* ``FlatForest.sum_values``/``apply``: O(n_samples x depth x n_trees) node
  steps; with the native kernel each step is ~2 loads, otherwise it runs as
  ``depth`` NumPy passes per tree.  Peak extra memory is O(n_samples x
  n_trees) ids for ``apply`` and O(n_samples) for ``sum_values``.

Both the native and the NumPy backend parallelize large batches over
contiguous *row blocks* (OpenMP in the kernel, the shared thread pool of
:mod:`repro.ml.parallel` here).  Every block computes exactly what the
sequential walk computes for those rows — per-row accumulation order over
trees never changes — so results are bit-identical for any
``REPRO_NUM_THREADS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml import native
from repro.ml.parallel import run_row_blocks

__all__ = ["FlatTree", "FlatForest", "flatten_tree"]


@dataclass
class FlatTree:
    """A fitted binary decision tree compiled to flat arrays.

    Attributes
    ----------
    feature:
        ``(n_nodes,)`` split-feature index per node; ``-1`` at leaves.
    threshold:
        ``(n_nodes,)`` split threshold per node (unused at leaves).
    left, right:
        ``(n_nodes,)`` child node ids; ``-1`` at leaves.
    value:
        ``(n_nodes, value_dim)`` payload returned by :meth:`predict`; only
        leaf rows are ever gathered.
    strict:
        When ``False`` (CART convention) a row goes left iff
        ``x[feature] <= threshold``; when ``True`` (isolation-tree
        convention) iff ``x[feature] < threshold``.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    strict: bool = False

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id reached by every row of ``X`` (frontier traversal)."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        if n == 0 or self.left[0] < 0:
            return node
        rows = np.arange(n)
        while rows.size:
            current = node[rows]
            column = X[rows, self.feature[current]]
            if self.strict:
                go_left = column < self.threshold[current]
            else:
                go_left = column <= self.threshold[current]
            nxt = np.where(go_left, self.left[current], self.right[current])
            node[rows] = nxt
            rows = rows[self.left[nxt] >= 0]
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, value_dim)`` leaf payloads for every row of ``X``."""
        return self.value[self.apply(X)]


def flatten_tree(
    root: object,
    node_value: Callable[[object, int], np.ndarray | float],
    *,
    strict: bool = False,
) -> FlatTree:
    """Compile a linked node tree into a :class:`FlatTree`.

    Parameters
    ----------
    root:
        Root node; nodes must expose ``feature``, ``threshold``, ``left``,
        ``right`` and an ``is_leaf`` property.
    node_value:
        ``node_value(node, depth) -> scalar or 1-D array`` payload stored for
        every node; all payloads must share one length.  Only leaf payloads
        are observable through :meth:`FlatTree.predict`.
    strict:
        Comparator convention, see :class:`FlatTree`.
    """
    features: list[int] = []
    thresholds: list[float] = []
    lefts: list[int] = []
    rights: list[int] = []
    values: list[np.ndarray] = []

    def _add(node: object, depth: int) -> int:
        index = len(features)
        features.append(-1 if node.is_leaf else int(node.feature))
        thresholds.append(float(node.threshold))
        lefts.append(-1)
        rights.append(-1)
        values.append(
            np.atleast_1d(np.asarray(node_value(node, depth), dtype=np.float64))
        )
        if not node.is_leaf:
            lefts[index] = _add(node.left, depth + 1)
            rights[index] = _add(node.right, depth + 1)
        return index

    _add(root, 0)
    return FlatTree(
        feature=np.asarray(features, dtype=np.int64),
        threshold=np.asarray(thresholds, dtype=np.float64),
        left=np.asarray(lefts, dtype=np.int64),
        right=np.asarray(rights, dtype=np.int64),
        value=np.vstack(values),
        strict=strict,
    )


class FlatForest:
    """A tree ensemble compiled for batch traversal (native kernel friendly).

    All trees live in shared concatenated arrays.  Node ids are absolute;
    every internal node's children occupy consecutive slots (``left = child``,
    ``right = child + 1``) and every leaf *self-loops* with a ``+inf``
    threshold, so walking a row is simply ``depth`` repetitions of
    ``node = child[node] + (x[feature[node]] OP threshold[node])`` with no
    leaf test — branch-free, and four rows are interleaved by the native
    kernel to overlap the dependent load chains.

    The self-looping-leaf trick relies on every comparison against the
    ``+inf`` leaf threshold being false, which only holds for *finite*
    feature values; :meth:`apply` and :meth:`sum_values` therefore reject
    non-finite input (every detector already does, via ``check_array``).

    Use :meth:`from_flat_trees` to build one; traversal automatically uses
    the compiled kernels from :mod:`repro.ml.native` when available and falls
    back to per-tree NumPy passes otherwise.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        child: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        depths: np.ndarray,
        strict: bool,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.child = child
        self.value = value
        self.roots = roots
        self.depths = depths
        self.strict = strict
        # Contiguous scalar payload for the native sum kernel.
        self._value_flat = (
            np.ascontiguousarray(value[:, 0]) if value.shape[1] == 1 else None
        )

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def value_dim(self) -> int:
        return int(self.value.shape[1])

    @classmethod
    def from_flat_trees(cls, trees: Sequence[FlatTree]) -> "FlatForest":
        """Compile :class:`FlatTree` instances into one traversal-ready forest.

        All trees must share the comparator convention and payload width.
        """
        if not trees:
            raise ValueError("at least one tree is required")
        strict = trees[0].strict
        value_dim = trees[0].value.shape[1]
        features: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        children: list[np.ndarray] = []
        values: list[np.ndarray] = []
        roots: list[int] = []
        depths: list[int] = []
        offset = 0
        for tree in trees:
            if tree.strict != strict or tree.value.shape[1] != value_dim:
                raise ValueError("trees must share comparator and payload width")
            n_nodes = tree.n_nodes
            feature = np.zeros(n_nodes, dtype=np.int32)
            threshold = np.empty(n_nodes, dtype=np.float64)
            child = np.empty(n_nodes, dtype=np.int32)
            value = np.zeros((n_nodes, value_dim), dtype=np.float64)
            # Renumber so siblings are consecutive; leaves self-loop.
            old_to_new = {0: 0}
            stack: list[tuple[int, int]] = [(0, 0)]
            next_free = 1
            max_depth = 0
            while stack:
                old, depth = stack.pop()
                new = old_to_new[old]
                if tree.left[old] < 0:
                    threshold[new] = np.inf
                    child[new] = new + offset
                    value[new] = tree.value[old]
                    max_depth = max(max_depth, depth)
                else:
                    left, right = int(tree.left[old]), int(tree.right[old])
                    old_to_new[left] = next_free
                    old_to_new[right] = next_free + 1
                    feature[new] = tree.feature[old]
                    threshold[new] = tree.threshold[old]
                    child[new] = next_free + offset
                    next_free += 2
                    stack.append((left, depth + 1))
                    stack.append((right, depth + 1))
            features.append(feature)
            thresholds.append(threshold)
            children.append(child)
            values.append(value)
            roots.append(offset)
            depths.append(max_depth)
            offset += n_nodes
        return cls(
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            child=np.concatenate(children),
            value=np.vstack(values),
            roots=np.asarray(roots, dtype=np.int64),
            depths=np.asarray(depths, dtype=np.int64),
            strict=strict,
        )

    # -- traversal -----------------------------------------------------------
    @staticmethod
    def _check_finite(X: np.ndarray) -> None:
        # A non-finite feature value would compare against the +inf leaf
        # threshold and walk out of a self-looping leaf into foreign nodes.
        if X.size and not np.all(np.isfinite(X)):
            raise ValueError("X contains NaN or infinite values")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """``(n_trees, n_samples)`` absolute leaf ids for every row of ``X``."""
        n = X.shape[0]
        if n == 0:
            return np.empty((self.n_trees, 0), dtype=np.int64)
        self._check_finite(X)
        leaves = native.forest_apply(
            X, self.feature, self.threshold, self.child,
            self.roots, self.depths, self.strict,
        )
        if leaves is not None:
            return leaves.astype(np.int64, copy=False)
        return self._apply_numpy(X)

    def sum_values(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, value_dim)`` sum of leaf payloads over all trees."""
        n = X.shape[0]
        if n == 0:
            return np.zeros((0, self.value_dim))
        self._check_finite(X)
        if self._value_flat is not None:
            total = native.forest_sum(
                X, self.feature, self.threshold, self.child, self._value_flat,
                self.roots, self.depths, self.strict,
            )
            if total is not None:
                return total[:, None]
        # Multi-payload fallback: walk with apply() (native kernel or threaded
        # NumPy) and accumulate tree by tree, so peak extra memory stays
        # O(n x value_dim) plus the leaf ids, instead of a
        # (n_trees, n, value_dim) gather.  Row blocks are independent and
        # accumulate trees in the same order, so the threaded accumulation is
        # bit-identical to the sequential one.
        leaves = self.apply(X)
        out = np.zeros((n, self.value_dim))

        def _sum_block(start: int, stop: int) -> None:
            block_out = out[start:stop]
            for t in range(self.n_trees):
                block_out += self.value[leaves[t, start:stop]]

        run_row_blocks(_sum_block, n)
        return out

    def _walk_rows(self, X: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Fixed-depth self-loop walk of rows ``[start, stop)``, per tree."""
        block = X[start:stop]
        n = block.shape[0]
        rows = np.arange(n)
        leaves = np.empty((self.n_trees, n), dtype=np.int64)
        for t in range(self.n_trees):
            node = np.full(n, self.roots[t], dtype=np.int64)
            for _ in range(int(self.depths[t])):
                column = block[rows, self.feature[node]]
                if self.strict:
                    go_right = column >= self.threshold[node]
                else:
                    go_right = column > self.threshold[node]
                node = self.child[node] + go_right
            leaves[t] = node
        return leaves

    def _apply_numpy(self, X: np.ndarray) -> np.ndarray:
        """NumPy fallback: self-loop walk over threaded row blocks."""
        n = X.shape[0]
        leaves = np.empty((self.n_trees, n), dtype=np.int64)

        def _apply_block(start: int, stop: int) -> None:
            leaves[:, start:stop] = self._walk_rows(X, start, stop)

        run_row_blocks(_apply_block, n)
        return leaves
