"""Principal component analysis via singular value decomposition.

The paper's novelty detector fits PCA with components selected by explained
variance (95%) and scores samples by the feature reconstruction error of the
inverse transform.  Both behaviours are provided here.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_fitted

__all__ = ["PCA"]


class PCA:
    """PCA with integer or explained-variance-ratio component selection.

    Parameters
    ----------
    n_components:
        ``None`` keeps every component, an ``int`` keeps exactly that many,
        and a ``float`` in (0, 1) keeps the smallest number of components
        whose cumulative explained variance ratio reaches that value (the
        paper uses ``0.95``).
    whiten:
        Scale the projected components to unit variance.
    """

    def __init__(self, n_components: int | float | None = None, *, whiten: bool = False) -> None:
        if isinstance(n_components, float) and not 0.0 < n_components < 1.0:
            raise ValueError("a float n_components must lie strictly between 0 and 1")
        if isinstance(n_components, (int, np.integer)) and n_components < 1:
            raise ValueError("an integer n_components must be at least 1")
        self.n_components = n_components
        self.whiten = whiten
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.singular_values_: np.ndarray | None = None
        self.n_components_: int | None = None

    # -- fitting -----------------------------------------------------------
    def fit(self, X: np.ndarray) -> "PCA":
        X = check_array(X, name="X")
        n_samples, n_features = X.shape
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # SVD of the centered data: rows of Vt are principal directions.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        denominator = max(n_samples - 1, 1)
        explained_variance = (singular_values**2) / denominator
        total_variance = explained_variance.sum()
        if total_variance <= 0.0:
            ratio = np.zeros_like(explained_variance)
        else:
            ratio = explained_variance / total_variance

        max_rank = min(n_samples, n_features)
        n_components = self._resolve_n_components(ratio, max_rank)
        self.components_ = vt[:n_components]
        self.singular_values_ = singular_values[:n_components]
        self.explained_variance_ = explained_variance[:n_components]
        self.explained_variance_ratio_ = ratio[:n_components]
        self.n_components_ = n_components
        return self

    def _resolve_n_components(self, ratio: np.ndarray, max_rank: int) -> int:
        if self.n_components is None:
            return max_rank
        if isinstance(self.n_components, float):
            cumulative = np.cumsum(ratio)
            # Smallest k whose cumulative ratio reaches the requested level.
            reached = np.flatnonzero(cumulative >= self.n_components - 1e-12)
            if reached.size == 0:
                return max_rank
            return int(reached[0]) + 1
        return int(min(self.n_components, max_rank))

    # -- transforms ----------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project samples onto the principal components."""
        check_fitted(self, "components_")
        X = check_array(X, name="X", allow_empty=True)
        projected = (X - self.mean_) @ self.components_.T
        if self.whiten:
            projected /= np.sqrt(self.explained_variance_ + 1e-12)
        return projected

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map projected samples back to the original feature space."""
        check_fitted(self, "components_")
        Z = np.asarray(Z, dtype=np.float64)
        if self.whiten:
            Z = Z * np.sqrt(self.explained_variance_ + 1e-12)
        return Z @ self.components_ + self.mean_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """Per-sample feature reconstruction error ``||x - T^-1(T(x))||^2``.

        This is the FRE anomaly score from the paper (Sec. III-D).
        """
        check_fitted(self, "components_")
        X = check_array(X, name="X", allow_empty=True)
        reconstructed = self.inverse_transform(self.transform(X))
        return np.sum((X - reconstructed) ** 2, axis=1)
