"""Dataset splitting helpers (random and stratified train/test splits)."""

from __future__ import annotations

import numpy as np

from repro.utils.random import check_random_state

__all__ = ["train_test_split", "stratified_indices"]


def stratified_indices(
    y: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, test_idx) with per-class proportional sampling.

    Every class keeps at least one sample on each side whenever it has two or
    more members, so small attack families are never dropped entirely from
    either split.
    """
    y = np.asarray(y)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for value in np.unique(y):
        idx = np.flatnonzero(y == value)
        rng.shuffle(idx)
        n_test = int(round(len(idx) * test_fraction))
        if len(idx) >= 2:
            n_test = min(max(n_test, 1), len(idx) - 1)
        else:
            n_test = 0
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train_idx = np.concatenate(train_parts) if train_parts else np.empty(0, dtype=np.int64)
    test_idx = np.concatenate(test_parts) if test_parts else np.empty(0, dtype=np.int64)
    rng.shuffle(train_idx)
    rng.shuffle(test_idx)
    return train_idx, test_idx


def train_test_split(
    *arrays: np.ndarray,
    test_size: float = 0.25,
    stratify: np.ndarray | None = None,
    random_state: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    arrays:
        Arrays sharing the same first dimension.
    test_size:
        Fraction of samples assigned to the test subset (strictly between 0 and 1).
    stratify:
        Optional label array; when given, each class is split proportionally.
    random_state:
        Seed or generator controlling the shuffling.

    Returns
    -------
    list of ndarray
        ``[a_train, a_test, b_train, b_test, ...]`` in the order the arrays
        were supplied.
    """
    if not arrays:
        raise ValueError("train_test_split requires at least one array")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be strictly between 0 and 1")
    n = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != n:
            raise ValueError("all arrays must share the same number of samples")
    rng = check_random_state(random_state)

    if stratify is not None:
        if np.asarray(stratify).shape[0] != n:
            raise ValueError("stratify must have one entry per sample")
        train_idx, test_idx = stratified_indices(np.asarray(stratify), test_size, rng)
    else:
        indices = rng.permutation(n)
        n_test = max(1, int(round(n * test_size)))
        n_test = min(n_test, n - 1) if n > 1 else n_test
        test_idx = indices[:n_test]
        train_idx = indices[n_test:]

    result: list[np.ndarray] = []
    for arr in arrays:
        result.append(arr[train_idx])
        result.append(arr[test_idx])
    return result
