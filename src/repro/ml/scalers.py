"""Feature scaling transformers."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_fitted

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but not scaled to avoid
    division by zero, matching the common library behaviour.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X, name="X")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_array(X, name="X", allow_empty=True)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the ``[0, 1]`` range based on training minima and maxima."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_array(X, name="X")
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        data_range[data_range == 0.0] = 1.0
        self.range_ = data_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "min_")
        X = check_array(X, name="X", allow_empty=True)
        if X.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.min_.shape[0]}"
            )
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "min_")
        X = check_array(X, name="X", allow_empty=True)
        return X * self.range_ + self.min_
