"""Pairwise distance computations used by K-Means, LOF and triplet mining."""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_euclidean", "pairwise_squared_euclidean"]


def pairwise_squared_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every row of ``A`` and every row of ``B``.

    Returns an ``(len(A), len(B))`` matrix.  Uses the expansion
    ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` and clips tiny negatives caused
    by floating-point cancellation.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("A and B must be 2-D arrays")
    if A.shape[1] != B.shape[1]:
        raise ValueError(
            f"feature dimensions differ: A has {A.shape[1]}, B has {B.shape[1]}"
        )
    sq_a = np.sum(A**2, axis=1)[:, None]
    sq_b = np.sum(B**2, axis=1)[None, :]
    d2 = sq_a + sq_b - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def pairwise_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Euclidean distances between every row of ``A`` and every row of ``B``."""
    return np.sqrt(pairwise_squared_euclidean(A, B))
