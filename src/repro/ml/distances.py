"""Pairwise distance computations used by K-Means, LOF, kNN and triplet mining."""

from __future__ import annotations

import numpy as np

from repro.ml.parallel import map_row_blocks

__all__ = ["pairwise_euclidean", "pairwise_squared_euclidean", "pairwise_topk"]


def _validated_pair(A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("A and B must be 2-D arrays")
    if A.shape[1] != B.shape[1]:
        raise ValueError(
            f"feature dimensions differ: A has {A.shape[1]}, B has {B.shape[1]}"
        )
    return A, B


def pairwise_squared_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every row of ``A`` and every row of ``B``.

    Returns an ``(len(A), len(B))`` matrix.  Uses the expansion
    ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` and clips tiny negatives caused
    by floating-point cancellation.
    """
    A, B = _validated_pair(A, B)
    sq_a = np.sum(A**2, axis=1)[:, None]
    sq_b = np.sum(B**2, axis=1)[None, :]
    d2 = sq_a + sq_b - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def pairwise_topk(
    A: np.ndarray,
    B: np.ndarray,
    k: int,
    *,
    block_size: int = 1024,
    exclude_self: bool = False,
    squared: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of the ``k`` nearest rows of ``B`` per row of ``A``.

    The distance block is computed blockwise over the rows of ``A`` so peak
    extra memory is O(``block_size`` x ``len(B)``) floats (plus the
    ``(len(A), k)`` outputs) instead of the O(``len(A)`` x ``len(B)``) full
    matrix.  Within a block the ``k`` smallest entries per row are selected
    with ``np.argpartition`` — O(``len(B)``) per row — and only those ``k``
    are sorted, so the per-row cost is O(``len(B)`` + ``k`` log ``k``) rather
    than the O(``len(B)`` log ``len(B)``) of a full ``argsort``.

    Parameters
    ----------
    A, B:
        ``(n, d)`` query rows and ``(m, d)`` reference rows.
    k:
        Number of neighbours; ``1 <= k <= m`` (``m - 1`` with
        ``exclude_self``).
    block_size:
        Number of query rows processed per block.
    exclude_self:
        When ``A`` *is* ``B`` (same rows, same order), exclude the trivial
        zero-distance self match of every row.
    squared:
        Return squared Euclidean distances instead of Euclidean ones.

    Returns
    -------
    (indices, distances):
        Two ``(len(A), k)`` arrays, sorted by increasing distance per row.
    """
    A, B = _validated_pair(A, B)
    m = B.shape[0]
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    if exclude_self and A.shape[0] != m:
        raise ValueError("exclude_self requires A and B to have the same rows")
    max_k = m - 1 if exclude_self else m
    if not 1 <= k <= max_k:
        raise ValueError(f"k must be in [1, {max_k}], got {k}")

    n = A.shape[0]
    sq_b = np.sum(B**2, axis=1)[None, :]
    out_idx = np.empty((n, k), dtype=np.int64)
    out_dist = np.empty((n, k), dtype=np.float64)

    def _topk_block(start: int, stop: int) -> None:
        block = A[start:stop]
        d2 = np.sum(block**2, axis=1)[:, None] + sq_b - 2.0 * (block @ B.T)
        np.maximum(d2, 0.0, out=d2)
        if exclude_self:
            d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
        if k == 1:
            # argmin keeps the first-occurrence tie-break of a plain argmin.
            idx = d2.argmin(axis=1)
            out_idx[start:stop, 0] = idx
            out_dist[start:stop, 0] = d2[np.arange(stop - start), idx]
        elif k < m:
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
            part_dist = np.take_along_axis(d2, part, axis=1)
            order = np.argsort(part_dist, axis=1)
            out_idx[start:stop] = np.take_along_axis(part, order, axis=1)
            out_dist[start:stop] = np.take_along_axis(part_dist, order, axis=1)
        else:
            order = np.argsort(d2, axis=1)
            out_idx[start:stop] = order
            out_dist[start:stop] = np.take_along_axis(d2, order, axis=1)

    # Blocks are defined by block_size alone (so the per-block arithmetic is
    # unchanged) and write disjoint output slices; running them on the shared
    # thread pool is therefore bit-identical to the sequential loop.
    bounds = [
        (start, min(start + block_size, n)) for start in range(0, n, block_size)
    ]
    map_row_blocks(_topk_block, bounds)
    if not squared:
        np.sqrt(out_dist, out=out_dist)
    return out_idx, out_dist


def pairwise_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Euclidean distances between every row of ``A`` and every row of ``B``."""
    return np.sqrt(pairwise_squared_euclidean(A, B))
