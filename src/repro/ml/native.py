"""Optional native (C) kernels for batch tree-ensemble traversal.

The pure-NumPy frontier traversal in :mod:`repro.ml.flat_tree` is bound by
the number of NumPy passes per tree level (~7 array operations per level per
(tree, row) pair).  A tiny C kernel removes that floor: the compiled walk
needs ~2 loads per node step, keeps each tree's node tables L1-resident by
iterating trees in the outer loop, and walks four rows per tree concurrently
(manual 4-way interleave) so the dependent node->child load chains of
independent rows overlap.  On a 10k-sample batch this is roughly an order of
magnitude faster than both the NumPy frontier and the recursive reference.

When the toolchain supports OpenMP (probed at compile time with
``-fopenmp``), the kernels additionally parallelize over *rows*: the batch is
split into one contiguous row range per thread, each thread walking all trees
for its rows.  Because every row's leaf-payload accumulation still runs over
trees in the same order, the parallel result is **bit-identical** to the
single-thread walk — threading changes scheduling, not arithmetic.
``REPRO_NUM_THREADS`` caps the thread count (default: all CPUs); toolchains
without OpenMP compile the same source sequentially and simply ignore the
requested thread count.

The kernel is compiled on first use with the system C compiler (``$CC`` when
set, else ``cc``) into a cache directory next to this module and loaded
through :mod:`ctypes`.  If no compiler is available, compilation fails, or
the environment variable ``REPRO_DISABLE_NATIVE`` is set to a non-empty
value, every entry point returns ``None`` and callers fall back to the NumPy
implementation — the native path is a pure accelerator, never a requirement.
A failed compilation is never silent to a debugger: the captured compiler
stderr (or spawn error) is kept in :data:`last_compile_error` and logged at
DEBUG level, so "why is scoring slow?" is answerable from a log instead of a
rebuild.

Both kernels operate on the :class:`repro.ml.flat_tree.FlatForest` layout:
consecutive children (``right = left + 1``), self-looping leaves with a
``+inf`` threshold (so a fixed ``depth``-iteration walk is branch-free and
needs no leaf test), and node ids that are absolute into the concatenated
per-tree arrays.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.ml.parallel import get_num_threads

__all__ = [
    "available",
    "forest_sum",
    "forest_apply",
    "last_compile_error",
    "openmp_enabled",
]

logger = logging.getLogger(__name__)

_C_SOURCE = r"""
#include <stdint.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* Walk every (tree, row) pair of rows [lo, hi) to its leaf.  Trees iterate
 * in the outer loop so each tree's node tables stay cache-hot across the
 * range; rows advance four at a time so the dependent load chains of
 * independent rows overlap.  Leaves self-loop (threshold = +inf), hence the
 * fixed depth-count walk. */
#define WALK_ROWS(cmp_op, EMIT, lo, hi) \
    for (int64_t t = 0; t < n_trees; ++t) { \
        const int32_t root = (int32_t)roots[t]; \
        const int64_t depth = depths[t]; \
        int64_t i = (lo); \
        for (; i + 4 <= (hi); i += 4) { \
            const double *r0 = X + (i + 0) * d, *r1 = X + (i + 1) * d; \
            const double *r2 = X + (i + 2) * d, *r3 = X + (i + 3) * d; \
            int32_t n0 = root, n1 = root, n2 = root, n3 = root; \
            for (int64_t l = 0; l < depth; ++l) { \
                n0 = child[n0] + (r0[feature[n0]] cmp_op threshold[n0]); \
                n1 = child[n1] + (r1[feature[n1]] cmp_op threshold[n1]); \
                n2 = child[n2] + (r2[feature[n2]] cmp_op threshold[n2]); \
                n3 = child[n3] + (r3[feature[n3]] cmp_op threshold[n3]); \
            } \
            EMIT(i + 0, n0); EMIT(i + 1, n1); EMIT(i + 2, n2); EMIT(i + 3, n3); \
        } \
        for (; i < (hi); ++i) { \
            const double *row = X + i * d; \
            int32_t node = root; \
            for (int64_t l = 0; l < depth; ++l) \
                node = child[node] + (row[feature[node]] cmp_op threshold[node]); \
            EMIT(i, node); \
        } \
    }

/* Row-parallel dispatch: each thread owns one contiguous row range and
 * writes only into that range, so there are no races and no cross-thread
 * reductions — results are bit-identical to the sequential walk. */
#ifdef _OPENMP
#define WALK_PARALLEL(cmp_op, EMIT) \
    if (n_threads > 1) { \
        _Pragma("omp parallel num_threads((int)n_threads)") \
        { \
            const int64_t nt = omp_get_num_threads(); \
            const int64_t id = omp_get_thread_num(); \
            const int64_t lo = n * id / nt, hi = n * (id + 1) / nt; \
            WALK_ROWS(cmp_op, EMIT, lo, hi) \
        } \
    } else { \
        WALK_ROWS(cmp_op, EMIT, 0, n) \
    }
#else
#define WALK_PARALLEL(cmp_op, EMIT) \
    (void)n_threads; \
    WALK_ROWS(cmp_op, EMIT, 0, n)
#endif

/* 1 when compiled with OpenMP (row-parallel capable), 0 otherwise. */
int64_t repro_openmp_enabled(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* Accumulate the scalar leaf payload of every tree into out[i]. */
void forest_sum(const double *X, int64_t n, int64_t d,
                const int32_t *feature, const double *threshold,
                const int32_t *child, const double *value,
                const int64_t *roots, const int64_t *depths, int64_t n_trees,
                int strict, int64_t n_threads, double *out)
{
#define EMIT_SUM(i, node) out[i] += value[node]
    if (strict) { WALK_PARALLEL(>=, EMIT_SUM) } else { WALK_PARALLEL(>, EMIT_SUM) }
#undef EMIT_SUM
}

/* Write the absolute leaf id of every (tree, row) pair, tree-major. */
void forest_apply(const double *X, int64_t n, int64_t d,
                  const int32_t *feature, const double *threshold,
                  const int32_t *child,
                  const int64_t *roots, const int64_t *depths, int64_t n_trees,
                  int strict, int64_t n_threads, int32_t *out_leaf)
{
#define EMIT_LEAF(i, node) out_leaf[t * n + (i)] = node
    if (strict) { WALK_PARALLEL(>=, EMIT_LEAF) } else { WALK_PARALLEL(>, EMIT_LEAF) }
#undef EMIT_LEAF
}
"""

_CACHE_DIR = Path(__file__).resolve().parent / "_native_cache"

#: Row batches smaller than this run single-threaded even when more threads
#: are allowed — the per-thread fork/join overhead would dominate.
MIN_PARALLEL_ROWS = 2048

_lib: ctypes.CDLL | None = None
_load_attempted = False
_openmp = False

#: Diagnostics of the most recent failed compile/load attempt (``None`` when
#: the native path is healthy or was never tried).  Surfaced so a silent
#: fallback to the slow path is diagnosable without rebuilding.
last_compile_error: str | None = None


def _compiler() -> str:
    """The C compiler to invoke: ``$CC`` when set, else ``cc``."""
    return os.environ.get("CC") or "cc"


def _try_compile(cc: str, src_path: Path, out_path: Path, openmp: bool) -> str | None:
    """Compile the kernel; return ``None`` on success, the error text on failure."""
    cmd = [cc, "-O3", "-shared", "-fPIC"]
    if openmp:
        cmd.append("-fopenmp")
    cmd += ["-o", str(out_path), str(src_path)]
    try:
        result = subprocess.run(cmd, capture_output=True, timeout=120)
    except (OSError, subprocess.SubprocessError) as exc:
        return f"{' '.join(cmd)}: {exc}"
    if result.returncode != 0:
        stderr = result.stderr.decode(errors="replace").strip()
        return f"{' '.join(cmd)} (exit {result.returncode}):\n{stderr}"
    return None


def _compile_and_load() -> ctypes.CDLL | None:
    global last_compile_error
    cc = _compiler()
    # The compiler identity participates in the cache key: switching $CC must
    # not silently reuse an artifact built by a different toolchain.
    digest = hashlib.sha256(f"{cc}\n{_C_SOURCE}".encode()).hexdigest()[:16]
    lib_path = _CACHE_DIR / f"repro_tree_{digest}.so"
    if not lib_path.exists():
        _CACHE_DIR.mkdir(parents=True, exist_ok=True)
        src_path = _CACHE_DIR / f"repro_tree_{digest}.c"
        src_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
            dir=_CACHE_DIR, suffix=".so", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        # Probe OpenMP first; a toolchain without it still gets the (slower,
        # sequential) kernel rather than no kernel at all.
        omp_error = _try_compile(cc, src_path, tmp_path, openmp=True)
        if omp_error is not None:
            logger.debug("OpenMP compile failed, retrying without: %s", omp_error)
            plain_error = _try_compile(cc, src_path, tmp_path, openmp=False)
            if plain_error is not None:
                tmp_path.unlink(missing_ok=True)
                last_compile_error = plain_error
                logger.debug("native kernel compile failed: %s", plain_error)
                return None
        tmp_path.replace(lib_path)  # atomic: concurrent imports race safely
    lib = ctypes.CDLL(str(lib_path))

    from numpy.ctypeslib import ndpointer

    f64 = ndpointer(np.float64, flags="C_CONTIGUOUS")
    i32 = ndpointer(np.int32, flags="C_CONTIGUOUS")
    i64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
    lib.repro_openmp_enabled.argtypes = []
    lib.repro_openmp_enabled.restype = ctypes.c_int64
    lib.forest_sum.argtypes = [
        f64, ctypes.c_int64, ctypes.c_int64,
        i32, f64, i32, f64,
        i64, i64, ctypes.c_int64, ctypes.c_int, ctypes.c_int64, f64,
    ]
    lib.forest_sum.restype = None
    lib.forest_apply.argtypes = [
        f64, ctypes.c_int64, ctypes.c_int64,
        i32, f64, i32,
        i64, i64, ctypes.c_int64, ctypes.c_int, ctypes.c_int64,
        ndpointer(np.int32, flags=("C_CONTIGUOUS", "WRITEABLE")),
    ]
    lib.forest_apply.restype = None
    last_compile_error = None
    return lib


def _get_lib() -> ctypes.CDLL | None:
    global _lib, _load_attempted, _openmp, last_compile_error
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        return None
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _compile_and_load()
        except Exception as exc:  # defensive: any load failure means fallback
            _lib = None
            last_compile_error = f"{type(exc).__name__}: {exc}"
            logger.debug("native kernel load failed: %s", last_compile_error)
        _openmp = bool(_lib is not None and _lib.repro_openmp_enabled())
    return _lib


def available() -> bool:
    """Whether the compiled kernels can be used in this environment."""
    return _get_lib() is not None


def openmp_enabled() -> bool:
    """Whether the loaded kernel was compiled with OpenMP (row-parallel)."""
    return _get_lib() is not None and _openmp


def _effective_threads(n_rows: int, n_threads: int | None) -> int:
    if not _openmp:
        return 1
    if n_threads is None:
        n_threads = get_num_threads()
    if n_rows < MIN_PARALLEL_ROWS:
        return 1
    return max(1, min(n_threads, n_rows))


def forest_sum(
    X: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    child: np.ndarray,
    value_flat: np.ndarray,
    roots: np.ndarray,
    depths: np.ndarray,
    strict: bool,
    n_threads: int | None = None,
) -> np.ndarray | None:
    """Sum of scalar leaf payloads over all trees, or ``None`` if unavailable.

    ``n_threads`` caps the OpenMP row parallelism (``None`` reads
    ``REPRO_NUM_THREADS``); any thread count returns bit-identical sums.
    """
    lib = _get_lib()
    if lib is None:
        return None
    X = np.ascontiguousarray(X, dtype=np.float64)
    out = np.zeros(X.shape[0], dtype=np.float64)
    lib.forest_sum(
        X, X.shape[0], X.shape[1],
        feature, threshold, child, value_flat,
        roots, depths, roots.shape[0], int(strict),
        _effective_threads(X.shape[0], n_threads), out,
    )
    return out


def forest_apply(
    X: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    child: np.ndarray,
    roots: np.ndarray,
    depths: np.ndarray,
    strict: bool,
    n_threads: int | None = None,
) -> np.ndarray | None:
    """``(n_trees, n_samples)`` absolute leaf ids, or ``None`` if unavailable.

    ``n_threads`` caps the OpenMP row parallelism (``None`` reads
    ``REPRO_NUM_THREADS``); leaf ids are identical for any thread count.
    """
    lib = _get_lib()
    if lib is None:
        return None
    X = np.ascontiguousarray(X, dtype=np.float64)
    out = np.empty((roots.shape[0], X.shape[0]), dtype=np.int32)
    lib.forest_apply(
        X, X.shape[0], X.shape[1],
        feature, threshold, child,
        roots, depths, roots.shape[0], int(strict),
        _effective_threads(X.shape[0], n_threads), out,
    )
    return out
