"""Optional native (C) kernels for batch tree-ensemble traversal.

The pure-NumPy frontier traversal in :mod:`repro.ml.flat_tree` is bound by
the number of NumPy passes per tree level (~7 array operations per level per
(tree, row) pair).  A tiny C kernel removes that floor: the compiled walk
needs ~2 loads per node step, keeps each tree's node tables L1-resident by
iterating trees in the outer loop, and walks four rows per tree concurrently
(manual 4-way interleave) so the dependent node->child load chains of
independent rows overlap.  On a 10k-sample batch this is roughly an order of
magnitude faster than both the NumPy frontier and the recursive reference.

The kernel is compiled on first use with the system C compiler (``cc``) into
a cache directory next to this module and loaded through :mod:`ctypes`.  If
no compiler is available, compilation fails, or the environment variable
``REPRO_DISABLE_NATIVE`` is set to a non-empty value, every entry point
returns ``None`` and callers fall back to the NumPy implementation — the
native path is a pure accelerator, never a requirement.

Both kernels operate on the :class:`repro.ml.flat_tree.FlatForest` layout:
consecutive children (``right = left + 1``), self-looping leaves with a
``+inf`` threshold (so a fixed ``depth``-iteration walk is branch-free and
needs no leaf test), and node ids that are absolute into the concatenated
per-tree arrays.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["available", "forest_sum", "forest_apply"]

_C_SOURCE = r"""
#include <stdint.h>

/* Walk every (tree, row) pair to its leaf.  Trees iterate in the outer loop
 * so each tree's node tables stay cache-hot across all rows; rows advance
 * four at a time so the dependent load chains of independent rows overlap.
 * Leaves self-loop (threshold = +inf), hence the fixed depth-count walk. */
#define WALK_BODY(cmp_op, EMIT) \
    for (int64_t t = 0; t < n_trees; ++t) { \
        const int32_t root = (int32_t)roots[t]; \
        const int64_t depth = depths[t]; \
        int64_t i = 0; \
        for (; i + 4 <= n; i += 4) { \
            const double *r0 = X + (i + 0) * d, *r1 = X + (i + 1) * d; \
            const double *r2 = X + (i + 2) * d, *r3 = X + (i + 3) * d; \
            int32_t n0 = root, n1 = root, n2 = root, n3 = root; \
            for (int64_t l = 0; l < depth; ++l) { \
                n0 = child[n0] + (r0[feature[n0]] cmp_op threshold[n0]); \
                n1 = child[n1] + (r1[feature[n1]] cmp_op threshold[n1]); \
                n2 = child[n2] + (r2[feature[n2]] cmp_op threshold[n2]); \
                n3 = child[n3] + (r3[feature[n3]] cmp_op threshold[n3]); \
            } \
            EMIT(i + 0, n0); EMIT(i + 1, n1); EMIT(i + 2, n2); EMIT(i + 3, n3); \
        } \
        for (; i < n; ++i) { \
            const double *row = X + i * d; \
            int32_t node = root; \
            for (int64_t l = 0; l < depth; ++l) \
                node = child[node] + (row[feature[node]] cmp_op threshold[node]); \
            EMIT(i, node); \
        } \
    }

/* Accumulate the scalar leaf payload of every tree into out[i]. */
void forest_sum(const double *X, int64_t n, int64_t d,
                const int32_t *feature, const double *threshold,
                const int32_t *child, const double *value,
                const int64_t *roots, const int64_t *depths, int64_t n_trees,
                int strict, double *out)
{
#define EMIT_SUM(i, node) out[i] += value[node]
    if (strict) { WALK_BODY(>=, EMIT_SUM) } else { WALK_BODY(>, EMIT_SUM) }
#undef EMIT_SUM
}

/* Write the absolute leaf id of every (tree, row) pair, tree-major. */
void forest_apply(const double *X, int64_t n, int64_t d,
                  const int32_t *feature, const double *threshold,
                  const int32_t *child,
                  const int64_t *roots, const int64_t *depths, int64_t n_trees,
                  int strict, int32_t *out_leaf)
{
#define EMIT_LEAF(i, node) out_leaf[t * n + (i)] = node
    if (strict) { WALK_BODY(>=, EMIT_LEAF) } else { WALK_BODY(>, EMIT_LEAF) }
#undef EMIT_LEAF
}
"""

_CACHE_DIR = Path(__file__).resolve().parent / "_native_cache"

_lib: ctypes.CDLL | None = None
_load_attempted = False


def _compile_and_load() -> ctypes.CDLL | None:
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    lib_path = _CACHE_DIR / f"repro_tree_{digest}.so"
    if not lib_path.exists():
        _CACHE_DIR.mkdir(parents=True, exist_ok=True)
        src_path = _CACHE_DIR / f"repro_tree_{digest}.c"
        src_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
            dir=_CACHE_DIR, suffix=".so", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        result = subprocess.run(
            ["cc", "-O3", "-shared", "-fPIC", "-o", str(tmp_path), str(src_path)],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            return None
        tmp_path.replace(lib_path)  # atomic: concurrent imports race safely
    lib = ctypes.CDLL(str(lib_path))

    from numpy.ctypeslib import ndpointer

    f64 = ndpointer(np.float64, flags="C_CONTIGUOUS")
    i32 = ndpointer(np.int32, flags="C_CONTIGUOUS")
    i64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
    lib.forest_sum.argtypes = [
        f64, ctypes.c_int64, ctypes.c_int64,
        i32, f64, i32, f64,
        i64, i64, ctypes.c_int64, ctypes.c_int, f64,
    ]
    lib.forest_sum.restype = None
    lib.forest_apply.argtypes = [
        f64, ctypes.c_int64, ctypes.c_int64,
        i32, f64, i32,
        i64, i64, ctypes.c_int64, ctypes.c_int,
        ndpointer(np.int32, flags=("C_CONTIGUOUS", "WRITEABLE")),
    ]
    lib.forest_apply.restype = None
    return lib


def _get_lib() -> ctypes.CDLL | None:
    global _lib, _load_attempted
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        return None
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _compile_and_load()
        except Exception:
            _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled kernels can be used in this environment."""
    return _get_lib() is not None


def forest_sum(
    X: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    child: np.ndarray,
    value_flat: np.ndarray,
    roots: np.ndarray,
    depths: np.ndarray,
    strict: bool,
) -> np.ndarray | None:
    """Sum of scalar leaf payloads over all trees, or ``None`` if unavailable."""
    lib = _get_lib()
    if lib is None:
        return None
    X = np.ascontiguousarray(X, dtype=np.float64)
    out = np.zeros(X.shape[0], dtype=np.float64)
    lib.forest_sum(
        X, X.shape[0], X.shape[1],
        feature, threshold, child, value_flat,
        roots, depths, roots.shape[0], int(strict), out,
    )
    return out


def forest_apply(
    X: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    child: np.ndarray,
    roots: np.ndarray,
    depths: np.ndarray,
    strict: bool,
) -> np.ndarray | None:
    """``(n_trees, n_samples)`` absolute leaf ids, or ``None`` if unavailable."""
    lib = _get_lib()
    if lib is None:
        return None
    X = np.ascontiguousarray(X, dtype=np.float64)
    out = np.empty((roots.shape[0], X.shape[0]), dtype=np.int32)
    lib.forest_apply(
        X, X.shape[0], X.shape[1],
        feature, threshold, child,
        roots, depths, roots.shape[0], int(strict), out,
    )
    return out
