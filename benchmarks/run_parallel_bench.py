"""Multi-core throughput benchmark: threaded kernels + sharded serving.

Measures the parallelism layer end to end and records the numbers under the
``"parallel"`` key of ``BENCH_inference.json`` (the sequential engine keeps
its own ``"results"`` section) so ``check_bench_trend.py`` can fail the build
on a multi-core throughput regression just like it does for single-core
inference:

* ``IsolationForest.score_samples`` with the kernels capped at one thread
  versus all allowed threads (``REPRO_NUM_THREADS``) — the OpenMP/thread-pool
  row-block speedup in isolation;
* ``DetectionService.run`` versus ``ShardedDetectionService.run`` (thread
  workers) over the same batch stream — the serving-layer fan-out, reported
  with ``speedup_vs_sequential``.

On a single-core machine the speedups hover around 1.0x; the trend check
compares like to like across runs of the same machine, so the entries remain
meaningful guards either way.

Usage::

    PYTHONPATH=src python benchmarks/run_parallel_bench.py \
        [--n-rows 20000] [--n-features 16] [--workers 0 (= auto)] \
        [--output BENCH_inference.json]
"""

from __future__ import annotations

import argparse
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro._version import __version__
from repro.ml import native
from repro.novelty import IsolationForest
from repro.serve.parallel import ShardedDetectionService
from repro.serve.service import DetectionService
from repro.utils.timing import Timer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_inference.json"


@contextmanager
def _thread_cap(n_threads: int) -> Iterator[None]:
    """Temporarily pin ``REPRO_NUM_THREADS`` (both kernel backends honor it)."""
    previous = os.environ.get("REPRO_NUM_THREADS")
    os.environ["REPRO_NUM_THREADS"] = str(n_threads)
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_NUM_THREADS"]
        else:
            os.environ["REPRO_NUM_THREADS"] = previous


def _best_rate(fn: Callable[[], object], n_items: int, n_repeats: int) -> float:
    best = 0.0
    for _ in range(max(n_repeats, 1)):
        timer = Timer()
        with timer:
            fn()
        best = max(best, timer.throughput(n_items))
    return best


def run_bench(
    *,
    n_rows: int = 20_000,
    n_features: int = 16,
    n_workers: int = 0,
    batch_size: int = 512,
    n_repeats: int = 3,
    seed: int = 0,
) -> dict[str, object]:
    """Run the parallel throughput suite; returns the ``"parallel"`` payload."""
    cpu_count = os.cpu_count() or 1
    if n_workers < 1:
        n_workers = max(2, min(4, cpu_count))
    rng = np.random.default_rng(seed)
    train = rng.normal(size=(2000, n_features))
    X = rng.normal(size=(n_rows, n_features))
    detector = IsolationForest(
        n_estimators=50, max_samples=256, random_state=seed
    ).fit(train)
    batches = [X[start : start + batch_size] for start in range(0, n_rows, batch_size)]

    results: dict[str, object] = {}

    with _thread_cap(1):
        kernel_seq = _best_rate(lambda: detector.score_samples(X), n_rows, n_repeats)
    with _thread_cap(n_workers):
        kernel_par = _best_rate(lambda: detector.score_samples(X), n_rows, n_repeats)
    results["IsolationForest.score_samples[threads=1]"] = {
        "samples_per_sec": kernel_seq,
    }
    results[f"IsolationForest.score_samples[threads={n_workers}]"] = {
        "samples_per_sec": kernel_par,
        "speedup_vs_sequential": kernel_par / kernel_seq if kernel_seq > 0 else 0.0,
    }

    def _run_sequential() -> None:
        DetectionService(detector, threshold="auto").run(batches)

    def _run_sharded() -> None:
        ShardedDetectionService(
            detector, n_workers=n_workers, mode="thread", threshold="auto"
        ).run(batches)

    service_seq = _best_rate(_run_sequential, n_rows, n_repeats)
    service_par = _best_rate(_run_sharded, n_rows, n_repeats)
    results["DetectionService.run[iforest]"] = {"samples_per_sec": service_seq}
    results[f"ShardedDetectionService.run[iforest,thread,w={n_workers}]"] = {
        "samples_per_sec": service_par,
        "speedup_vs_sequential": service_par / service_seq if service_seq > 0 else 0.0,
    }

    return {
        "benchmark": "parallel_throughput",
        "version": __version__,
        "config": {
            "n_rows": n_rows,
            "n_features": n_features,
            "n_workers": n_workers,
            "batch_size": batch_size,
            "n_repeats": n_repeats,
            "seed": seed,
            "cpu_count": cpu_count,
            "native_kernels": native.available(),
            "openmp": native.openmp_enabled(),
        },
        "results": results,
    }


def write_report(payload: dict[str, object], output: Path = DEFAULT_OUTPUT) -> Path:
    """Merge the parallel payload into the benchmark file's ``parallel`` key.

    The sequential inference numbers under ``"results"`` are left untouched,
    so either benchmark can be refreshed independently.
    """
    output = Path(output)
    document: dict[str, object] = {}
    if output.exists():
        document = json.loads(output.read_text())
    document["parallel"] = payload
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return output


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-rows", type=int, default=20_000)
    parser.add_argument("--n-features", type=int, default=16)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker/thread count (0 = auto: min(4, cpus), at least 2)",
    )
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--n-repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if min(args.n_rows, args.n_features, args.batch_size, args.n_repeats) < 1:
        parser.error("--n-rows, --n-features, --batch-size, --n-repeats must be >= 1")
    payload = run_bench(
        n_rows=args.n_rows,
        n_features=args.n_features,
        n_workers=args.workers,
        batch_size=args.batch_size,
        n_repeats=args.n_repeats,
        seed=args.seed,
    )
    path = write_report(payload, args.output)
    for name, entry in payload["results"].items():
        line = f"{name:55s} {entry['samples_per_sec']:>12.0f} samples/s"
        if "speedup_vs_sequential" in entry:
            line += f"  ({entry['speedup_vs_sequential']:.2f}x vs sequential)"
        print(line)
    print(f"[parallel section written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
