"""Pytest configuration for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling bench_config module importable when pytest is invoked from
# the repository root (benchmarks/ is not a package).
_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench``.

    The default addopts (``-m 'not bench'``) then keep the tier-1 run fast;
    ``pytest benchmarks -m bench`` runs the benchmark suite.  Tests that
    explicitly carry the ``tier1`` marker are exempt: they are cheap tooling
    guards (syntax/trend-check self-tests) that must run in the default
    tier-1 pass so a broken bench writer cannot land unnoticed.
    """
    for item in items:
        if str(item.fspath).startswith(str(_BENCH_DIR)) and not item.get_closest_marker(
            "tier1"
        ):
            item.add_marker(pytest.mark.bench)
