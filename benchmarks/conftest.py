"""Pytest configuration for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling bench_config module importable when pytest is invoked from
# the repository root (benchmarks/ is not a package).
_BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(_BENCH_DIR))


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench``.

    The default addopts (``-m 'not bench'``) then keep the tier-1 run fast;
    ``pytest benchmarks -m bench`` runs the benchmark suite.
    """
    for item in items:
        if str(item.fspath).startswith(str(_BENCH_DIR)):
            item.add_marker(pytest.mark.bench)
