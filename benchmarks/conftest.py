"""Pytest configuration for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling bench_config module importable when pytest is invoked from
# the repository root (benchmarks/ is not a package).
sys.path.insert(0, str(Path(__file__).resolve().parent))
