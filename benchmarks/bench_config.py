"""Shared configuration and result recording for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper via the
runners in :mod:`repro.experiments`.  The scale is controlled by the
``REPRO_BENCH_PROFILE`` environment variable:

* ``quick``   — tiny runs for CI smoke checks,
* ``default`` — the standard profile (a few minutes total on a laptop CPU),
* ``paper``   — closest to the paper's setup that is practical on CPU.

Formatted result tables are printed and also written to
``benchmarks/results/<name>.txt`` so they can be inspected after the run and
are the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_PROFILES = {
    "quick": ExperimentConfig(
        datasets=("wustl_iiot", "unsw_nb15"),
        scale=0.002,
        epochs=3,
        n_experiences_override=2,
    ),
    "default": ExperimentConfig(),
    "paper": ExperimentConfig.paper(),
}


def bench_config() -> ExperimentConfig:
    """The experiment configuration selected by ``REPRO_BENCH_PROFILE``."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", "default").lower()
    if profile not in _PROFILES:
        raise KeyError(
            f"unknown REPRO_BENCH_PROFILE {profile!r}; choose from {sorted(_PROFILES)}"
        )
    return _PROFILES[profile]


def fig1_config() -> ExperimentConfig:
    """Fig. 1 trains per-dataset supervised tree ensembles, which dominate the
    benchmark runtime; it therefore runs at a reduced scale."""
    base = bench_config()
    return ExperimentConfig(
        datasets=base.datasets,
        scale=min(base.scale, 0.002),
        seed=base.seed,
        epochs=base.epochs,
    )


def record(name: str, text: str) -> None:
    """Print a formatted result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
