"""Tier-1 tooling guards for the benchmark harness (no timing involved).

These run in the default test pass (the ``tier1`` marker exempts them from
the automatic ``bench`` marking — see ``conftest.py``): a bench writer with
a syntax error, or a committed ``BENCH_inference.json`` the trend checker
cannot read back, must fail the build *before* anyone tries to measure
anything.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from check_bench_trend import main as trend_main

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.tier1


def test_compileall_src():
    """Every module under src/ must at least compile (catches syntax errors)."""
    result = subprocess.run(
        [sys.executable, "-m", "compileall", "-q", str(REPO_ROOT / "src")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_compileall_benchmarks():
    """The bench writers themselves must compile — they are not imported by
    tier-1 otherwise, so a broken runner could land silently."""
    result = subprocess.run(
        [sys.executable, "-m", "compileall", "-q", str(REPO_ROOT / "benchmarks")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_trend_check_fresh_self_test(capsys):
    """``--fresh <baseline>`` must compare the committed file against itself
    cleanly: every section parses, no entry regresses, exit code 0."""
    baseline = REPO_ROOT / "BENCH_inference.json"
    assert trend_main(["--baseline", str(baseline), "--fresh", str(baseline)]) == 0
    assert "trend OK" in capsys.readouterr().out
