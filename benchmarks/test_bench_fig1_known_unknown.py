"""Benchmark: regenerate Fig. 1 (supervised ML-IDS on known vs. unknown attacks).

The paper's shape to reproduce: every supervised model scores high on attack
families it was trained on and drops sharply on families it has never seen.
"""

from __future__ import annotations

import numpy as np
from bench_config import fig1_config, record

from repro.experiments import format_fig1, run_fig1


def test_bench_fig1_known_unknown(benchmark):
    config = fig1_config()
    rows = benchmark.pedantic(lambda: run_fig1(config), rounds=1, iterations=1)
    record("fig1_known_unknown", format_fig1(rows))

    known = np.array([row["known_accuracy"] for row in rows])
    unknown = np.array([row["unknown_accuracy"] for row in rows])
    # Shape check: on average the supervised models lose accuracy on unknown
    # attacks (the motivating observation of the paper).
    assert known.mean() > unknown.mean()
    assert known.mean() > 75.0
