"""Fault-tolerance overhead benchmark: what the safety net costs when idle.

The fault layer (:mod:`repro.serve.faults`) sits on the serving hot path:
every batch pays the poison-row scan, every event pays the resilient-sink
wrapper, every registry I/O pays the retry wrapper, and every service start
pays the recovery scan.  Each of those must stay cheap — a safety net that
halves throughput would just get turned off.  This benchmark pins the costs
under the ``"faults"`` key of ``BENCH_inference.json`` so
``check_bench_trend.py`` fails the build when any of them regresses, exactly
as it does for the other serving layers:

* ``process_batch[clean]`` — full service scoring of a clean batch with the
  always-on quarantine scan (``overhead_vs_raw_score`` makes the cost of
  service bookkeeping + scan explicit against bare ``score_samples``);
* ``process_batch[5% poison]`` — the same batch with 5% NaN rows, i.e. the
  divert path: mask, emit ``quarantined_rows``, compact, score survivors;
* ``resilient_sink.emit`` — events per second through the
  :class:`~repro.serve.faults.ResilientSink` wrapper around a no-op sink;
* ``call_with_retry[success]`` — the success-path cost of the retry wrapper
  that guards every registry read/write;
* ``registry_recovery_scan[v=N]`` — a cold :class:`ModelRegistry` start
  over ``N`` intact versions (manifest + artifact-checksum verification),
  reported as versions per second.

Usage::

    PYTHONPATH=src python benchmarks/run_faults_bench.py \
        [--batch 4096] [--n-features 16] [--versions 4] \
        [--output BENCH_inference.json]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.novelty import IsolationForest
from repro.serve.faults import ResilientSink, call_with_retry
from repro.serve.registry import ModelRegistry
from repro.serve.service import DetectionService
from run_lifecycle_bench import DEFAULT_OUTPUT, _best_time, write_report

__all__ = ["run_bench", "write_report", "DEFAULT_OUTPUT", "main"]


class _NullSink:
    def emit(self, event: object) -> None:
        pass

    def close(self) -> None:
        pass


def run_bench(
    *,
    batch: int = 4096,
    n_features: int = 16,
    n_versions: int = 4,
    n_repeats: int = 3,
    seed: int = 0,
) -> dict[str, object]:
    """Run the fault-overhead suite; returns the ``"faults"`` payload."""
    rng = np.random.default_rng(seed)
    train = rng.normal(size=(2000, n_features))
    detector = IsolationForest(
        n_estimators=50, max_samples=256, random_state=seed
    ).fit(train)
    clean = rng.normal(size=(batch, n_features))
    poisoned = clean.copy()
    poison_rows = rng.choice(batch, size=max(batch // 20, 1), replace=False)
    poisoned[poison_rows, 0] = np.nan

    results: dict[str, object] = {}

    raw_s = _best_time(lambda: detector.score_samples(clean), n_repeats)
    service = DetectionService(detector, threshold="auto", sinks=[_NullSink()])
    clean_s = _best_time(lambda: service.process_batch(clean), n_repeats)
    results["process_batch[clean]"] = {
        "samples_per_sec": batch / clean_s,
        "batch_latency_s": clean_s,
        "overhead_vs_raw_score": clean_s / raw_s,
    }

    poison_service = DetectionService(
        detector, threshold="auto", sinks=[_NullSink()]
    )
    poison_s = _best_time(lambda: poison_service.process_batch(poisoned), n_repeats)
    results["process_batch[5% poison]"] = {
        "samples_per_sec": batch / poison_s,
        "batch_latency_s": poison_s,
        "overhead_vs_clean": poison_s / clean_s,
    }

    sink = ResilientSink(_NullSink())
    emit_s = _best_time(lambda: sink.emit("event"), n_repeats, n_inner=1000)
    results["resilient_sink.emit"] = {"samples_per_sec": 1.0 / emit_s}

    retry_s = _best_time(
        lambda: call_with_retry(lambda: None), n_repeats, n_inner=1000
    )
    results["call_with_retry[success]"] = {"samples_per_sec": 1.0 / retry_s}

    with tempfile.TemporaryDirectory(prefix="repro-faults-bench-") as tmp:
        root = Path(tmp) / "registry"
        seed_registry = ModelRegistry(root)
        for _ in range(n_versions):
            seed_registry.publish(detector, "bench")
        scan_s = _best_time(lambda: ModelRegistry(root), n_repeats)
    results[f"registry_recovery_scan[v={n_versions}]"] = {
        "samples_per_sec": n_versions / scan_s,
        "scan_latency_s": scan_s,
    }

    return {
        "benchmark": "fault_tolerance_overhead",
        "version": __version__,
        "config": {
            "batch": batch,
            "n_features": n_features,
            "n_versions": n_versions,
            "n_repeats": n_repeats,
            "seed": seed,
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--n-features", type=int, default=16)
    parser.add_argument("--versions", type=int, default=4)
    parser.add_argument("--n-repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if min(args.batch, args.n_features, args.versions, args.n_repeats) < 1:
        parser.error("--batch, --n-features, --versions, --n-repeats must be >= 1")
    payload = run_bench(
        batch=args.batch,
        n_features=args.n_features,
        n_versions=args.versions,
        n_repeats=args.n_repeats,
        seed=args.seed,
    )
    path = write_report(payload, args.output, section="faults")
    for name, entry in payload["results"].items():
        line = f"{name:40s} {entry['samples_per_sec']:>12.0f} /s"
        for key in ("overhead_vs_raw_score", "overhead_vs_clean"):
            if key in entry:
                line += f"  ({entry[key]:.2f}x {key.rsplit('_', 1)[-1]})"
        if "scan_latency_s" in entry:
            line += f"  (scan {1e3 * entry['scan_latency_s']:.1f} ms)"
        print(line)
    print(f"[faults section written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
