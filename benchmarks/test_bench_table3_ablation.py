"""Benchmark: regenerate Table III (ablation of the CND loss components).

Paper shape: removing L_CS lowers AVG; removing L_R and L_CL produces clearly
negative backward transfer (catastrophic forgetting) even if AVG looks fine.
"""

from __future__ import annotations

from bench_config import bench_config, record

from repro.experiments import format_table3, run_table3


def test_bench_table3_ablation(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(lambda: run_table3(config), rounds=1, iterations=1)
    record("table3_ablation", format_table3(rows))

    by_strategy = {row["strategy"]: row for row in rows}
    full = by_strategy["CND-IDS"]
    stripped = by_strategy["CND-IDS (w/o LR and LCL)"]
    # Removing the continual-learning machinery must not improve retention.
    assert full["bwd_transfer_pct"] >= stripped["bwd_transfer_pct"] - 2.0
    assert 0.0 <= full["avg_f1_pct"] <= 100.0
