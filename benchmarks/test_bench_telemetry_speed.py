"""Benchmark: overhead of the telemetry layer on the serving hot path.

Writes the ``"telemetry"`` section of ``BENCH_inference.json`` (the trend
check compares it across PRs) and sanity-checks that default-on
observability stays affordable: instrumentation must cost at most a few
percent of sequential batch throughput, and the merge/render paths that run
per snapshot or per report must stay interactive.
"""

from __future__ import annotations

from run_telemetry_bench import DEFAULT_OUTPUT, run_bench, write_report


def test_bench_telemetry_overheads():
    payload = run_bench(batch=4096, n_repeats=3)
    path = write_report(payload, DEFAULT_OUTPUT, section="telemetry")
    print(f"[telemetry section written to {path}]")

    results = payload["results"]
    for name, entry in results.items():
        assert entry["samples_per_sec"] > 0.0, name

    instrumented = results["process_batch[instrumented]"]
    # The acceptance bound for default-on telemetry is <= 5% on the
    # sequential hot loop; 1.15 here absorbs timer noise on a shared CI box
    # while still catching anything structurally expensive (an allocation or
    # Python loop per row instead of per batch).
    assert instrumented["overhead_vs_uninstrumented"] < 1.15

    # Trace-context propagation (deterministic span ids on every stage) must
    # ride along inside the same instrumentation bound — id allocation is one
    # counter increment and a string format per span.
    traced = results["process_batch[traced]"]
    assert traced["overhead_vs_uninstrumented"] < 1.15

    # One span is two perf_counter calls plus a histogram observe; anything
    # below ~100k/s would make per-stage tracing a measurable per-batch tax.
    assert results["trace_span[enter_exit]"]["samples_per_sec"] > 1e5

    # Folding shard registries happens per metrics snapshot / final report,
    # not per batch — but a sharded service with --metrics-every pays it
    # repeatedly, so it must stay well under a millisecond.
    merge = results[f"registry_merge[shards={payload['config']['n_shards']}]"]
    assert merge["merge_latency_s"] < 0.1

    # A /metrics scrape renders the full folded snapshot; Prometheus default
    # scrape cadence is 15 s, so anything near interactive is plenty — but a
    # render that takes longer than 100 ms would stall the scraper thread
    # noticeably next to the serve loop.
    assert results["metrics_exposition[render]"]["render_latency_s"] < 0.1

    # One --profile-mem sample is a procfs read plus two metric updates; it
    # runs once per merged batch, so it must stay far cheaper than a batch.
    assert results["mem_sample"]["samples_per_sec"] > 1e3

    # Report assembly + markdown render runs once per run (or per `serve
    # report` invocation); interactive means well under a second.
    assert results["report_render"]["render_latency_s"] < 1.0
