"""Benchmark: regenerate Fig. 5 (threshold-free PR-AUC of DIF, PCA, CND-IDS).

Paper shape: CND-IDS has the best PR-AUC, showing the advantage is not an
artefact of the Best-F thresholding.
"""

from __future__ import annotations

import numpy as np
from bench_config import bench_config, record

from repro.experiments import format_fig5, run_fig5


def test_bench_fig5_prauc(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(lambda: run_fig5(config), rounds=1, iterations=1)
    record("fig5_prauc", format_fig5(rows))

    def mean_prauc(method: str) -> float:
        return float(np.mean([row["mean_prauc"] for row in rows if row["method"] == method]))

    assert mean_prauc("CND-IDS") > mean_prauc("DIF")
    assert mean_prauc("CND-IDS") > 0.95 * mean_prauc("PCA")
