"""Benchmark: regenerate Table IV (average inference time per test sample).

Paper shape: CND-IDS and plain PCA are the two fastest methods; DIF is the
slowest by a large margin.  Absolute numbers differ from the paper's GPU
host, and since the vectorized batch inference engine (flat forests + native
traversal kernels) landed, DIF's isolation forests are roughly an order of
magnitude faster than the per-node recursion the paper-era ordering was
measured against — so DIF no longer trails every neural method and the
assertion below only pins the orderings that survive the speedup.
"""

from __future__ import annotations

from bench_config import bench_config, record

from repro.experiments import format_table4, run_table4


def test_bench_table4_overhead(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(
        lambda: run_table4(config, batch_size=2000, n_repeats=3), rounds=1, iterations=1
    )
    record("table4_overhead", format_table4(rows))

    times = {row["method"]: row["inference_time_ms"] for row in rows}
    # Orderings that hold regardless of the tree-engine speedup: plain PCA
    # reconstruction stays the cheapest scoring path on this host.
    assert times["DIF"] > times["PCA"]
    assert times["ADCN"] > times["PCA"]
    assert all(value > 0.0 for value in times.values())
