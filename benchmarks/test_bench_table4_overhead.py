"""Benchmark: regenerate Table IV (average inference time per test sample).

Paper shape: CND-IDS and plain PCA are the two fastest methods; DIF is the
slowest by a large margin.  Absolute numbers differ from the paper's GPU host.
"""

from __future__ import annotations

from bench_config import bench_config, record

from repro.experiments import format_table4, run_table4


def test_bench_table4_overhead(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(
        lambda: run_table4(config, batch_size=2000, n_repeats=3), rounds=1, iterations=1
    )
    record("table4_overhead", format_table4(rows))

    times = {row["method"]: row["inference_time_ms"] for row in rows}
    # Relative ordering the paper reports: DIF is the slowest method and the
    # two reconstruction-based methods (PCA, CND-IDS) are the fastest family.
    assert times["DIF"] > times["PCA"]
    assert times["DIF"] > times["CND-IDS"]
    assert all(value > 0.0 for value in times.values())
