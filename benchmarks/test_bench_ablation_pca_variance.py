"""Ablation bench: sensitivity of CND-IDS to the PCA explained-variance ratio.

The paper fixes the explained variance at 95% (following incDFM).  This bench
sweeps the ratio to document how sensitive the result is to that choice.
"""

from __future__ import annotations

from bench_config import bench_config, record

from repro.experiments.reporting import format_table
from repro.experiments.runner import build_continual_method, get_scenario
from repro.experiments.protocol import run_continual_method

VARIANCE_LEVELS = (0.90, 0.95, 0.99)


def _run_sweep(config, dataset_name):
    scenario = get_scenario(config, dataset_name)
    rows = []
    for variance in VARIANCE_LEVELS:
        method = build_continual_method("CND-IDS", scenario.n_features, config)
        method.pca_variance = variance
        result = run_continual_method(method, scenario, compute_prauc=True)
        rows.append(
            {
                "dataset": dataset_name,
                "pca_variance": variance,
                "avg_f1": result.avg_f1,
                "fwd_transfer": result.fwd_transfer,
                "avg_prauc": result.avg_prauc,
            }
        )
    return rows


def test_bench_ablation_pca_variance(benchmark):
    config = bench_config()
    dataset_name = config.datasets[0]
    rows = benchmark.pedantic(lambda: _run_sweep(config, dataset_name), rounds=1, iterations=1)
    record(
        "ablation_pca_variance",
        format_table(rows, title="Ablation: PCA explained-variance ratio (CND-IDS)"),
    )
    assert len(rows) == len(VARIANCE_LEVELS)
    assert all(0.0 <= row["avg_f1"] <= 1.0 for row in rows)
