"""Benchmark: regenerate Fig. 3 (AVG / FwdTrans / BwdTrans of ADCN, LwF, CND-IDS).

Paper shape: CND-IDS has the best AVG and FwdTrans on every dataset.
"""

from __future__ import annotations

import numpy as np
from bench_config import bench_config, record

from repro.experiments import format_fig3, run_fig3


def test_bench_fig3_cl_comparison(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(lambda: run_fig3(config), rounds=1, iterations=1)
    record("fig3_cl_comparison", format_fig3(rows))

    by_method = {
        method: [row for row in rows if row["method"] == method]
        for method in ("ADCN", "LwF", "CND-IDS")
    }
    cnd_avg = np.mean([row["avg_f1"] for row in by_method["CND-IDS"]])
    for baseline in ("ADCN", "LwF"):
        baseline_avg = np.mean([row["avg_f1"] for row in by_method[baseline]])
        baseline_fwd = np.mean([row["fwd_transfer"] for row in by_method[baseline]])
        cnd_fwd = np.mean([row["fwd_transfer"] for row in by_method["CND-IDS"]])
        # Averaged over datasets CND-IDS must dominate both UCL baselines.
        assert cnd_avg > baseline_avg
        assert cnd_fwd > baseline_fwd
