"""Telemetry overhead benchmark: what observability costs on the hot path.

The telemetry layer (:mod:`repro.serve.telemetry`) is on by default: every
scored batch updates counters and latency histograms and passes through the
per-stage spans, and a sharded run folds every worker's registry into one
snapshot at report time.  Observability that taxes the serving loop gets
turned off, so this benchmark pins the costs under the ``"telemetry"`` key
of ``BENCH_inference.json`` and ``check_bench_trend.py`` fails the build
when any of them regresses:

* ``process_batch[instrumented]`` — full service scoring of one batch with
  the default (enabled) metrics registry and spans;
* ``process_batch[uninstrumented]`` — the same batch with telemetry routed
  to the :data:`~repro.serve.telemetry.metrics.DISABLED` registry
  (``overhead_vs_uninstrumented`` on the instrumented entry makes the
  instrumentation tax explicit — the acceptance bound is 5%);
* ``process_batch[traced]`` — the same batch with a full
  :class:`~repro.serve.telemetry.context.TraceContext` and a
  :class:`~repro.serve.telemetry.tracing.SpanBuffer` attached (distributed
  trace ids allocated per span), held to the same 5% bound — trace context
  must ride along for free;
* ``trace_span[enter_exit]`` — bare span enter/exit cycles per second
  against a live registry (the unit cost every instrumented stage pays);
* ``metrics_exposition[render]`` — :func:`render_prometheus` over a folded
  snapshot, renders per second (paid per ``/metrics`` scrape);
* ``mem_sample`` — one :meth:`MemoryProfiler.sample` (RSS read + gauge and
  histogram update), samples per second (paid per batch under
  ``--profile-mem``);
* ``registry_merge[shards=N]`` — :meth:`MetricsRegistry.fold` over ``N``
  populated shard registries, folds per second (paid per snapshot/report
  in a sharded service);
* ``report_render`` — :func:`build_report` + :func:`render_markdown` from a
  realistic summary/metrics/events payload, reports per second.

Usage::

    PYTHONPATH=src python benchmarks/run_telemetry_bench.py \
        [--batch 4096] [--n-features 16] [--shards 8] \
        [--output BENCH_inference.json]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.novelty import IsolationForest
from repro.serve.service import DetectionService
from repro.serve.telemetry import (
    MemoryProfiler,
    MetricsRegistry,
    SpanBuffer,
    TraceContext,
    build_report,
    build_run_summary,
    render_markdown,
    render_prometheus,
    trace_span,
)
from repro.serve.telemetry.metrics import DISABLED
from run_lifecycle_bench import DEFAULT_OUTPUT, _best_time, write_report

__all__ = ["run_bench", "write_report", "DEFAULT_OUTPUT", "main"]


def _populated_registry(seed: int, n_batches: int = 50) -> MetricsRegistry:
    """A shard-shaped registry: the instruments a serving shard accumulates."""
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    batches = registry.counter("pipeline.batches", unit="batches")
    rows = registry.counter("pipeline.rows", unit="rows")
    latency = registry.histogram("pipeline.batch_seconds", unit="seconds")
    stage = registry.histogram("stage.score.seconds", unit="seconds")
    for value in rng.lognormal(mean=-7.0, sigma=1.0, size=n_batches):
        batches.inc()
        rows.inc(256)
        latency.observe(float(value))
        stage.observe(float(value) * 0.8)
    registry.gauge("fusion.conflict_mass", unit="mass").set(float(rng.random()))
    return registry


def run_bench(
    *,
    batch: int = 4096,
    n_features: int = 16,
    n_shards: int = 8,
    n_repeats: int = 3,
    seed: int = 0,
) -> dict[str, object]:
    """Run the telemetry-overhead suite; returns the ``"telemetry"`` payload."""
    rng = np.random.default_rng(seed)
    train = rng.normal(size=(2000, n_features))
    detector = IsolationForest(
        n_estimators=50, max_samples=256, random_state=seed
    ).fit(train)
    clean = rng.normal(size=(batch, n_features))

    results: dict[str, object] = {}

    # Uninstrumented arm first so the instrumented ratio reads off it.
    off_service = DetectionService(detector, threshold="auto", telemetry=DISABLED)
    off_s = _best_time(lambda: off_service.process_batch(clean), n_repeats)
    results["process_batch[uninstrumented]"] = {
        "samples_per_sec": batch / off_s,
        "batch_latency_s": off_s,
    }

    on_service = DetectionService(detector, threshold="auto")
    on_s = _best_time(lambda: on_service.process_batch(clean), n_repeats)
    results["process_batch[instrumented]"] = {
        "samples_per_sec": batch / on_s,
        "batch_latency_s": on_s,
        "overhead_vs_uninstrumented": on_s / off_s,
    }

    traced_service = DetectionService(
        detector,
        threshold="auto",
        tracer=SpanBuffer(),
        trace_context=TraceContext.root(seed),
    )
    traced_s = _best_time(lambda: traced_service.process_batch(clean), n_repeats)
    results["process_batch[traced]"] = {
        "samples_per_sec": batch / traced_s,
        "batch_latency_s": traced_s,
        "overhead_vs_uninstrumented": traced_s / off_s,
    }

    span_registry = MetricsRegistry()

    def _one_span() -> None:
        with trace_span("bench", metrics=span_registry, rows=1):
            pass

    span_s = _best_time(_one_span, n_repeats, n_inner=1000)
    results["trace_span[enter_exit]"] = {"samples_per_sec": 1.0 / span_s}

    shards = [_populated_registry(seed + i) for i in range(n_shards)]
    merge_s = _best_time(lambda: MetricsRegistry.fold(shards), n_repeats)
    results[f"registry_merge[shards={n_shards}]"] = {
        "samples_per_sec": 1.0 / merge_s,
        "merge_latency_s": merge_s,
    }

    metrics = MetricsRegistry.fold(shards).snapshot()

    expose_s = _best_time(lambda: render_prometheus(metrics), n_repeats)
    results["metrics_exposition[render]"] = {
        "samples_per_sec": 1.0 / expose_s,
        "render_latency_s": expose_s,
    }

    profiler = MemoryProfiler(MetricsRegistry(), trace_python=False)
    mem_s = _best_time(lambda: profiler.sample("bench"), n_repeats, n_inner=100)
    profiler.close()
    results["mem_sample"] = {
        "samples_per_sec": 1.0 / mem_s,
        "sample_latency_s": mem_s,
    }

    summary = {
        "n_batches": 50 * n_shards,
        "n_samples": 256 * 50 * n_shards,
        "n_alerts": 137,
        "n_drift_events": 2,
        "throughput_samples_per_sec": 1e5,
        "total_time_s": 256 * 50 * n_shards / 1e5,
        "batch_latency_p50_s": 1e-3,
        "batch_latency_p95_s": 3e-3,
        "batch_latency_p99_s": 5e-3,
    }
    events = [
        {"type": "alert", "batch_index": i // 4, "score": 1.0} for i in range(200)
    ] + [{"type": "drift", "batch_index": 30}]
    run_info = build_run_summary(
        {"detector": "iforest", "seed": seed},
        stream={"dataset": "bench", "seed": seed},
        service_report=summary,
        metrics=metrics,
        generated_at="bench",
    )

    def _render() -> None:
        render_markdown(
            build_report(
                summary,
                metrics=metrics,
                events=events,
                run_info=run_info,
                generated_at="bench",
            )
        )

    render_s = _best_time(_render, n_repeats)
    results["report_render"] = {
        "samples_per_sec": 1.0 / render_s,
        "render_latency_s": render_s,
    }

    return {
        "benchmark": "telemetry_overhead",
        "version": __version__,
        "config": {
            "batch": batch,
            "n_features": n_features,
            "n_shards": n_shards,
            "n_repeats": n_repeats,
            "seed": seed,
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--n-features", type=int, default=16)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--n-repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if min(args.batch, args.n_features, args.shards, args.n_repeats) < 1:
        parser.error("--batch, --n-features, --shards, --n-repeats must be >= 1")
    payload = run_bench(
        batch=args.batch,
        n_features=args.n_features,
        n_shards=args.shards,
        n_repeats=args.n_repeats,
        seed=args.seed,
    )
    path = write_report(payload, args.output, section="telemetry")
    for name, entry in payload["results"].items():
        line = f"{name:40s} {entry['samples_per_sec']:>12.0f} /s"
        if "overhead_vs_uninstrumented" in entry:
            line += f"  ({entry['overhead_vs_uninstrumented']:.3f}x uninstrumented)"
        if "render_latency_s" in entry:
            line += f"  (render {1e3 * entry['render_latency_s']:.1f} ms)"
        print(line)
    print(f"[telemetry section written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
