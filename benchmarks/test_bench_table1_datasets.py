"""Benchmark: regenerate Table I (dataset statistics)."""

from __future__ import annotations

from bench_config import bench_config, record

from repro.experiments import format_table1, run_table1


def test_bench_table1_datasets(benchmark):
    config = bench_config()
    rows = benchmark.pedantic(lambda: run_table1(config), rounds=1, iterations=1)
    record("table1_datasets", format_table1(rows))

    assert len(rows) == 4
    for row in rows:
        # The generated datasets keep the paper's attack-family counts and the
        # normal/attack proportions of the reference datasets.
        assert row["attack_types"] == row["paper_attack_types"]
        assert row["generated_size"] == row["generated_normal"] + row["generated_attack"]
